# Developer entry points. PYTHONPATH is set instead of requiring an
# editable install so the targets work on a bare checkout.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-backends bench-smoke bench-index lint-imports

## Tier-1 verification: the whole test suite, stop on first failure.
## Honours REPRO_INDEX_BACKEND (merge/bitset/adaptive).
test:
	$(PYTHON) -m pytest -x -q

## The full backend matrix locally: tier-1 once per posting-list
## representation (what CI runs as a matrix).
test-backends:
	REPRO_INDEX_BACKEND=merge $(PYTHON) -m pytest -x -q
	REPRO_INDEX_BACKEND=bitset $(PYTHON) -m pytest -x -q
	REPRO_INDEX_BACKEND=adaptive $(PYTHON) -m pytest -x -q

## One fast benchmark as a smoke signal: the three-backend index
## comparison (merge/bitset/adaptive + mask-native pipeline; also
## regenerates BENCH_index_backends.json).
bench-smoke:
	$(PYTHON) benchmarks/bench_index_backends.py

## Alias kept for discoverability.
bench-index: bench-smoke

## Cheap sanity check that every package module imports cleanly.
lint-imports:
	$(PYTHON) -c "import compileall, sys; sys.exit(0 if compileall.compile_dir('src', quiet=1) else 1)"
