# Developer entry points. PYTHONPATH is set instead of requiring an
# editable install so the targets work on a bare checkout.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-backends test-processes test-sockets test-chaos \
	test-elastic test-service test-mutation test-durability \
	bench-smoke bench-index bench-sharding bench-skew bench-net \
	bench-chaos bench-elastic bench-service bench-mutation \
	bench-durability docs-check lint-imports

## Tier-1 verification: the whole test suite, stop on first failure.
## Honours REPRO_INDEX_BACKEND (merge/bitset/adaptive).
test:
	$(PYTHON) -m pytest -x -q

## The full backend matrix locally: tier-1 once per posting-list
## representation (what CI runs as a matrix).
test-backends:
	REPRO_INDEX_BACKEND=merge $(PYTHON) -m pytest -x -q
	REPRO_INDEX_BACKEND=bitset $(PYTHON) -m pytest -x -q
	REPRO_INDEX_BACKEND=adaptive $(PYTHON) -m pytest -x -q

## Multiprocess smoke: the sharded-execution subsystem across all three
## backends (wire format, shard slicing, process pool, parity) — the
## tier-1 subset CI's multiprocess job runs.
test-processes:
	REPRO_INDEX_BACKEND=merge $(PYTHON) -m pytest -x -q \
		tests/test_process_executor.py tests/test_sharding.py \
		tests/test_rebalance.py tests/test_wire_format.py
	REPRO_INDEX_BACKEND=bitset $(PYTHON) -m pytest -x -q \
		tests/test_process_executor.py tests/test_sharding.py \
		tests/test_rebalance.py tests/test_wire_format.py
	REPRO_INDEX_BACKEND=adaptive $(PYTHON) -m pytest -x -q \
		tests/test_process_executor.py tests/test_sharding.py \
		tests/test_rebalance.py tests/test_wire_format.py

## Socket-transport smoke: framing, handshake and the network shard
## executor across all three backends (the tier-1 subset CI's
## socket job runs).
test-sockets:
	REPRO_INDEX_BACKEND=merge $(PYTHON) -m pytest -x -q \
		tests/test_transport.py tests/test_net_executor.py
	REPRO_INDEX_BACKEND=bitset $(PYTHON) -m pytest -x -q \
		tests/test_transport.py tests/test_net_executor.py
	REPRO_INDEX_BACKEND=adaptive $(PYTHON) -m pytest -x -q \
		tests/test_transport.py tests/test_net_executor.py

## Fault-injection smoke: the deterministic chaos harness plus the
## replication/failover paths of the socket executor (replica
## handshakes, mid-level kill/sever/garble failover, speculation,
## dropped-reply deadlines, zero-replica fail-fast).
test-chaos:
	$(PYTHON) -m pytest -x -q tests/test_chaos.py tests/test_net_executor.py

## Elastic-runtime smoke: worker discovery (registry + announcer),
## supervised restart under a retry budget, and live grow/shrink of
## the replicated pool (admit/drain, shard retirement, registry-fed
## mid-job failover).
test-elastic:
	$(PYTHON) -m pytest -x -q tests/test_registry.py \
		tests/test_supervisor.py tests/test_elastic.py

## Match-service smoke: the multiplexed wire kinds, the always-on
## service (admission BUSY, deadlines, cancellation, cache, drain,
## query-pinned chaos isolation) and the line-JSON daemon/client.
test-service:
	$(PYTHON) -m pytest -x -q tests/test_service.py tests/test_transport.py

## Dynamic-graph smoke: mutation semantics (tombstoned layouts,
## atomic batches, incremental store maintenance), the differential
## mutation oracle across backends x executors (honours
## REPRO_MUTATION_SCHEDULES), codec fuzzing (REPRO_FUZZ_CASES) and
## the service-level cache-invalidation / standing-query contract.
test-mutation:
	$(PYTHON) -m pytest -x -q tests/test_dynamic.py \
		tests/test_mutation_oracle.py tests/test_codec_fuzz.py \
		tests/test_mutation_service.py

## Durability smoke: the journal codec (torn tails vs mid-log
## corruption), snapshots, the crash-point recovery oracle, the
## service/daemon journal seam (drain persists, restart recovers and
## resumes standing streams) and the CATCHUP rejoin paths of the
## replicated and multiplexed pools.
test-durability:
	$(PYTHON) -m pytest -x -q tests/test_journal.py \
		tests/test_mutation_service.py tests/test_elastic.py \
		tests/test_chaos.py

## One fast benchmark as a smoke signal: the three-backend index
## comparison (merge/bitset/adaptive + mask-native pipeline; also
## regenerates BENCH_index_backends.json).
bench-smoke:
	$(PYTHON) benchmarks/bench_index_backends.py

## Alias kept for discoverability.
bench-index: bench-smoke

## Sharded execution benchmark: threads vs processes at 4 shards on the
## Fig. 8 trace + parity/payload/streaming gates and the skewed-trace
## placement gate (regenerates BENCH_sharding.json; the >= 1.5x speedup
## gate enforces only on hosts with >= 2 cores — set
## REPRO_BENCH_MIN_CORES to fail instead of skip below that).
bench-sharding:
	$(PYTHON) benchmarks/bench_sharding.py

## Fast skew smoke: only the skewed trace (uniform vs balanced shard
## placement; gates the >= 1.3x per-shard load-imbalance improvement
## and count parity; merges the result into BENCH_sharding.json).
bench-skew:
	$(PYTHON) benchmarks/bench_sharding.py --skew

## Socket executor benchmark: loopback clusters at 4 shards on the
## Fig. 8 trace, parity vs threads/processes + payload gates
## (regenerates BENCH_net.json; wall clock recorded, not gated).
bench-net:
	$(PYTHON) benchmarks/bench_net.py

## Replicated-pool fault gate: kill a worker mid-level on a 2-replica
## socket pool and require bit-identical counts on all three backends,
## plus a prompt SchedulerError when the last replica dies
## (regenerates BENCH_chaos.json; failover overhead recorded, not
## gated).
bench-chaos:
	$(PYTHON) benchmarks/bench_chaos.py

## Elastic reconfiguration gate: grow a pool K=1 -> K=2 mid-lifetime,
## lose-and-readmit a replica, restart a supervised worker within the
## retry budget, and evict a severed worker via missed heartbeats —
## all with bit-identical counts on every backend (regenerates
## BENCH_elastic.json; reconfiguration wall-clock recorded, not
## gated).
bench-elastic:
	$(PYTHON) benchmarks/bench_elastic.py

## Match-service gate: N concurrent multiplexed queries bit-identical
## to solo runs on all three backends, BUSY refusal at the depth
## limit, cache hits answered without touching the pool, and isolation
## of a query-pinned chaos fault (regenerates BENCH_service.json;
## concurrent throughput and cache-hit latency recorded, not gated).
bench-service:
	$(PYTHON) benchmarks/bench_service.py

## Dynamic-graph gate: a stream of small mutation batches against a
## 9k-edge graph — incremental index maintenance must agree with a
## from-scratch rebuild after every batch and land >= 3x faster in
## total, per backend (regenerates BENCH_mutation.json).
bench-mutation:
	$(PYTHON) benchmarks/bench_mutation.py

## Durability gate: SIGKILL a journalling serve-match daemon
## mid-schedule (idle *and* mid-commit), recover from the journal
## alone — fingerprint and query counts bit-identical to the longest
## committed prefix on all three backends — restart, finish the
## schedule; plus the catch-up rejoin parity gate for a stale
## respawned worker (regenerates BENCH_durability.json; recovery and
## catch-up wall-clock recorded, not gated).
bench-durability:
	$(PYTHON) benchmarks/bench_durability.py

## Documentation checks: the WIRE_FORMAT.md doctests (the byte-level
## spec is executable), the §2.1 message-kind table cross-check
## against transport.MSG_*, and a link check over docs/ + README.
docs-check:
	$(PYTHON) tools/docs_check.py

## Cheap sanity check that every package module imports cleanly.
lint-imports:
	$(PYTHON) -c "import compileall, sys; sys.exit(0 if compileall.compile_dir('src', quiet=1) else 1)"
