# Developer entry points. PYTHONPATH is set instead of requiring an
# editable install so the targets work on a bare checkout.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench-index lint-imports

## Tier-1 verification: the whole test suite, stop on first failure.
test:
	$(PYTHON) -m pytest -x -q

## One fast benchmark as a smoke signal: the index-backend comparison
## (also regenerates BENCH_index_backends.json).
bench-smoke:
	$(PYTHON) benchmarks/bench_index_backends.py

## Alias kept for discoverability.
bench-index: bench-smoke

## Cheap sanity check that every package module imports cleanly.
lint-imports:
	$(PYTHON) -c "import compileall, sys; sys.exit(0 if compileall.compile_dir('src', quiet=1) else 1)"
