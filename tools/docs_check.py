#!/usr/bin/env python
"""Documentation checks: wire-format doctests + markdown link check.

Run via ``make docs-check`` (CI's docs job).  Two guarantees:

1. ``docs/WIRE_FORMAT.md`` is executable truth — every ``>>>`` example
   in it runs against the live library, so the byte-level spec cannot
   drift from the implementation without failing.
2. No internal markdown link in ``docs/`` or ``README.md`` points at a
   file that does not exist (anchors are checked for file existence
   only; external http(s)/mailto links are skipped — no network in CI).
"""

from __future__ import annotations

import doctest
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Markdown files whose internal links must resolve.
LINKED_FILES = ["README.md", "ROADMAP.md"]

#: Markdown files whose ``>>>`` examples must pass.
DOCTEST_FILES = ["docs/WIRE_FORMAT.md"]

#: ``[text](target)`` — good enough for these docs (no nested brackets).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def run_doctests() -> int:
    failures = 0
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    for relative in DOCTEST_FILES:
        path = os.path.join(REPO_ROOT, relative)
        result = doctest.testfile(
            path, module_relative=False, verbose=False,
            optionflags=doctest.ELLIPSIS,
        )
        status = "ok" if result.failed == 0 else "FAILED"
        print(
            f"doctest {relative}: {result.attempted} examples, "
            f"{result.failed} failures [{status}]"
        )
        failures += result.failed
    return failures


def iter_markdown_files():
    for relative in LINKED_FILES:
        path = os.path.join(REPO_ROOT, relative)
        if os.path.exists(path):
            yield path
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                yield os.path.join(docs_dir, name)


def check_links() -> int:
    failures = 0
    checked = 0
    for path in iter_markdown_files():
        base = os.path.dirname(path)
        with open(path, encoding="utf-8") as stream:
            text = stream.read()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # pure in-page anchor
            checked += 1
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                failures += 1
                print(
                    f"BROKEN LINK in {os.path.relpath(path, REPO_ROOT)}: "
                    f"{match.group(1)} -> {resolved}"
                )
    print(f"link check: {checked} internal links, {failures} broken")
    return failures


#: ``| `0x48` | `H` | HELLO | ... |`` — one §2.1 table row.
_KIND_ROW = re.compile(
    r"^\|\s*`0x([0-9A-Fa-f]{2})`\s*\|\s*`(.+?)`\s*\|\s*([A-Z]+(?:-[A-Z]+)*)\s*\|"
)


def check_message_kinds() -> int:
    """Cross-check WIRE_FORMAT.md §2.1 against ``transport.MSG_*``.

    The doctests pin individual byte sequences; this pins the *table*:
    every ``MSG_*`` constant must appear in §2.1 with its exact byte
    value and ASCII mnemonic, and every table row must name a constant
    that exists — so adding a kind without spec'ing it (or spec'ing one
    that was never implemented) fails the docs job.
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.parallel import transport

    path = os.path.join(REPO_ROOT, "docs", "WIRE_FORMAT.md")
    with open(path, encoding="utf-8") as stream:
        text = stream.read()
    match = re.search(
        r"### 2\.1 Message kinds\n(.*?)\n### ", text, re.DOTALL
    )
    if match is None:
        print("MESSAGE KINDS: section 2.1 not found in WIRE_FORMAT.md")
        return 1
    # Keyed by byte value: the table's "name" column is the protocol
    # name (REPLY, QUIT), which legitimately differs from the constant
    # suffix (MSG_LEVEL_REPLY, MSG_SHUTDOWN) — the byte and its ASCII
    # mnemonic are what must not drift.
    documented = {}
    for line in match.group(1).splitlines():
        row = _KIND_ROW.match(line.strip())
        if row is not None:
            documented[int(row.group(1), 16)] = (row.group(2), row.group(3))
    implemented = {
        getattr(transport, name): name
        for name in dir(transport)
        if name.startswith("MSG_")
    }
    failures = 0
    for value, constant in sorted(implemented.items()):
        if value not in documented:
            failures += 1
            print(
                f"MESSAGE KINDS: transport.{constant} (0x{value:02X} "
                f"`{chr(value)}`) is not documented in WIRE_FORMAT.md "
                f"section 2.1"
            )
            continue
        ascii_char, doc_name = documented[value]
        if ascii_char != chr(value):
            failures += 1
            print(
                f"MESSAGE KINDS: {doc_name} (0x{value:02X}) documented "
                f"with mnemonic `{ascii_char}` but that byte is "
                f"`{chr(value)}`"
            )
    for value in sorted(set(documented) - set(implemented)):
        failures += 1
        print(
            f"MESSAGE KINDS: section 2.1 documents "
            f"{documented[value][1]} (0x{value:02X}) but transport has "
            f"no MSG_* constant with that value"
        )
    print(
        f"message kinds: {len(documented)} documented, "
        f"{len(implemented)} implemented, {failures} mismatches"
    )
    return failures


def main() -> int:
    failures = run_doctests() + check_links() + check_message_kinds()
    if failures:
        print(f"docs check FAILED ({failures} problems)")
        return 1
    print("docs check OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
