#!/usr/bin/env python
"""Documentation checks: wire-format doctests + markdown link check.

Run via ``make docs-check`` (CI's docs job).  Two guarantees:

1. ``docs/WIRE_FORMAT.md`` is executable truth — every ``>>>`` example
   in it runs against the live library, so the byte-level spec cannot
   drift from the implementation without failing.
2. No internal markdown link in ``docs/`` or ``README.md`` points at a
   file that does not exist (anchors are checked for file existence
   only; external http(s)/mailto links are skipped — no network in CI).
"""

from __future__ import annotations

import doctest
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Markdown files whose internal links must resolve.
LINKED_FILES = ["README.md", "ROADMAP.md"]

#: Markdown files whose ``>>>`` examples must pass.
DOCTEST_FILES = ["docs/WIRE_FORMAT.md"]

#: ``[text](target)`` — good enough for these docs (no nested brackets).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def run_doctests() -> int:
    failures = 0
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    for relative in DOCTEST_FILES:
        path = os.path.join(REPO_ROOT, relative)
        result = doctest.testfile(
            path, module_relative=False, verbose=False,
            optionflags=doctest.ELLIPSIS,
        )
        status = "ok" if result.failed == 0 else "FAILED"
        print(
            f"doctest {relative}: {result.attempted} examples, "
            f"{result.failed} failures [{status}]"
        )
        failures += result.failed
    return failures


def iter_markdown_files():
    for relative in LINKED_FILES:
        path = os.path.join(REPO_ROOT, relative)
        if os.path.exists(path):
            yield path
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                yield os.path.join(docs_dir, name)


def check_links() -> int:
    failures = 0
    checked = 0
    for path in iter_markdown_files():
        base = os.path.dirname(path)
        with open(path, encoding="utf-8") as stream:
            text = stream.read()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # pure in-page anchor
            checked += 1
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                failures += 1
                print(
                    f"BROKEN LINK in {os.path.relpath(path, REPO_ROOT)}: "
                    f"{match.group(1)} -> {resolved}"
                )
    print(f"link check: {checked} internal links, {failures} broken")
    return failures


def main() -> int:
    failures = run_doctests() + check_links()
    if failures:
        print(f"docs check FAILED ({failures} problems)")
        return 1
    print("docs check OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
