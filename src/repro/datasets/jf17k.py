"""A synthetic JF17K-style knowledge hypergraph (case study, §VII-D).

The paper's case study runs question answering over JF17K — non-binary
facts extracted from Freebase — using two relation schemas it quotes:

* ``(Player, Team, Match)`` — a football player played a match for a
  team;
* ``(Actor, Character, TVShow, Season)`` — an actor played a character
  in a TV show during a season.

This module synthesises a typed knowledge hypergraph with those schemas:
entities are vertices labelled by type, each fact is one hyperedge.  The
generator plants the phenomena the two case-study queries look for —
players who represented *different* teams in different matches, and
characters recast between seasons of the same show — so the queries
return non-trivial answer sets, like the 111 and 76 embeddings the
paper reports.

:func:`query_players_two_teams` and :func:`query_recast_character`
build the query hypergraphs of Fig. 13a/13b.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..hypergraph import Hypergraph, HypergraphBuilder

PLAYER, TEAM, MATCH = "Player", "Team", "Match"
ACTOR, CHARACTER, TVSHOW, SEASON = "Actor", "Character", "TVShow", "Season"


@dataclass(frozen=True)
class KBSpec:
    """Size knobs of the synthetic knowledge base."""

    num_players: int = 140
    num_teams: int = 24
    num_matches: int = 60
    plays_per_player: Tuple[int, int] = (1, 4)
    #: Fraction of players deliberately given facts with ≥ 2 distinct teams.
    transfer_fraction: float = 0.18

    num_actors: int = 90
    num_characters: int = 60
    num_shows: int = 25
    num_seasons: int = 8
    roles_per_actor: Tuple[int, int] = (1, 3)
    #: Fraction of characters recast across seasons of the same show.
    recast_fraction: float = 0.40

    seed: int = 1717


def build_knowledge_base(spec: "KBSpec | None" = None) -> Hypergraph:
    """Generate the typed knowledge hypergraph."""
    spec = spec if spec is not None else KBSpec()
    rng = random.Random(spec.seed)
    builder = HypergraphBuilder()

    players = [builder.add_vertex(PLAYER, key=("p", i)) for i in range(spec.num_players)]
    teams = [builder.add_vertex(TEAM, key=("t", i)) for i in range(spec.num_teams)]
    matches = [builder.add_vertex(MATCH, key=("m", i)) for i in range(spec.num_matches)]

    for index, player in enumerate(players):
        fact_count = rng.randint(*spec.plays_per_player)
        transfer = rng.random() < spec.transfer_fraction and fact_count >= 2
        if transfer:
            chosen_teams = rng.sample(teams, min(fact_count, len(teams)))
        else:
            chosen_teams = [rng.choice(teams)] * fact_count
        chosen_matches = rng.sample(matches, min(fact_count, len(matches)))
        for team, match in zip(chosen_teams, chosen_matches):
            builder.add_edge([player, team, match])

    actors = [builder.add_vertex(ACTOR, key=("a", i)) for i in range(spec.num_actors)]
    characters = [
        builder.add_vertex(CHARACTER, key=("c", i)) for i in range(spec.num_characters)
    ]
    shows = [builder.add_vertex(TVSHOW, key=("s", i)) for i in range(spec.num_shows)]
    seasons = [
        builder.add_vertex(SEASON, key=("se", i)) for i in range(spec.num_seasons)
    ]

    for character in characters:
        show = rng.choice(shows)
        recast = rng.random() < spec.recast_fraction
        cast_size = 2 if recast else 1
        cast = rng.sample(actors, cast_size)
        season_pool = rng.sample(seasons, min(cast_size + 1, len(seasons)))
        for which, actor in enumerate(cast):
            builder.add_edge([actor, character, show, season_pool[which]])
    # A few extra roles so actors have unrelated facts too.
    for actor in actors:
        extra = rng.randint(0, spec.roles_per_actor[1] - 1)
        for _ in range(extra):
            builder.add_edge(
                [
                    actor,
                    rng.choice(characters),
                    rng.choice(shows),
                    rng.choice(seasons),
                ]
            )
    return builder.build()


def query_players_two_teams() -> Hypergraph:
    """Fig. 13a: players who represented different teams in different
    matches — two (Player, Team, Match) facts sharing only the player."""
    return Hypergraph(
        labels=[PLAYER, TEAM, MATCH, TEAM, MATCH],
        edges=[{0, 1, 2}, {0, 3, 4}],
    )


def query_recast_character() -> Hypergraph:
    """Fig. 13b: actors who played the same character in a TV show on
    different seasons — two (Actor, Character, TVShow, Season) facts
    sharing the character and the show."""
    return Hypergraph(
        labels=[CHARACTER, TVSHOW, ACTOR, SEASON, ACTOR, SEASON],
        edges=[{0, 1, 2, 3}, {0, 1, 4, 5}],
    )


def describe_answer(
    kb: Hypergraph, mapping: Dict[int, int], query: Hypergraph
) -> List[Tuple[str, int]]:
    """Render one vertex mapping as (type, entity id) pairs for display."""
    return [
        (str(query.label(query_vertex)), data_vertex)
        for query_vertex, data_vertex in sorted(mapping.items())
    ]
