"""Dataset registry: build-and-cache the ten scaled analogues.

``load_dataset("SB")`` returns the deterministic synthetic stand-in for
the paper's senate-bills hypergraph (see :mod:`repro.datasets.profiles`
for the substitution rationale); ``load_store`` additionally builds and
caches the partitioned index, so repeated benchmark invocations share
the offline preprocessing.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..hypergraph import Hypergraph, PartitionedStore
from ..hypergraph.generators import generate_hypergraph
from .profiles import DATASET_ORDER, SCALED_SPECS, ScaledSpec

_GRAPH_CACHE: Dict[str, Hypergraph] = {}
_STORE_CACHE: Dict[str, PartitionedStore] = {}


def dataset_names() -> Tuple[str, ...]:
    """All dataset names in the paper's Table II order."""
    return DATASET_ORDER


def dataset_spec(name: str) -> ScaledSpec:
    """The scaled generator spec for ``name`` (KeyError-safe message)."""
    try:
        return SCALED_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {list(DATASET_ORDER)}"
        ) from None


def build_dataset(spec: ScaledSpec) -> Hypergraph:
    """Generate the hypergraph for ``spec`` (deterministic in its seed)."""
    rng = random.Random(spec.seed)
    return generate_hypergraph(
        num_vertices=spec.num_vertices,
        num_edges=spec.num_edges,
        num_labels=spec.num_labels,
        mean_arity=spec.mean_arity,
        max_arity=spec.max_arity,
        rng=rng,
        degree_exponent=spec.degree_exponent,
        label_exponent=spec.label_exponent,
        min_arity=spec.min_arity,
    )


def load_dataset(name: str) -> Hypergraph:
    """Return (and cache) the scaled analogue named ``name``."""
    if name not in _GRAPH_CACHE:
        _GRAPH_CACHE[name] = build_dataset(dataset_spec(name))
    return _GRAPH_CACHE[name]


def load_store(name: str) -> PartitionedStore:
    """Return (and cache) the indexed store for dataset ``name``."""
    if name not in _STORE_CACHE:
        _STORE_CACHE[name] = PartitionedStore(load_dataset(name))
    return _STORE_CACHE[name]


def clear_caches() -> None:
    """Drop all cached datasets/stores (test isolation helper)."""
    _GRAPH_CACHE.clear()
    _STORE_CACHE.clear()
