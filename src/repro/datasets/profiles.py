"""Dataset profiles: the paper's Table II plus our scaled parameters.

:data:`PAPER_PROFILES` records the statistics the paper reports for its
ten real-world hypergraphs (house committees, MathOverflow answers,
contact high school, contact primary school, senate bills, house bills,
Walmart trips, Trivago clicks, StackOverflow answers, Amazon reviews).

Those corpora are unavailable offline, and pure-Python enumeration could
not process them at full size anyway, so :data:`SCALED_SPECS` defines a
synthetic analogue per dataset at roughly 1/20–1/2000 scale.  Each spec
preserves the *shape* that drives the experiments: the label-alphabet
size, the vertex/hyperedge ratio regime (vertex-rich MA/WT/TC/SA vs
edge-rich CH/CP/SB/HB), and a high or low mean arity (the paper's
speedups grow with arity).  Maximum arities are capped so that a single
hyperedge stays a tractable Python object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class PaperProfile:
    """One row of the paper's Table II."""

    name: str
    num_vertices: int
    num_edges: int
    num_labels: int
    max_arity: int
    average_arity: float
    index_size: str


@dataclass(frozen=True)
class ScaledSpec:
    """Generator parameters of one scaled synthetic analogue."""

    name: str
    num_vertices: int
    num_edges: int
    num_labels: int
    mean_arity: float
    max_arity: int
    seed: int
    degree_exponent: float = 0.8
    label_exponent: float = 1.0
    min_arity: int = 2


#: Table II of the paper, verbatim.
PAPER_PROFILES: Dict[str, PaperProfile] = {
    profile.name: profile
    for profile in (
        PaperProfile("HC", 1_290, 331, 2, 81, 34.8, "178KB"),
        PaperProfile("MA", 73_851, 5_444, 1_456, 1_784, 24.2, "2.1MB"),
        PaperProfile("CH", 327, 7_818, 9, 5, 2.3, "109KB"),
        PaperProfile("CP", 242, 12_704, 11, 5, 2.4, "190KB"),
        PaperProfile("SB", 294, 20_584, 2, 99, 8.0, "2.1MB"),
        PaperProfile("HB", 1_494, 52_960, 2, 399, 20.5, "15.5MB"),
        PaperProfile("WT", 88_860, 65_507, 11, 25, 6.6, "6.8MB"),
        PaperProfile("TC", 172_738, 212_483, 160, 85, 4.1, "7.8MB"),
        PaperProfile("SA", 15_211_989, 1_103_193, 56_502, 61_315, 23.7, "419.7MB"),
        PaperProfile("AR", 2_268_264, 4_239_108, 29, 9_350, 17.1, "998.6MB"),
    )
}

#: Scaled synthetic analogues.  Seeds fix each dataset forever.
SCALED_SPECS: Dict[str, ScaledSpec] = {
    spec.name: spec
    for spec in (
        # Small, very high arity, tiny alphabet (committees).
        ScaledSpec("HC", 260, 66, 2, 10.0, 20, seed=101, min_arity=4),
        # Vertex-rich, huge alphabet, high arity (MathOverflow).
        ScaledSpec("MA", 1_500, 120, 60, 7.0, 30, seed=102, min_arity=3),
        # Edge-rich contact networks: tiny arity, small alphabet.
        ScaledSpec("CH", 120, 1_500, 9, 2.3, 5, seed=103),
        ScaledSpec("CP", 100, 2_300, 11, 2.4, 5, seed=104),
        # Bill co-sponsorship: tiny alphabet, mid/high arity, edge-rich.
        ScaledSpec("SB", 90, 1_800, 2, 5.0, 18, seed=105),
        ScaledSpec("HB", 160, 2_400, 2, 7.0, 28, seed=106, min_arity=3),
        # Retail/click data: moderate arity and alphabet.
        ScaledSpec("WT", 1_700, 1_300, 11, 6.0, 18, seed=107),
        ScaledSpec("TC", 2_600, 3_200, 40, 4.1, 16, seed=108),
        # Vertex-rich, very large alphabet, high arity (StackOverflow).
        ScaledSpec("SA", 8_000, 650, 400, 7.0, 35, seed=109, min_arity=3),
        # The largest: Amazon reviews analogue used by the parallel
        # experiments (Exp-4/5/6).  Its label distribution is heavily
        # skewed (label_exponent 2.5) so that q3 workload queries carry
        # thousands of embeddings — the low-selectivity regime the
        # paper's parallel experiments exercise.
        ScaledSpec(
            "AR", 2_600, 4_800, 29, 4.0, 30, seed=110, label_exponent=2.5
        ),
    )
}

#: The dataset order used by the paper's tables and figures.
DATASET_ORDER: Tuple[str, ...] = (
    "HC", "MA", "CH", "CP", "SB", "HB", "WT", "TC", "SA", "AR",
)

#: Datasets used in the single-thread comparison (all but AR — Exp-2).
SINGLE_THREAD_DATASETS: Tuple[str, ...] = DATASET_ORDER[:-1]
