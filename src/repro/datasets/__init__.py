"""Synthetic analogues of the paper's datasets (see DESIGN.md)."""

from .jf17k import (
    KBSpec,
    build_knowledge_base,
    query_players_two_teams,
    query_recast_character,
)
from .profiles import (
    DATASET_ORDER,
    PAPER_PROFILES,
    SCALED_SPECS,
    SINGLE_THREAD_DATASETS,
    PaperProfile,
    ScaledSpec,
)
from .registry import (
    build_dataset,
    clear_caches,
    dataset_names,
    dataset_spec,
    load_dataset,
    load_store,
)

__all__ = [
    "DATASET_ORDER",
    "SINGLE_THREAD_DATASETS",
    "PAPER_PROFILES",
    "SCALED_SPECS",
    "PaperProfile",
    "ScaledSpec",
    "dataset_names",
    "dataset_spec",
    "build_dataset",
    "load_dataset",
    "load_store",
    "clear_caches",
    "KBSpec",
    "build_knowledge_base",
    "query_players_two_teams",
    "query_recast_character",
]
