"""Matching-order computation (Algorithm 3 of the paper).

A matching order is a permutation of the query hyperedges
(Definition V.1).  HGMatch works with any *connected* order — each
hyperedge after the first must share a vertex with the region already
ordered — and Algorithm 3 greedily picks:

1. the query hyperedge with minimal cardinality in the data hypergraph
   (``Card(e, H)`` = row count of the signature partition, Definition V.2)
   as the start, then
2. repeatedly the connected hyperedge minimising
   ``Card(e, H) / |V_ϕ ∩ e|`` — low cardinality and high connectivity to
   the ordered region first.

Cardinality lookups are O(1) against :class:`PartitionedStore` metadata,
so the whole computation is O(|E(q)|²).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ..errors import QueryError
from ..hypergraph import Hypergraph, PartitionedStore


def compute_matching_order(
    query: Hypergraph, store: PartitionedStore
) -> Tuple[int, ...]:
    """Return a matching order (tuple of query edge ids) per Algorithm 3.

    Ties are broken by edge id so the order is deterministic.  Raises
    :class:`QueryError` for empty or disconnected queries (a connected
    order cannot exist for the latter).
    """
    if query.num_edges == 0:
        raise QueryError("query hypergraph has no hyperedges")

    cardinalities = [
        store.cardinality(query.edge_signature(edge_id))
        for edge_id in range(query.num_edges)
    ]

    start = min(range(query.num_edges), key=lambda e: (cardinalities[e], e))
    order: List[int] = [start]
    ordered_vertices: Set[int] = set(query.edge(start))
    remaining = set(range(query.num_edges)) - {start}

    while remaining:
        best_edge = -1
        best_key: Tuple[float, int] = (float("inf"), -1)
        for edge_id in remaining:
            overlap = len(ordered_vertices & query.edge(edge_id))
            if overlap == 0:
                continue
            key = (cardinalities[edge_id] / overlap, edge_id)
            if key < best_key:
                best_key = key
                best_edge = edge_id
        if best_edge < 0:
            raise QueryError(
                "query hypergraph is disconnected; HGMatch requires a "
                "connected matching order"
            )
        order.append(best_edge)
        ordered_vertices.update(query.edge(best_edge))
        remaining.remove(best_edge)

    return tuple(order)


def is_connected_order(query: Hypergraph, order: Sequence[int]) -> bool:
    """True if ``order`` is a valid connected matching order for ``query``.

    Used to validate user-supplied orders passed to the engine.
    """
    if sorted(order) != list(range(query.num_edges)):
        return False
    if not order:
        return False
    seen: Set[int] = set(query.edge(order[0]))
    for edge_id in order[1:]:
        edge = query.edge(edge_id)
        if not seen & edge:
            return False
        seen.update(edge)
    return True
