"""HGMatch core: the match-by-hyperedge framework (Sections IV–V).

Public entry point is :class:`HGMatch` — construct it over a data
hypergraph (offline indexing happens there) and call ``match`` /
``count``.  The submodules expose the individual algorithms for direct
use and for the ablation benchmarks: matching order (Algorithm 3),
candidate generation (Algorithm 4), profile validation (Algorithm 5) and
the vertex-mapping expansion.
"""

from .candidates import (
    AnchorUnionMemo,
    CandidateSet,
    ChunkCandidates,
    MaskCandidates,
    TupleCandidates,
    VertexStepState,
    generate_candidate_set,
    generate_candidates,
    vertex_step_map,
    vertex_step_tuples,
)
from .counters import WORK_UNIT_MODELS, MatchCounters
from .engine import Embedding, HGMatch
from .estimation import (
    PlanEstimate,
    StepEstimate,
    compare_orders,
    estimate_driven_order,
    estimate_order,
    explain,
)
from .expansion import (
    count_vertex_mappings,
    data_profile_classes,
    iter_vertex_mappings,
    query_profile_classes,
)
from .ordering import compute_matching_order, is_connected_order
from .plan import AnchorRequirement, ExecutionPlan, StepPlan, build_execution_plan
from .validation import certify_embedding, is_valid_expansion

__all__ = [
    "HGMatch",
    "Embedding",
    "MatchCounters",
    "ExecutionPlan",
    "StepPlan",
    "AnchorRequirement",
    "build_execution_plan",
    "compute_matching_order",
    "is_connected_order",
    "generate_candidates",
    "generate_candidate_set",
    "CandidateSet",
    "TupleCandidates",
    "MaskCandidates",
    "ChunkCandidates",
    "AnchorUnionMemo",
    "WORK_UNIT_MODELS",
    "vertex_step_map",
    "vertex_step_tuples",
    "VertexStepState",
    "is_valid_expansion",
    "certify_embedding",
    "iter_vertex_mappings",
    "count_vertex_mappings",
    "query_profile_classes",
    "data_profile_classes",
    "PlanEstimate",
    "StepEstimate",
    "estimate_order",
    "estimate_driven_order",
    "compare_orders",
    "explain",
]
