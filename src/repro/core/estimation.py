"""Cardinality estimation for execution plans.

The plan generator of Fig. 3 "fetches cardinality information from the
indexed data hypergraph to select a better matching order"; Algorithm 3
uses the raw partition row counts.  This module builds the natural next
layer a database system would add on the same metadata: per-step
*expansion factor* estimates and a plan-level cost/cardinality model,
exposed through :func:`explain`.

The model is intentionally simple and uses only O(1)-accessible index
statistics, in the spirit of the paper's design (no runtime auxiliary
structures):

* the SCAN step emits ``Card(ϕ[0], H)`` partial embeddings;
* an EXPAND step keeps, for each anchor vertex shared with a previous
  hyperedge, roughly ``avg_postings(partition)`` incident candidate
  edges out of ``Card(partition)`` — the selectivity of one posting-list
  intersection — multiplied over the step's anchors;
* the estimated cost of a step is (estimated input) × (average posting
  length summed over anchors), matching the set-operation work the
  engine actually charges.

The estimates feed an alternative ordering strategy
(:func:`estimate_driven_order`) benchmarked against Algorithm 3 in the
matching-order ablation, and power ``EXPLAIN``-style output in the CLI
and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..errors import QueryError
from ..hypergraph import Hypergraph, PartitionedStore
from ..hypergraph.storage import HyperedgePartition


@dataclass(frozen=True)
class StepEstimate:
    """Estimated cardinality/cost of one plan step."""

    step: int
    query_edge_id: int
    partition_rows: int
    anchors: int
    expansion_factor: float
    estimated_output: float
    estimated_cost: float


@dataclass(frozen=True)
class PlanEstimate:
    """Aggregate estimate for a whole matching order."""

    steps: Tuple[StepEstimate, ...]
    estimated_embeddings: float
    estimated_cost: float

    def describe(self) -> str:
        lines = ["PlanEstimate:"]
        for step in self.steps:
            lines.append(
                f"  [{step.step}] edge {step.query_edge_id}: "
                f"rows={step.partition_rows} anchors={step.anchors} "
                f"fanout≈{step.expansion_factor:.3g} "
                f"out≈{step.estimated_output:.3g} cost≈{step.estimated_cost:.3g}"
            )
        lines.append(
            f"  total: embeddings≈{self.estimated_embeddings:.3g} "
            f"cost≈{self.estimated_cost:.3g}"
        )
        return "\n".join(lines)


def average_posting_length(partition: "HyperedgePartition | None") -> float:
    """Mean posting-list length of a partition's inverted index.

    This is the expected number of same-signature hyperedges incident to
    a vertex that occurs in the partition at all — the key selectivity
    statistic of one anchor intersection.
    """
    if partition is None or len(partition.index) == 0:
        return 0.0
    return partition.index.num_entries / len(partition.index)


def estimate_order(
    query: Hypergraph, store: PartitionedStore, order: Sequence[int]
) -> PlanEstimate:
    """Estimate per-step cardinalities and costs for ``order``."""
    if not order:
        raise QueryError("cannot estimate an empty matching order")
    estimates: List[StepEstimate] = []
    covered: Set[int] = set()
    running_output = 1.0
    total_cost = 0.0
    for step, edge_id in enumerate(order):
        edge = query.edge(edge_id)
        partition = store.partition(query.edge_signature(edge_id))
        rows = partition.cardinality if partition is not None else 0
        posting = average_posting_length(partition)
        anchors = len(edge & covered)
        if step == 0:
            fanout = float(rows)
            cost = float(rows)
        elif rows == 0:
            fanout = 0.0
            cost = running_output
        else:
            # Each anchor keeps ~posting candidates; intersecting the
            # anchors' unions multiplies the single-anchor selectivity
            # (posting/rows) per extra anchor.
            fanout = posting * (posting / rows) ** max(anchors - 1, 0)
            cost = running_output * posting * max(anchors, 1)
        running_output *= fanout
        total_cost += cost
        estimates.append(
            StepEstimate(
                step=step,
                query_edge_id=edge_id,
                partition_rows=rows,
                anchors=anchors,
                expansion_factor=fanout,
                estimated_output=running_output,
                estimated_cost=cost,
            )
        )
        covered |= edge
    return PlanEstimate(
        steps=tuple(estimates),
        estimated_embeddings=running_output,
        estimated_cost=total_cost,
    )


def estimate_driven_order(
    query: Hypergraph, store: PartitionedStore
) -> Tuple[int, ...]:
    """Greedy order minimising the *estimated expansion factor* per step.

    An alternative to Algorithm 3: instead of ``Card(e)/|V_ϕ ∩ e|``,
    pick at each step the connected hyperedge whose estimated fanout
    (see :func:`estimate_order`) is smallest.  Benchmarked against the
    paper's order in ``bench_ablation_matching_order``.
    """
    if query.num_edges == 0:
        raise QueryError("query hypergraph has no hyperedges")

    def partition_stats(edge_id: int) -> Tuple[int, float]:
        partition = store.partition(query.edge_signature(edge_id))
        rows = partition.cardinality if partition is not None else 0
        return rows, average_posting_length(partition)

    start = min(
        range(query.num_edges), key=lambda e: (partition_stats(e)[0], e)
    )
    order = [start]
    covered: Set[int] = set(query.edge(start))
    remaining = set(range(query.num_edges)) - {start}
    while remaining:
        best_edge = -1
        best_key: Tuple[float, int] = (float("inf"), -1)
        for edge_id in remaining:
            anchors = len(covered & query.edge(edge_id))
            if anchors == 0:
                continue
            rows, posting = partition_stats(edge_id)
            if rows == 0:
                fanout = 0.0
            else:
                fanout = posting * (posting / rows) ** (anchors - 1)
            key = (fanout, edge_id)
            if key < best_key:
                best_key = key
                best_edge = edge_id
        if best_edge < 0:
            raise QueryError(
                "query hypergraph is disconnected; a connected order "
                "cannot be estimated"
            )
        order.append(best_edge)
        covered |= query.edge(best_edge)
        remaining.remove(best_edge)
    return tuple(order)


def explain(
    engine, query: Hypergraph, order: "Sequence[int] | None" = None
) -> str:
    """EXPLAIN-style text: the plan plus its cardinality/cost estimates.

    ``engine`` is an :class:`repro.core.engine.HGMatch` instance (typed
    loosely to avoid an import cycle).
    """
    plan = engine.plan(query, order)
    estimate = estimate_order(query, engine.store, plan.order)
    return plan.describe() + "\n" + estimate.describe()


def compare_orders(
    engine, query: Hypergraph, orders: Dict[str, Sequence[int]]
) -> List[dict]:
    """Estimate several candidate orders; rows sorted by estimated cost."""
    rows = []
    for name, order in orders.items():
        estimate = estimate_order(query, engine.store, order)
        rows.append(
            {
                "order": name,
                "steps": list(order),
                "est_cost": estimate.estimated_cost,
                "est_embeddings": estimate.estimated_embeddings,
            }
        )
    rows.sort(key=lambda row: row["est_cost"])
    return rows
