"""Expanding hyperedge-level embeddings into vertex mappings.

HGMatch's results are tuples of data hyperedges (one per query
hyperedge).  For applications that need explicit vertex bindings — e.g.
the knowledge-base Q/A case study returns entity assignments — this
module enumerates all injective, label-preserving vertex mappings behind
a hyperedge-level embedding.

The structure of a valid mapping is rigid: because every query hyperedge
``ϕ[i]`` must map *exactly onto* ``matched_edges[i]`` and the mapping is
injective, a query vertex ``u`` can only map to a data vertex ``v`` whose
incidence step set equals ``u``'s (``u ∈ ϕ[i] ⟺ v ∈ matched_edges[i]``)
and whose label matches — i.e. to a vertex in the same *profile class*
(Definition V.3).  Any class-wise bijection is then a valid mapping, so:

* the number of vertex mappings is the product of ``k!`` over classes of
  size ``k`` (0 if any class sizes disagree), and
* enumeration is the cartesian product of per-class permutations.
"""

from __future__ import annotations

import math
from itertools import permutations, product
from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple

from ..hypergraph import Hypergraph

ProfileKey = Tuple[object, FrozenSet[int]]


def query_profile_classes(
    query: Hypergraph, order: Sequence[int]
) -> Dict[ProfileKey, List[int]]:
    """Group query vertices by (label, incident step set) under ``order``."""
    incident: Dict[int, set] = {}
    for step, edge_id in enumerate(order):
        for vertex in query.edge(edge_id):
            incident.setdefault(vertex, set()).add(step)
    classes: Dict[ProfileKey, List[int]] = {}
    for vertex, steps in incident.items():
        classes.setdefault((query.label(vertex), frozenset(steps)), []).append(vertex)
    for members in classes.values():
        members.sort()
    return classes


def data_profile_classes(
    data: Hypergraph, matched_edges: Sequence[int]
) -> Dict[ProfileKey, List[int]]:
    """Group embedding data vertices by (label, incident step set)."""
    incident: Dict[int, set] = {}
    for step, edge_id in enumerate(matched_edges):
        for vertex in data.edge(edge_id):
            incident.setdefault(vertex, set()).add(step)
    classes: Dict[ProfileKey, List[int]] = {}
    for vertex, steps in incident.items():
        classes.setdefault((data.label(vertex), frozenset(steps)), []).append(vertex)
    for members in classes.values():
        members.sort()
    return classes


def count_vertex_mappings(
    data: Hypergraph,
    query: Hypergraph,
    order: Sequence[int],
    matched_edges: Sequence[int],
) -> int:
    """Number of injective vertex mappings realising this embedding.

    Zero when the profile classes disagree (the embedding is invalid);
    otherwise the product of factorials of class sizes.
    """
    query_classes = query_profile_classes(query, order)
    data_classes = data_profile_classes(data, matched_edges)
    if set(query_classes) != set(data_classes):
        return 0
    total = 1
    for key, members in query_classes.items():
        if len(members) != len(data_classes[key]):
            return 0
        total *= math.factorial(len(members))
    return total


def iter_vertex_mappings(
    data: Hypergraph,
    query: Hypergraph,
    order: Sequence[int],
    matched_edges: Sequence[int],
) -> Iterator[Dict[int, int]]:
    """Yield every injective vertex mapping ``{query vertex: data vertex}``.

    Yields nothing when the hyperedge tuple admits no consistent mapping.
    """
    query_classes = query_profile_classes(query, order)
    data_classes = data_profile_classes(data, matched_edges)
    if set(query_classes) != set(data_classes):
        return
    keys = sorted(query_classes, key=repr)
    per_class: List[List[Tuple[Tuple[int, int], ...]]] = []
    for key in keys:
        q_members = query_classes[key]
        d_members = data_classes[key]
        if len(q_members) != len(d_members):
            return
        assignments = [
            tuple(zip(q_members, perm)) for perm in permutations(d_members)
        ]
        per_class.append(assignments)
    for combo in product(*per_class):
        mapping: Dict[int, int] = {}
        for pairs in combo:
            mapping.update(pairs)
        yield mapping
