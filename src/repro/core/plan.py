"""Execution plans: the per-step precomputation for match-by-hyperedge.

HGMatch's plan generator (Fig. 3) turns a query hypergraph into an
:class:`ExecutionPlan` — a matching order plus, for every step, all the
query-side information Algorithms 4 and 5 consult at runtime:

* the step's hyperedge signature (which data partition to probe),
* which previous steps are adjacent / non-adjacent (Observations V.2, V.3),
* the *anchor requirements*: for each previous adjacent hyperedge ``e``
  and shared query vertex ``u ∈ e ∩ e_q``, the label and partial-query
  degree ``d_q'(u)`` that a matching data vertex must reproduce
  (Observation V.4),
* the expected total vertex count after the step (Observation V.5), and
* the multiset of query vertex profiles for validation (Theorem V.2).

All of this depends only on the query and the matching order, so it is
computed once and shared by every task that expands that step — tasks
themselves carry nothing but a tuple of matched data-hyperedge ids.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Sequence, Set, Tuple

from ..hypergraph import Hypergraph, Signature

#: One entry of a step's precomputed profile key: ``(label id, ascending
#: tuple of incident step indices)``.
ProfileEntry = Tuple[int, Tuple[int, ...]]


@dataclass(frozen=True)
class AnchorRequirement:
    """One (previous step, shared vertex) pair for candidate generation.

    A candidate data hyperedge for the current step must be incident to a
    vertex of ``f(ϕ[prev_step])`` whose label is ``label`` and whose
    degree inside the partial embedding equals ``required_degree``.
    """

    prev_step: int
    query_vertex: int
    label: object
    required_degree: int


@dataclass(frozen=True)
class StepPlan:
    """Everything Algorithms 4 and 5 need to expand one matching step."""

    step: int
    query_edge_id: int
    signature: Signature
    adjacent_prev: Tuple[int, ...]
    nonadjacent_prev: Tuple[int, ...]
    anchors: Tuple[AnchorRequirement, ...]
    expected_num_vertices: int
    #: Multiset of query vertex profiles for the step's hyperedge:
    #: ``(label, frozenset of incident step indices including this step)``.
    query_profile: "Counter[Tuple[object, FrozenSet[int]]]"
    #: Fast-path view of ``query_profile``: labels are interned to small
    #: ints (``profile_label_ids``) and the multiset is flattened to a
    #: sorted tuple of ``(label id, sorted step tuple)`` entries, so
    #: validation compares plain tuples instead of building a ``Counter``
    #: of frozensets per candidate.  Empty only on hand-built plans that
    #: predate the fast path; validation then falls back to the Counter.
    profile_label_ids: Mapping[object, int] = field(default_factory=dict)
    profile_key: Tuple[ProfileEntry, ...] = ()
    #: Bitmask twin of ``profile_key``: each entry is ``(label id, step
    #: bitmask)`` with bit ``s`` set iff the vertex occurs in step
    #: ``s <= step``.  The mask backends' validation compares profiles
    #: over these small ints (one ``|`` per candidate vertex) instead of
    #: concatenating sorted step tuples — same multiset, bijective
    #: encoding (a set of step indices and its bitmask determine each
    #: other), so Theorem V.2's equality test is unchanged.
    profile_mask_key: Tuple[Tuple[int, int], ...] = ()


@dataclass(frozen=True)
class ExecutionPlan:
    """A complete plan: matching order plus one :class:`StepPlan` per step."""

    query: Hypergraph
    order: Tuple[int, ...]
    steps: Tuple[StepPlan, ...]
    estimated_start_cardinality: int = 0
    #: Sorted tuple of query vertices in order of first appearance, kept
    #: for embedding expansion back to vertex mappings.
    vertex_arrival: Tuple[int, ...] = field(default=())
    #: Posting-list representation of the store the plan was built
    #: against (informational; candidate generation dispatches on the
    #: partition's own index at runtime).
    index_backend: str = "merge"

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        """Human-readable plan summary (used by examples and --explain)."""
        lines = [
            f"ExecutionPlan over {self.query!r} "
            f"(index backend: {self.index_backend})"
        ]
        for step in self.steps:
            edge = sorted(self.query.edge(step.query_edge_id))
            kind = "SCAN" if step.step == 0 else "EXPAND"
            lines.append(
                f"  [{step.step}] {kind} query edge {step.query_edge_id} "
                f"{edge} signature={step.signature} "
                f"adj={list(step.adjacent_prev)}"
            )
        lines.append("  [sink] SINK")
        return "\n".join(lines)


def build_execution_plan(
    query: Hypergraph,
    order: Sequence[int],
    start_cardinality: int = 0,
    index_backend: str = "merge",
) -> ExecutionPlan:
    """Precompute the :class:`ExecutionPlan` for ``query`` under ``order``."""
    order = tuple(order)
    # vertex -> set of step indices whose query hyperedge contains it
    incident_steps: Dict[int, Set[int]] = {}
    for step, edge_id in enumerate(order):
        for vertex in query.edge(edge_id):
            incident_steps.setdefault(vertex, set()).add(step)

    steps: List[StepPlan] = []
    covered: Set[int] = set()
    arrival: List[int] = []
    for step, edge_id in enumerate(order):
        edge = query.edge(edge_id)
        adjacent: List[int] = []
        nonadjacent: List[int] = []
        for prev in range(step):
            prev_edge = query.edge(order[prev])
            if prev_edge & edge:
                adjacent.append(prev)
            else:
                nonadjacent.append(prev)

        anchors: List[AnchorRequirement] = []
        for prev in adjacent:
            prev_edge = query.edge(order[prev])
            for vertex in sorted(prev_edge & edge):
                # Degree of the query vertex within the partial query
                # *before* this step (Observation V.4 / Algorithm 4, L5).
                degree_before = sum(
                    1 for s in incident_steps[vertex] if s < step
                )
                anchors.append(
                    AnchorRequirement(
                        prev_step=prev,
                        query_vertex=vertex,
                        label=query.label(vertex),
                        required_degree=degree_before,
                    )
                )

        profile: Counter = Counter()
        label_ids: Dict[object, int] = {}
        key_entries: List[ProfileEntry] = []
        mask_entries: List[Tuple[int, int]] = []
        for vertex in edge:
            incident_upto = frozenset(
                s for s in incident_steps[vertex] if s <= step
            )
            label = query.label(vertex)
            profile[(label, incident_upto)] += 1
            label_id = label_ids.setdefault(label, len(label_ids))
            key_entries.append((label_id, tuple(sorted(incident_upto))))
            mask_entries.append(
                (label_id, sum(1 << s for s in incident_upto))
            )
        key_entries.sort()
        mask_entries.sort()

        new_vertices = edge - covered
        covered |= edge
        arrival.extend(sorted(new_vertices))

        steps.append(
            StepPlan(
                step=step,
                query_edge_id=edge_id,
                signature=query.edge_signature(edge_id),
                adjacent_prev=tuple(adjacent),
                nonadjacent_prev=tuple(nonadjacent),
                anchors=tuple(anchors),
                expected_num_vertices=len(covered),
                query_profile=profile,
                profile_label_ids=label_ids,
                profile_key=tuple(key_entries),
                profile_mask_key=tuple(mask_entries),
            )
        )

    return ExecutionPlan(
        query=query,
        order=order,
        steps=tuple(steps),
        estimated_start_cardinality=start_cardinality,
        vertex_arrival=tuple(arrival),
        index_backend=index_backend,
    )
