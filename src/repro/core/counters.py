"""Execution counters for the filtering-power experiment (Exp-3, Fig. 9).

The paper instruments three quantities per query:

* **Candidates** — hyperedge candidates produced by Algorithm 4 across
  the whole enumeration,
* **Filtered** — candidates surviving the cheap vertex-count check
  (Observation V.5),
* **Embeddings** — complete, validated embeddings.

:class:`MatchCounters` records those plus a few engine-health metrics
(tasks executed, set-operation work units) that the simulated parallel
executor uses as its cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MatchCounters:
    """Mutable counters threaded through one matching job."""

    candidates: int = 0
    filtered: int = 0
    embeddings: int = 0
    #: Same funnel restricted to the *final* matching step — the numbers
    #: behind the paper's "97% of filtered results are true embeddings".
    final_candidates: int = 0
    final_filtered: int = 0
    tasks: int = 0
    #: Abstract set-operation work units (posting entries touched).  The
    #: simulated executor charges task costs from this.
    work_units: int = 0
    #: Peak number of partial embeddings retained at once (scheduler
    #: memory accounting, Exp-5).
    peak_retained: int = 0
    retained: int = field(default=0, repr=False)

    def note_retained(self, delta: int) -> None:
        """Track the running number of live partial embeddings."""
        self.retained += delta
        if self.retained > self.peak_retained:
            self.peak_retained = self.retained

    def merge(self, other: "MatchCounters") -> None:
        """Fold another counter set into this one (parallel workers)."""
        self.candidates += other.candidates
        self.filtered += other.filtered
        self.embeddings += other.embeddings
        self.final_candidates += other.final_candidates
        self.final_filtered += other.final_filtered
        self.tasks += other.tasks
        self.work_units += other.work_units
        self.peak_retained = max(self.peak_retained, other.peak_retained)

    def false_positive_rate(self) -> float:
        """Fraction of vertex-count-surviving candidates that fail full
        validation: ``1 - embeddings / filtered`` (0.0 when nothing was
        filtered)."""
        if self.filtered == 0:
            return 0.0
        return 1.0 - (self.embeddings / self.filtered)

    def final_step_precision(self) -> float:
        """Fraction of final-step vertex-count-surviving candidates that
        are true embeddings (Exp-3's headline 97% number)."""
        if self.final_filtered == 0:
            return 1.0
        return self.embeddings / self.final_filtered

    def as_row(self) -> dict:
        """Dict form for report tables."""
        return {
            "candidates": self.candidates,
            "filtered": self.filtered,
            "embeddings": self.embeddings,
            "final_candidates": self.final_candidates,
            "final_filtered": self.final_filtered,
            "tasks": self.tasks,
            "work_units": self.work_units,
            "peak_retained": self.peak_retained,
        }
