"""Execution counters for the filtering-power experiment (Exp-3, Fig. 9).

The paper instruments three quantities per query:

* **Candidates** — hyperedge candidates produced by Algorithm 4 across
  the whole enumeration,
* **Filtered** — candidates surviving the cheap vertex-count check
  (Observation V.5),
* **Embeddings** — complete, validated embeddings.

:class:`MatchCounters` records those plus a few engine-health metrics
(tasks executed, set-operation work units) that the simulated parallel
executor uses as its cost model.

Work-unit cost models
---------------------
``work_units`` is charged differently per index backend, and the two
models are **not comparable raw** — a run's model is recorded in
:attr:`MatchCounters.work_model` (see :data:`WORK_UNIT_MODELS`):

``"postings"`` (merge backend)
    The paper's faithful Algorithm 4 cost: one unit per posting entry
    scanned by the k-way union/intersection merge loops, plus the
    anchor vertices inspected.  Proportional to the data actually
    merged, which is what the simulated executor charges.

``"mask-ops"`` (bitset and adaptive backends)
    One unit per anchor vertex scanned, per posting mask OR-ed into an
    anchor union (a single unit on an anchor-union memo hit), and per
    candidate in the result cardinality.  The big-int / container ops
    the backend actually performs — typically one to two orders of
    magnitude fewer units than ``"postings"`` for the same query.

Cross-backend comparisons must divide by each run's own model (the
bench harness labels rows via
:func:`repro.bench.reporting.work_model_label`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: ``index backend name -> work_units cost model`` (see module docs).
WORK_UNIT_MODELS = {
    "merge": "postings",
    "bitset": "mask-ops",
    "adaptive": "mask-ops",
}


@dataclass
class MatchCounters:
    """Mutable counters threaded through one matching job."""

    candidates: int = 0
    filtered: int = 0
    embeddings: int = 0
    #: Same funnel restricted to the *final* matching step — the numbers
    #: behind the paper's "97% of filtered results are true embeddings".
    final_candidates: int = 0
    final_filtered: int = 0
    tasks: int = 0
    #: Abstract set-operation work units under the cost model named by
    #: :attr:`work_model` (module docs).  The simulated executor charges
    #: task costs from this.
    work_units: int = 0
    #: Which cost model ``work_units`` was charged under: ``"postings"``,
    #: ``"mask-ops"``, ``""`` (not stamped) or ``"mixed"`` (counters from
    #: runs under different models were merged — the sum is meaningless).
    work_model: str = ""
    #: Peak number of partial embeddings retained at once (scheduler
    #: memory accounting, Exp-5).
    peak_retained: int = 0
    retained: int = field(default=0, repr=False)

    def note_retained(self, delta: int) -> None:
        """Track the running number of live partial embeddings."""
        self.retained += delta
        if self.retained > self.peak_retained:
            self.peak_retained = self.retained

    def note_work_model(self, model: str) -> None:
        """Record the cost model a run charges ``work_units`` under.

        Reusing one counter set across runs with different models turns
        the sum meaningless; as in :meth:`merge`, that is surfaced as
        ``"mixed"`` rather than silently relabelled.
        """
        if not model:
            return
        if not self.work_model:
            self.work_model = model
        elif self.work_model != model:
            self.work_model = "mixed"

    def merge(self, other: "MatchCounters") -> None:
        """Fold another counter set into this one (parallel workers)."""
        self.candidates += other.candidates
        self.filtered += other.filtered
        self.embeddings += other.embeddings
        self.final_candidates += other.final_candidates
        self.final_filtered += other.final_filtered
        self.tasks += other.tasks
        self.work_units += other.work_units
        if other.work_model:
            if not self.work_model:
                self.work_model = other.work_model
            elif self.work_model != other.work_model:
                self.work_model = "mixed"
        self.peak_retained = max(self.peak_retained, other.peak_retained)

    def false_positive_rate(self) -> float:
        """Fraction of vertex-count-surviving candidates that fail full
        validation: ``1 - embeddings / filtered`` (0.0 when nothing was
        filtered)."""
        if self.filtered == 0:
            return 0.0
        return 1.0 - (self.embeddings / self.filtered)

    def final_step_precision(self) -> float:
        """Fraction of final-step vertex-count-surviving candidates that
        are true embeddings (Exp-3's headline 97% number)."""
        if self.final_filtered == 0:
            return 1.0
        return self.embeddings / self.final_filtered

    def as_row(self) -> dict:
        """Dict form for report tables."""
        return {
            "candidates": self.candidates,
            "filtered": self.filtered,
            "embeddings": self.embeddings,
            "final_candidates": self.final_candidates,
            "final_filtered": self.final_filtered,
            "tasks": self.tasks,
            "work_units": self.work_units,
            "work_model": self.work_model,
            "peak_retained": self.peak_retained,
        }
