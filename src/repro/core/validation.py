"""Embedding validation (Algorithm 5 / Theorem V.2 of the paper).

Candidate generation can produce false positives; HGMatch removes them
without any backtracking search by comparing *vertex profiles*.  The
profile of a data vertex ``v`` inside a partial embedding is the pair
``(label(v), set of matched hyperedges containing v)``; the profile of a
query vertex maps its incident query hyperedges to their matched images.
Theorem V.2: the expansion is valid iff the profile multisets of the
newly added query hyperedge and its candidate data hyperedge are equal
(after the cheap total-vertex-count check of Observation V.5).

Profiles here use *step indices* instead of hyperedge ids on both sides,
which is the same thing up to the bijection ``step ↔ f(ϕ[step])`` and
lets the query-side multiset be precomputed once in the plan.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Sequence, Set, Tuple

from ..hypergraph import Hypergraph
from .counters import MatchCounters
from .plan import StepPlan


def is_valid_expansion(
    data: Hypergraph,
    step_plan: StepPlan,
    vmap: Dict[int, Set[int]],
    partial_num_vertices: int,
    candidate_edge: int,
    counters: "MatchCounters | None" = None,
    final_step: bool = False,
    step_tuples: "Dict[int, Tuple[int, ...]] | None" = None,
    step_masks: "Dict[int, int] | None" = None,
) -> bool:
    """Run Algorithm 5 for one candidate.

    Parameters
    ----------
    vmap:
        ``vertex_step_map`` of the partial embedding *before* adding the
        candidate.
    partial_num_vertices:
        ``len(vmap)`` (passed in so callers don't recompute it per
        candidate).
    candidate_edge:
        Data hyperedge id proposed for ``step_plan.step``.
    step_tuples:
        Optionally the per-vertex *ascending step tuples* of the partial
        embedding (``VertexStepState.step_tuples`` or
        :func:`repro.core.candidates.vertex_step_tuples`).  When given,
        the profile fast path reads them directly instead of sorting
        each vertex's step set per candidate.
    step_masks:
        Optionally the per-vertex *step bitmasks* of the partial
        embedding (``VertexStepState.step_masks``).  When given — the
        mask backends' enumeration loops pass it — the profile
        comparison runs entirely over small ints against the plan's
        ``profile_mask_key``: one ``|`` per vertex instead of a tuple
        concatenation.  Equivalent to the tuple path by the bijection
        between step sets and their bitmasks (pinned by the validation
        test suite).
    """
    edge = data.edge(candidate_edge)

    # Observation V.5: vertex counts must agree.
    new_vertices = sum(1 for v in edge if v not in vmap)
    if partial_num_vertices + new_vertices != step_plan.expected_num_vertices:
        return False
    if counters is not None:
        counters.filtered += 1
        if final_step:
            counters.final_filtered += 1

    # Theorem V.2: compare profile multisets over the new hyperedge.
    step = step_plan.step

    if step_masks is not None and step_plan.profile_mask_key:
        # Mask fast path (Algorithm 5 over the bitset algebra): profiles
        # are (label id, step bitmask) pairs; same multiset equality as
        # the tuple path under the set <-> bitmask bijection.
        label_ids = step_plan.profile_label_ids
        step_bit = 1 << step
        mask_entries = []
        for vertex in edge:
            if counters is not None:
                counters.work_units += 1
            label_id = label_ids.get(data.label(vertex))
            if label_id is None:
                return False
            mask_entries.append(
                (label_id, step_masks.get(vertex, 0) | step_bit)
            )
        mask_entries.sort()
        return tuple(mask_entries) == step_plan.profile_mask_key

    profile_key = step_plan.profile_key
    if profile_key:
        # Fast path: the plan interned labels to small ints and flattened
        # its multiset to a sorted tuple, so the data side only builds a
        # parallel tuple — no Counter, no frozenset hashing.  Step sets in
        # ``vmap`` hold indices < step, hence appending ``step`` keeps the
        # per-vertex step tuple sorted; with ``step_tuples`` supplied the
        # sorted prefix comes precomputed from the enumeration loop.
        label_ids = step_plan.profile_label_ids
        entries = []
        incident_tuples = step_tuples if step_tuples is not None else None
        for vertex in edge:
            if counters is not None:
                counters.work_units += 1
            label_id = label_ids.get(data.label(vertex))
            if label_id is None:
                return False
            if incident_tuples is not None:
                incident = incident_tuples.get(vertex)
                steps = (step,) if incident is None else incident + (step,)
            else:
                incident = vmap.get(vertex)
                if incident is None:
                    steps = (step,)
                else:
                    steps = tuple(sorted(incident)) + (step,)
            entries.append((label_id, steps))
        entries.sort()
        return tuple(entries) == profile_key

    # Fallback for hand-built StepPlans that predate the profile key.
    data_profile: Counter = Counter()
    for vertex in edge:
        incident = vmap.get(vertex)
        if incident is None:
            steps = frozenset((step,))
        else:
            steps = frozenset(incident | {step})
        data_profile[(data.label(vertex), steps)] += 1
        if counters is not None:
            counters.work_units += 1

    return data_profile == step_plan.query_profile


def certify_embedding(
    data: Hypergraph,
    query: Hypergraph,
    order: Sequence[int],
    matched_edges: Sequence[int],
) -> bool:
    """Exhaustively certify a complete embedding with a vertex mapping.

    Independent of the profile machinery: searches for an injective,
    label-preserving vertex mapping sending every query hyperedge
    ``ϕ[i]`` exactly onto ``matched_edges[i]``.  Used by the engine's
    ``strict`` mode and by the test suite to cross-check Theorem V.2.
    """
    from .expansion import iter_vertex_mappings  # local import: avoid cycle

    for _ in iter_vertex_mappings(data, query, order, matched_edges):
        return True
    return False
