"""The HGMatch engine: match-by-hyperedge enumeration (Algorithm 2).

:class:`HGMatch` owns an indexed data hypergraph (the offline stage of
Fig. 3) and answers queries by:

1. computing a matching order over the query hyperedges (Algorithm 3),
2. building an :class:`ExecutionPlan` with all query-side precomputation,
3. enumerating embeddings by expanding partial embeddings one hyperedge
   at a time — candidates from set operations (Algorithm 4), validation
   by vertex-profile comparison (Algorithm 5).

Enumeration never recurses and builds no runtime auxiliary structure: a
partial embedding is just a tuple of data hyperedge ids, so the same
expansion routine backs the sequential LIFO loop here, the BFS executor
used for the memory experiment, and the parallel task scheduler in
:mod:`repro.parallel`.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import QueryError, TimeoutExceeded
from ..hypergraph import Hypergraph, PartitionedStore
from .candidates import (
    AnchorUnionMemo,
    MaskCandidates,
    VertexStepState,
    generate_candidate_set,
    vertex_step_map,
    vertex_step_tuples,
)
from .counters import WORK_UNIT_MODELS, MatchCounters
from .expansion import count_vertex_mappings, iter_vertex_mappings
from .ordering import compute_matching_order, is_connected_order
from .plan import ExecutionPlan, build_execution_plan
from .validation import certify_embedding, is_valid_expansion

EmbeddingSink = Callable[["Embedding"], None]


class Embedding:
    """One subhypergraph-isomorphism embedding at hyperedge granularity.

    ``edge_ids[i]`` is the data hyperedge matched to the query hyperedge
    at step ``i`` of the plan's matching order.  Use
    :meth:`hyperedge_mapping` for a query-edge-id keyed view and
    :meth:`vertex_mappings` to expand into explicit vertex bindings.
    """

    __slots__ = ("_data", "_query", "_order", "edge_ids")

    def __init__(
        self,
        data: Hypergraph,
        query: Hypergraph,
        order: Tuple[int, ...],
        edge_ids: Tuple[int, ...],
    ) -> None:
        self._data = data
        self._query = query
        self._order = order
        self.edge_ids = edge_ids

    def hyperedge_mapping(self) -> Dict[int, int]:
        """Mapping ``{query edge id: data edge id}``."""
        return dict(zip(self._order, self.edge_ids))

    def canonical(self) -> Tuple[int, ...]:
        """Data edge ids reordered by query edge id — order-independent
        identity of the embedding, used to compare engines."""
        mapping = self.hyperedge_mapping()
        return tuple(mapping[edge_id] for edge_id in range(self._query.num_edges))

    def vertex_mappings(self) -> Iterator[Dict[int, int]]:
        """All injective vertex mappings realising this embedding."""
        return iter_vertex_mappings(self._data, self._query, self._order, self.edge_ids)

    def num_vertex_mappings(self) -> int:
        """Count of injective vertex mappings (product of class factorials)."""
        return count_vertex_mappings(
            self._data, self._query, self._order, self.edge_ids
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Embedding):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:
        return f"Embedding({self.hyperedge_mapping()})"


class HGMatch:
    """The subhypergraph matching engine over one data hypergraph.

    Parameters
    ----------
    data:
        The data hypergraph.  Indexing (signature partitioning plus the
        inverted hyperedge index) happens once here — the offline
        preprocessing stage of Fig. 3.
    store:
        Optionally a prebuilt :class:`PartitionedStore` to share between
        engines.
    index_backend:
        Posting-list representation for a store built here — ``"merge"``
        (sorted tuples), ``"bitset"`` (row-id bitmasks) or ``"adaptive"``
        (roaring-style chunked containers); ``None`` defers to
        ``REPRO_INDEX_BACKEND``/``"merge"``.  Ignored when a prebuilt
        ``store`` is supplied (the store's backend wins).
    shards:
        Default shard count for the multiprocess executor
        (``count``/``count_bfs`` with ``executor="processes"``): each
        signature partition's rows are split into this many contiguous
        ranges, one worker process per shard
        (:class:`repro.parallel.ProcessShardExecutor`).  ``1`` keeps
        everything in-process.
    sharding:
        Shard *placement* mode for the shard executors: ``"uniform"``
        (near-equal row counts per partition, the default) or
        ``"balanced"`` (posting-mass-weighted ranges with partition
        surpluses steered to the least-loaded shard) — see
        :mod:`repro.hypergraph.sharding`.  Counts are bit-identical
        either way; only per-shard load moves.
    """

    def __init__(
        self,
        data: Hypergraph,
        store: "PartitionedStore | None" = None,
        index_backend: "str | None" = None,
        shards: int = 1,
        sharding: "str | None" = None,
    ) -> None:
        if shards < 1:
            raise QueryError("shards must be >= 1")
        from ..hypergraph.sharding import resolve_sharding  # lazy: cheap

        self.data = data
        self.store = (
            store
            if store is not None
            else PartitionedStore(data, index_backend=index_backend)
        )
        self.shards = shards
        self.sharding = resolve_sharding(sharding)
        # Sibling tasks (LIFO/BFS/worker deques) share anchors, so their
        # per-anchor posting unions are memoised engine-wide; the memo is
        # thread-safe and only consulted by the mask backends.
        self._anchor_memo = AnchorUnionMemo()
        # One process pool per engine, built lazily on the first
        # "processes" run and reused across queries (workers keep their
        # store shards warm).
        self._shard_executor = None
        # Likewise one socket coordinator per engine for "sockets" runs
        # (it owns a local worker cluster unless given addresses).
        self._net_executor = None
        # And one always-on match service (multiplexed pool + admission
        # control), built lazily by match_service().
        self._match_service = None

    @property
    def index_backend(self) -> str:
        """The posting-list representation of the engine's store."""
        return getattr(self.store, "index_backend", "merge")

    @property
    def uses_mask_validation(self) -> bool:
        """Whether enumeration validates profiles over step bitmasks.

        The mask backends run Algorithm 5's profile comparison on
        per-vertex step *bitmasks* (``StepPlan.profile_mask_key``), the
        same algebra Algorithm 4 runs on posting masks; the merge
        backend keeps the sorted-tuple path that mirrors the paper's
        profile multisets directly.
        """
        return self.index_backend in ("bitset", "adaptive")

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self, query: Hypergraph, order: "Sequence[int] | None" = None
    ) -> ExecutionPlan:
        """Build the execution plan for ``query`` (online stage, Fig. 3).

        A custom connected matching ``order`` may be supplied; by default
        Algorithm 3 picks one from partition cardinalities.
        """
        if query.num_edges == 0:
            raise QueryError("query hypergraph has no hyperedges")
        if not query.is_connected():
            raise QueryError("HGMatch requires a connected query hypergraph")
        if order is None:
            order = compute_matching_order(query, self.store)
        elif not is_connected_order(query, order):
            raise QueryError(f"invalid matching order {order!r}")
        start_cardinality = self.store.cardinality(
            query.edge_signature(tuple(order)[0])
        )
        return build_execution_plan(
            query, order, start_cardinality, index_backend=self.index_backend
        )

    # ------------------------------------------------------------------
    # Single-step expansion (shared by every execution mode)
    # ------------------------------------------------------------------
    def expand(
        self,
        plan: ExecutionPlan,
        matched_edges: Tuple[int, ...],
        counters: "MatchCounters | None" = None,
        vmap: "Dict[int, set] | None" = None,
        step_tuples: "Dict[int, Tuple[int, ...]] | None" = None,
        step_masks: "Dict[int, int] | None" = None,
    ) -> List[Tuple[int, ...]]:
        """Expand one partial embedding by the next hyperedge in the order.

        Returns the list of extended partial embeddings (possibly empty).
        ``matched_edges`` may be the empty tuple, in which case this is
        the SCAN step emitting the whole signature partition.

        ``vmap`` lets loop-style callers pass the incrementally
        maintained ``vertex_step_map`` of ``matched_edges`` (see
        :class:`repro.core.candidates.VertexStepState`); ``step_tuples``
        likewise passes the state's precomputed per-vertex sorted step
        tuples to validation, and ``step_masks`` its per-vertex step
        bitmasks (the mask backends' validation fast path).  All are
        read, not mutated.  Without them the maps are rebuilt from the
        task tuple, so a bare task remains fully self-contained.

        The expansion is mask-native: the candidate set stays in the
        backend's own representation (bitmask / chunk map) and is
        iterated bit by bit, so candidates that validation rejects are
        never materialised into edge-id tuples.
        """
        step_plan = plan.steps[len(matched_edges)]
        partition = self.store.partition(step_plan.signature)
        if partition is None:
            return []
        if vmap is None:
            vmap = vertex_step_map(self.data, matched_edges)
            step_tuples = vertex_step_tuples(self.data, matched_edges)
        candidates = generate_candidate_set(
            self.data, partition, step_plan, matched_edges, vmap, counters,
            memo=self._anchor_memo,
        )
        final_step = step_plan.step == plan.num_steps - 1
        if counters is not None and final_step:
            counters.final_candidates += len(candidates)
        partial_num_vertices = len(vmap)
        data = self.data
        extended: List[Tuple[int, ...]] = []
        append = extended.append
        if type(candidates) is MaskCandidates:
            # Inline bit scan: cheaper than both the decoded tuple it
            # replaces and a per-bit generator.
            mask = candidates.mask
            row_to_edge = candidates.row_to_edge
            while mask:
                low = mask & -mask
                mask ^= low
                candidate = row_to_edge[low.bit_length() - 1]
                if is_valid_expansion(
                    data,
                    step_plan,
                    vmap,
                    partial_num_vertices,
                    candidate,
                    counters,
                    final_step=final_step,
                    step_tuples=step_tuples,
                    step_masks=step_masks,
                ):
                    append(matched_edges + (candidate,))
            return extended
        for candidate in candidates:
            if is_valid_expansion(
                data,
                step_plan,
                vmap,
                partial_num_vertices,
                candidate,
                counters,
                final_step=final_step,
                step_tuples=step_tuples,
                step_masks=step_masks,
            ):
                append(matched_edges + (candidate,))
        return extended

    # ------------------------------------------------------------------
    # Sequential execution
    # ------------------------------------------------------------------
    def match(
        self,
        query: Hypergraph,
        order: "Sequence[int] | None" = None,
        counters: "MatchCounters | None" = None,
        time_budget: "float | None" = None,
        strict: bool = False,
        first_edges=None,
    ) -> Iterator[Embedding]:
        """Lazily enumerate all embeddings of ``query`` (single-threaded).

        Uses an explicit LIFO stack (the one-thread special case of the
        task scheduler, Section VI-B) so memory stays bounded regardless
        of the result count.

        ``strict=True`` additionally certifies every complete embedding
        with an explicit injective vertex-mapping search — a belt-and-
        braces mode the test suite uses to cross-check Theorem V.2.

        ``first_edges`` (a set of data edge ids) restricts the data edge
        bound at step 0 of the matching order.  Standing-query delta
        enumeration uses it to explore only the subtree rooted at newly
        inserted edges instead of re-enumerating from scratch.
        """
        plan = self.plan(query, order)
        deadline = None if time_budget is None else time.monotonic() + time_budget
        num_steps = plan.num_steps
        if counters is not None:
            counters.note_work_model(WORK_UNIT_MODELS.get(self.index_backend, ""))
        # One incrementally maintained vertex_step_map for the whole loop:
        # consecutive LIFO pops are siblings/children, so advancing costs
        # a push/pop delta instead of a per-task rebuild.
        state = VertexStepState(self.data)
        step_tuples = state.step_tuples
        step_masks = state.step_masks if self.uses_mask_validation else None
        stack: List[Tuple[int, ...]] = [()]
        while stack:
            matched = stack.pop()
            if counters is not None:
                counters.tasks += 1
                counters.note_retained(-1 if matched else 0)
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutExceeded(time.monotonic() - (deadline - time_budget), time_budget)
            vmap = state.advance(matched)
            for extended in self.expand(
                plan, matched, counters, vmap=vmap, step_tuples=step_tuples,
                step_masks=step_masks,
            ):
                if (
                    first_edges is not None
                    and not matched
                    and extended[0] not in first_edges
                ):
                    continue
                if len(extended) == num_steps:
                    if strict and not certify_embedding(
                        self.data, query, plan.order, extended
                    ):
                        raise AssertionError(
                            f"profile validation accepted an embedding that "
                            f"admits no vertex mapping: {extended}"
                        )
                    if counters is not None:
                        counters.embeddings += 1
                    yield Embedding(self.data, query, plan.order, extended)
                else:
                    stack.append(extended)
                    if counters is not None:
                        counters.note_retained(1)

    def count(
        self,
        query: Hypergraph,
        order: "Sequence[int] | None" = None,
        workers: int = 1,
        counters: "MatchCounters | None" = None,
        time_budget: "float | None" = None,
        executor: "str | None" = None,
        shards: "int | None" = None,
    ) -> int:
        """Count all embeddings of ``query``.

        ``executor`` selects the execution engine:

        * ``None`` — the sequential LIFO loop, or ``"threads"`` when
          ``workers > 1`` (the historical behaviour);
        * ``"threads"`` — the work-stealing thread scheduler
          (:class:`repro.parallel.ThreadedExecutor`, ``workers``
          threads); GIL-serialised, demonstrates correctness and load
          balance;
        * ``"processes"`` — the shard-per-process executor
          (:class:`repro.parallel.ProcessShardExecutor`) for real
          multi-core wall clock; the pool persists across calls.
          Parallelism is ``shards``, falling back to the engine's
          ``shards``, falling back to ``workers`` — so
          ``count(q, workers=8, executor="processes")`` runs 8 worker
          processes rather than silently one;
        * ``"sockets"`` — the network shard executor
          (:class:`repro.parallel.NetShardExecutor`): the same
          level-synchronous protocol over framed TCP.  With no
          configured hosts (see :meth:`net_executor`) it spawns a
          local loopback cluster, exercising the full multi-host wire
          path on one machine; parallelism resolves like
          ``"processes"``;
        * ``"simulated"`` — the discrete-event scheduler
          (:class:`repro.parallel.SimulatedExecutor`, virtual time;
          ``time_budget`` does not apply).

        All executors return bit-identical counts.
        """
        if executor is None:
            executor = "threads" if workers > 1 else "sequential"
        if executor == "threads":
            from ..parallel.executor import ThreadedExecutor  # lazy: avoid cycle

            threaded = ThreadedExecutor(num_workers=max(workers, 1))
            result = threaded.run(self, query, order=order, time_budget=time_budget)
            if counters is not None:
                counters.merge(result.counters)
            return result.embeddings
        if executor in ("processes", "sockets"):
            if shards is None and self.shards == 1 and workers > 1:
                # ``workers`` expresses the desired parallelism for the
                # other executors; honour it here too unless the engine
                # or call named an explicit shard count.
                shards = workers
            pool = (
                self.shard_executor(shards)
                if executor == "processes"
                else self.net_executor(shards)
            )
            result = pool.run(
                self, query, order=order, time_budget=time_budget
            )
            if counters is not None:
                counters.merge(result.counters)
            return result.embeddings
        if executor == "simulated":
            from ..parallel.simulation import SimulatedExecutor  # lazy: avoid cycle

            simulated = SimulatedExecutor(num_workers=max(workers, 1))
            result = simulated.run(self, query, order=order)
            if counters is not None:
                counters.merge(result.counters)
            return result.embeddings
        if executor != "sequential":
            raise QueryError(
                f"unknown executor {executor!r}; expected one of "
                f"('sequential', 'threads', 'processes', 'sockets', "
                f"'simulated')"
            )
        total = 0
        for _ in self.match(
            query, order=order, counters=counters, time_budget=time_budget
        ):
            total += 1
        return total

    def shard_executor(self, shards: "int | None" = None):
        """The engine's persistent multiprocess executor (lazily built).

        Workers build their store shards once and stay warm across
        queries; asking for a different shard count tears the pool down
        and rebuilds it.  Worker processes are daemonic, so an exiting
        parent never leaks them; call ``close()`` on the returned
        executor to release them early.
        """
        from ..parallel.shard_executor import ProcessShardExecutor  # lazy

        shards = self.shards if shards is None else shards
        if shards < 1:
            raise QueryError("shards must be >= 1")
        current = self._shard_executor
        if current is not None and (
            current.num_shards != shards
            or current.sharding != self.sharding
        ):
            current.close()
            current = None
        if current is None:
            current = ProcessShardExecutor(
                num_shards=shards,
                index_backend=self.index_backend,
                sharding=self.sharding,
            )
            self._shard_executor = current
        return current

    def net_executor(
        self,
        shards: "int | None" = None,
        hosts=None,
        replicas: "int | None" = None,
        registry=None,
    ):
        """The engine's persistent socket shard executor (lazily built).

        ``hosts`` — a sequence of ``(host, port)`` worker addresses —
        (re)configures the executor for externally managed shard
        servers (the multi-host mode); without it the executor owns a
        local loopback cluster of ``shards`` workers.  ``replicas``
        asks for K-replicated ranges (``hosts`` must then list
        ``shards × replicas`` addresses; a local cluster spawns the
        extra workers itself) — the coordinator fails over and may
        speculate across the replicas of each range.  ``registry`` — a
        started :class:`~repro.parallel.registry.WorkerRegistry` —
        replaces ``hosts``: the worker addresses are *discovered* (the
        executor waits for a full announced pool) and registry
        evictions feed the coordinator's failover mid-job.  A
        configured executor persists across queries like
        :meth:`shard_executor` and is reused when
        ``shards``/``replicas`` are None or match; asking for a
        different layout tears it down and rebuilds.
        """
        from ..parallel.net_executor import NetShardExecutor  # lazy

        if replicas is not None and replicas < 1:
            raise QueryError("replicas must be >= 1")
        current = self._net_executor
        if registry is not None:
            if hosts is not None:
                raise QueryError(
                    "hosts and registry are mutually exclusive: "
                    "addresses are either pinned or discovered"
                )
            if shards is None:
                raise QueryError(
                    "registry discovery needs an explicit shard count"
                )
            if current is not None:
                if (
                    current.registry is registry
                    and current.num_shards == shards
                    and (
                        replicas is None
                        or current.num_replicas == replicas
                    )
                ):
                    return current
                current.close()
            current = NetShardExecutor.from_registry(
                registry,
                shards,
                num_replicas=1 if replicas is None else replicas,
                index_backend=self.index_backend,
                sharding=self.sharding,
            )
            self._net_executor = current
            return current
        if hosts is not None:
            addresses = [tuple(address) for address in hosts]
            num_replicas = 1 if replicas is None else replicas
            if len(addresses) % num_replicas != 0:
                raise QueryError(
                    f"{len(addresses)} worker addresses do not divide "
                    f"into {num_replicas} replicas per shard"
                )
            if (
                shards is not None
                and shards * num_replicas != len(addresses)
            ):
                raise QueryError(
                    f"shards={shards} contradicts {len(addresses)} "
                    f"worker addresses"
                )
            if current is not None:
                if (
                    current.addresses == addresses
                    and current.num_replicas == num_replicas
                ):
                    return current
                current.close()
            current = NetShardExecutor(
                addresses=addresses,
                index_backend=self.index_backend,
                sharding=self.sharding,
                num_replicas=num_replicas,
            )
            self._net_executor = current
            return current
        if current is not None and current.addresses is not None:
            # Host-configured executors win over shard-count defaults:
            # the caller pinned real machines; silently replacing them
            # with a local cluster would misreport where work ran.
            if (shards is None or shards == current.num_shards) and (
                replicas is None or replicas == current.num_replicas
            ):
                return current
            if shards is not None and shards != current.num_shards:
                raise QueryError(
                    f"engine is configured for {current.num_shards} socket "
                    f"workers at fixed addresses; cannot run {shards} shards"
                )
            raise QueryError(
                f"engine is configured for {current.num_replicas} "
                f"replica(s) per shard at fixed addresses; cannot run "
                f"{replicas}"
            )
        shards = self.shards if shards is None else shards
        if shards < 1:
            raise QueryError("shards must be >= 1")
        if current is not None and (
            current.num_shards != shards
            or current.sharding != self.sharding
            or (replicas is not None and current.num_replicas != replicas)
        ):
            current.close()
            current = None
        if current is None:
            current = NetShardExecutor(
                num_shards=shards,
                index_backend=self.index_backend,
                sharding=self.sharding,
                num_replicas=1 if replicas is None else replicas,
            )
            self._net_executor = current
        return current

    def match_service(
        self,
        shards: "int | None" = None,
        hosts=None,
        max_concurrent: int = 4,
        queue_depth: int = 8,
        cache_capacity: int = 128,
        default_deadline: "float | None" = None,
        chaos=None,
    ):
        """The engine's persistent always-on match service (lazily built).

        Wraps this engine and one multiplexed shard pool in a
        :class:`~repro.service.service.MatchService`: bounded admission
        (BUSY past ``queue_depth``), per-query deadlines, cancellation
        with remote CANCEL, and an LRU result cache.  Reused across
        calls like :meth:`net_executor`; asking for a different shard
        layout tears it down and rebuilds.
        """
        from ..service import MatchService  # lazy

        shards = self.shards if shards is None else shards
        if hosts is None and shards < 1:
            raise QueryError("shards must be >= 1")
        current = self._match_service
        want_shards = len(hosts) if hosts is not None else shards
        if current is not None and current.num_shards != want_shards:
            current.close()
            current = None
        if current is None:
            current = MatchService(
                self,
                shards=shards,
                addresses=(
                    None if hosts is None
                    else [tuple(address) for address in hosts]
                ),
                max_concurrent=max_concurrent,
                queue_depth=queue_depth,
                cache_capacity=cache_capacity,
                default_deadline=default_deadline,
                chaos=chaos,
            )
            self._match_service = current
        return current

    # ------------------------------------------------------------------
    # Mutation (dynamic graphs)
    # ------------------------------------------------------------------
    def _apply_local(self, batch):
        """Commit one mutation batch to the engine's own graph + store.

        Promotes an immutable data graph to a
        :class:`~repro.hypergraph.dynamic.DynamicHypergraph` on first
        use (edge ids and row layouts are preserved, so the existing
        store adopts the promoted graph without rebuilding), applies
        the batch, and incrementally maintains every touched partition.
        The anchor-union memo caches posting unions of the old rows;
        clearing it is mandatory, not an optimisation.

        Internal: callers go through :meth:`apply_mutations`, which
        also propagates to live pools and the match service.
        """
        from ..hypergraph.dynamic import DynamicHypergraph  # lazy: cheap

        data = self.data
        if not isinstance(data, DynamicHypergraph):
            data = DynamicHypergraph.from_hypergraph(data)
            self.data = data
            self.store.adopt_graph(data)
        result = data.apply(batch)
        self.store.apply_mutation_result(result)
        self._anchor_memo.clear()
        return result

    def apply_mutations(self, batch):
        """Commit a mutation batch engine-wide and return its
        :class:`~repro.hypergraph.dynamic.MutationResult`.

        The local graph and store update incrementally, and every
        *live* pool — the process executor, the socket executor, the
        match service's multiplexed pool — receives the same batch via
        a MUTATE broadcast so its workers maintain their shards in
        lock-step (pools not yet started simply build from the mutated
        graph on first use).  When a match service wraps this engine,
        the commit goes through
        :meth:`~repro.service.service.MatchService.apply_mutations`
        instead, which additionally fences in-flight queries,
        invalidates the result cache and emits standing-query deltas.
        """
        service = self._match_service
        if service is not None:
            return service.apply_mutations(batch)
        result = self._apply_local(batch)
        if self._shard_executor is not None:
            self._shard_executor.mutate(self, batch, result)
        if self._net_executor is not None:
            self._net_executor.mutate(self, batch, result)
        return result

    def close(self) -> None:
        """Release the shard pools and match service, if started.

        Tear-down is exception-safe: a pool whose close raises cannot
        leave the later pools (or the service) running — each stage is
        chained through ``finally`` and its reference dropped first, so
        a repeated ``close()`` after a partial failure is a no-op for
        the stages that did shut down.
        """
        service, self._match_service = self._match_service, None
        executor, self._shard_executor = self._shard_executor, None
        net, self._net_executor = self._net_executor, None
        try:
            if service is not None:
                service.close()
        finally:
            try:
                if executor is not None:
                    executor.close()
            finally:
                if net is not None:
                    net.close()

    def count_vertex_embeddings(
        self, query: Hypergraph, order: "Sequence[int] | None" = None
    ) -> int:
        """Count embeddings at *vertex mapping* granularity.

        Sums, over hyperedge-level embeddings, the number of injective
        vertex mappings each one admits — the quantity the match-by-vertex
        baselines enumerate natively.
        """
        return sum(
            embedding.num_vertex_mappings() for embedding in self.match(query, order)
        )

    # ------------------------------------------------------------------
    # BFS execution (for the scheduling-memory experiment, Exp-5)
    # ------------------------------------------------------------------
    def count_bfs(
        self,
        query: Hypergraph,
        order: "Sequence[int] | None" = None,
        counters: "MatchCounters | None" = None,
        time_budget: "float | None" = None,
        executor: "str | None" = None,
        workers: int = 1,
        shards: "int | None" = None,
    ) -> int:
        """Count embeddings with breadth-first (level-synchronous) execution.

        Materialises every intermediate result of each level, exactly the
        strategy the paper's Exp-5 compares against: ``peak_retained`` on
        the supplied counters then reflects the exponential intermediate
        blow-up that the task-based scheduler avoids.

        ``executor`` mirrors :meth:`count`: ``None``/``"sequential"`` is
        the in-process loop here; ``"threads"`` splits every frontier
        level across ``workers`` threads; ``"processes"`` runs the
        shard-per-process executor, whose level-synchronous protocol *is*
        BFS; ``"sockets"`` runs the same protocol over TCP shard
        workers; ``"simulated"`` counts via the discrete-event scheduler
        (task-parallel in virtual time — counts match, the BFS memory
        profile does not apply).  All executors return bit-identical
        counts.
        """
        if executor in ("processes", "sockets"):
            if shards is None and self.shards == 1 and workers > 1:
                shards = workers  # as in count(): workers names parallelism
            pool = (
                self.shard_executor(shards)
                if executor == "processes"
                else self.net_executor(shards)
            )
            result = pool.run(
                self, query, order=order, time_budget=time_budget
            )
            if counters is not None:
                counters.merge(result.counters)
            return result.embeddings
        if executor == "simulated":
            from ..parallel.simulation import SimulatedExecutor  # lazy: avoid cycle

            result = SimulatedExecutor(num_workers=max(workers, 1)).run(
                self, query, order=order
            )
            if counters is not None:
                counters.merge(result.counters)
            return result.embeddings
        if executor not in (None, "sequential", "threads"):
            raise QueryError(
                f"unknown executor {executor!r}; expected one of "
                f"('sequential', 'threads', 'processes', 'sockets', "
                f"'simulated')"
            )
        threaded = executor == "threads" and workers > 1
        plan = self.plan(query, order)
        deadline = None if time_budget is None else time.monotonic() + time_budget
        if counters is not None:
            counters.note_work_model(WORK_UNIT_MODELS.get(self.index_backend, ""))
        if threaded:
            return self._count_bfs_threaded(
                plan, counters, deadline, workers, time_budget
            )
        # Same push/pop-delta state as `match`: level order visits each
        # parent's children consecutively, so advancing between frontier
        # entries usually costs one pop plus one push.
        state = VertexStepState(self.data)
        step_tuples = state.step_tuples
        step_masks = state.step_masks if self.uses_mask_validation else None
        frontier: List[Tuple[int, ...]] = [()]
        for _ in range(plan.num_steps):
            next_frontier: List[Tuple[int, ...]] = []
            for matched in frontier:
                if counters is not None:
                    counters.tasks += 1
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutExceeded(
                        time.monotonic() - (deadline - time_budget), time_budget
                    )
                vmap = state.advance(matched)
                next_frontier.extend(
                    self.expand(
                        plan, matched, counters, vmap=vmap,
                        step_tuples=step_tuples, step_masks=step_masks,
                    )
                )
            frontier = next_frontier
            if counters is not None:
                counters.retained = len(frontier)
                counters.peak_retained = max(counters.peak_retained, len(frontier))
        if counters is not None:
            counters.embeddings += len(frontier)
        return len(frontier)

    def _count_bfs_threaded(
        self,
        plan: ExecutionPlan,
        counters: "MatchCounters | None",
        deadline: "float | None",
        workers: int,
        time_budget: "float | None",
    ) -> int:
        """Level-synchronous BFS with each frontier split across threads.

        Every thread keeps its own :class:`VertexStepState` and expands a
        contiguous frontier slice (siblings stay adjacent, so the
        push/pop deltas stay cheap); levels are barriers, and slices are
        re-gathered in submission order so the frontier — and therefore
        the count — is bit-identical to the sequential loop.
        """
        from concurrent.futures import ThreadPoolExecutor  # lazy: cheap import

        use_masks = self.uses_mask_validation
        states = [VertexStepState(self.data) for _ in range(workers)]

        def expand_slice(worker_id, chunk, chunk_counters):
            state = states[worker_id]
            step_tuples = state.step_tuples
            step_masks = state.step_masks if use_masks else None
            out: List[Tuple[int, ...]] = []
            for matched in chunk:
                vmap = state.advance(matched)
                out.extend(
                    self.expand(
                        plan, matched, chunk_counters, vmap=vmap,
                        step_tuples=step_tuples, step_masks=step_masks,
                    )
                )
            return out

        frontier: List[Tuple[int, ...]] = [()]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for _ in range(plan.num_steps):
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutExceeded(
                        time.monotonic() - (deadline - time_budget), time_budget
                    )
                if counters is not None:
                    counters.tasks += len(frontier)
                chunk_size = -(-len(frontier) // workers) if frontier else 1
                slices = [
                    frontier[low : low + chunk_size]
                    for low in range(0, len(frontier), chunk_size)
                ]
                slice_counters = [MatchCounters() for _ in slices]
                futures = [
                    pool.submit(expand_slice, position, chunk, slice_counters[position])
                    for position, chunk in enumerate(slices)
                ]
                next_frontier: List[Tuple[int, ...]] = []
                for future in futures:
                    next_frontier.extend(future.result())
                if counters is not None:
                    for chunk_counters in slice_counters:
                        counters.merge(chunk_counters)
                frontier = next_frontier
                if counters is not None:
                    counters.retained = len(frontier)
                    counters.peak_retained = max(
                        counters.peak_retained, len(frontier)
                    )
        if counters is not None:
            counters.embeddings += len(frontier)
        return len(frontier)
