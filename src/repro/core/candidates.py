"""Hyperedge candidate generation (Algorithm 4 of the paper).

Given a partial embedding and the next query hyperedge in the matching
order, candidates are data hyperedges that

* carry the query hyperedge's signature (Observation V.1) — enforced
  structurally by probing only that signature's partition,
* are incident, for every previously matched adjacent query hyperedge
  ``e`` and every shared query vertex ``u ∈ e ∩ e_q``, to some vertex of
  ``f(e)`` with matching label and partial degree (Observations V.2/V.4),
  excluding vertices owned by non-adjacent matched hyperedges
  (Observation V.3).

Each shared vertex contributes the union of the posting lists of its
possible images; the final candidate set is the intersection of those
unions — pure set algebra over the inverted hyperedge index, no
backtracking.  The algebra itself dispatches on the partition's index
backend: merge scans over sorted tuples, or bitwise ``|``/``&`` over
row-id bitmasks (:class:`repro.hypergraph.BitsetHyperedgeIndex`); both
return identical ascending edge-id tuples.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..hypergraph import Hypergraph, intersect_many, union_many
from ..hypergraph.storage import HyperedgePartition
from .counters import MatchCounters
from .plan import StepPlan


def vertex_step_map(
    data: Hypergraph, matched_edges: Sequence[int]
) -> Dict[int, Set[int]]:
    """Map each data vertex of the partial embedding to its incident steps.

    ``vmap[v]`` is the set of step indices whose matched data hyperedge
    contains ``v``.  This is the only derived state a task needs; it is
    rebuilt from the matched edge ids in O(total arity), which keeps tasks
    self-contained (a task stores just a tuple of edge ids — the property
    behind the scheduler's memory bound, Theorem VI.1).
    """
    vmap: Dict[int, Set[int]] = {}
    for step, edge_id in enumerate(matched_edges):
        for vertex in data.edge(edge_id):
            vmap.setdefault(vertex, set()).add(step)
    return vmap


class VertexStepState:
    """A ``vertex_step_map`` maintained by push/pop deltas.

    Tasks stay self-contained tuples of edge ids (Theorem VI.1's memory
    bound is untouched), but an executor processing many tasks can keep
    one of these per loop and :meth:`advance` it to each task: the map is
    patched by popping back to the longest common prefix with the
    previous task and pushing the differing suffix.  Consecutive tasks
    in the LIFO stack, the BFS frontier and a worker's deque are siblings
    or parent/child almost always, so the usual delta is one pop plus
    one push — O(arity) instead of the O(total arity) full rebuild.
    """

    __slots__ = ("_graph", "_matched", "_vmap")

    def __init__(
        self, graph: Hypergraph, matched_edges: Sequence[int] = ()
    ) -> None:
        self._graph = graph
        self._matched: List[int] = []
        self._vmap: Dict[int, Set[int]] = {}
        for edge_id in matched_edges:
            self.push(edge_id)

    @property
    def vmap(self) -> Dict[int, Set[int]]:
        """The live map — read-only to callers; mutate via push/pop."""
        return self._vmap

    @property
    def matched(self) -> Tuple[int, ...]:
        """The matched edge ids the state currently reflects."""
        return tuple(self._matched)

    @property
    def depth(self) -> int:
        return len(self._matched)

    def __len__(self) -> int:
        return len(self._vmap)

    def push(self, edge_id: int) -> None:
        """Extend the embedding by ``edge_id`` at the next step index."""
        step = len(self._matched)
        self._matched.append(edge_id)
        vmap = self._vmap
        for vertex in self._graph.edge(edge_id):
            steps = vmap.get(vertex)
            if steps is None:
                vmap[vertex] = {step}
            else:
                steps.add(step)

    def pop(self) -> int:
        """Undo the most recent :meth:`push`; returns the popped edge id."""
        edge_id = self._matched.pop()
        step = len(self._matched)
        vmap = self._vmap
        for vertex in self._graph.edge(edge_id):
            steps = vmap[vertex]
            steps.discard(step)
            if not steps:
                del vmap[vertex]
        return edge_id

    def advance(self, matched_edges: Sequence[int]) -> Dict[int, Set[int]]:
        """Re-point the state at ``matched_edges`` and return its vmap.

        Equivalent to ``vertex_step_map(graph, matched_edges)`` but costs
        only the symmetric difference with the previous position.
        """
        current = self._matched
        common = 0
        limit = min(len(current), len(matched_edges))
        while common < limit and current[common] == matched_edges[common]:
            common += 1
        while len(self._matched) > common:
            self.pop()
        for edge_id in matched_edges[common:]:
            self.push(edge_id)
        return self._vmap


def _anchor_images(
    data: Hypergraph,
    prev_image,
    anchor,
    vmap: Dict[int, Set[int]],
    non_incident: Set[int],
) -> List[int]:
    """Vertices of ``prev_image`` that can serve as the anchor's image
    (Algorithm 4 lines 4-5).  Shared by both algebra backends so the
    filter can never drift between them."""
    return [
        vertex
        for vertex in prev_image
        if vertex not in non_incident
        and data.label(vertex) == anchor.label
        and len(vmap[vertex]) == anchor.required_degree
    ]


def generate_candidates(
    data: Hypergraph,
    partition: "HyperedgePartition | None",
    step_plan: StepPlan,
    matched_edges: Sequence[int],
    vmap: Dict[int, Set[int]],
    counters: "MatchCounters | None" = None,
) -> Tuple[int, ...]:
    """Run Algorithm 4: candidate data hyperedges for ``step_plan``.

    ``matched_edges`` holds the data edge ids for steps
    ``0 .. step_plan.step - 1``; ``vmap`` must be
    ``vertex_step_map(data, matched_edges)``.  Returns an ascending tuple
    of candidate edge ids (possibly empty).  ``partition`` is the data
    partition with the step's signature, or None when no data hyperedge
    carries it.
    """
    if partition is None:
        return ()

    # Line 1: vertices that must NOT be incident to the matched hyperedge
    # (they belong to images of non-adjacent query hyperedges).
    non_incident: Set[int] = set()
    for prev in step_plan.nonadjacent_prev:
        non_incident.update(data.edge(matched_edges[prev]))

    if getattr(partition.index, "backend", "merge") == "bitset":
        return _generate_candidates_bitset(
            data, partition, step_plan, matched_edges, vmap, non_incident, counters
        )

    # Lines 3-6: one union-of-posting-lists per (adjacent edge, shared
    # vertex) anchor; the candidate must be incident to a possible image
    # of every anchor vertex.
    per_anchor_sets = []
    work = 0
    for anchor in step_plan.anchors:
        prev_image = data.edge(matched_edges[anchor.prev_step])
        possible_images = _anchor_images(
            data, prev_image, anchor, vmap, non_incident
        )
        if not possible_images:
            if counters is not None:
                counters.work_units += work + len(prev_image)
            return ()
        postings = [partition.incident_edges(v) for v in possible_images]
        merged = union_many(postings)
        work += len(prev_image) + sum(len(p) for p in postings)
        per_anchor_sets.append(merged)

    # Line 7: intersect all anchor candidate sets.
    if per_anchor_sets:
        candidates = intersect_many(per_anchor_sets)
        work += sum(len(s) for s in per_anchor_sets)
    else:
        # First step of the order (no anchors): the whole partition.
        candidates = partition.edge_ids
        work += len(candidates)

    if counters is not None:
        counters.work_units += work
        counters.candidates += len(candidates)
    return candidates


def _generate_candidates_bitset(
    data: Hypergraph,
    partition: HyperedgePartition,
    step_plan: StepPlan,
    matched_edges: Sequence[int],
    vmap: Dict[int, Set[int]],
    non_incident: Set[int],
    counters: "MatchCounters | None",
) -> Tuple[int, ...]:
    """Algorithm 4 over row-id bitmasks (same result set as the merge path).

    Each anchor's union of posting lists is an OR of per-vertex masks and
    the final intersection is a running AND, so the set algebra costs a
    handful of big-int ops per anchor.  Work units charge the vertices
    scanned plus one unit per mask touched plus the final decode — the
    ops the backend actually performs — so the simulated executor's cost
    model tracks the cheaper algebra.
    """
    index = partition.index
    result_mask: "int | None" = None
    work = 0
    for anchor in step_plan.anchors:
        prev_image = data.edge(matched_edges[anchor.prev_step])
        work += len(prev_image)
        possible_images = _anchor_images(
            data, prev_image, anchor, vmap, non_incident
        )
        if not possible_images:
            if counters is not None:
                counters.work_units += work
            return ()
        anchor_mask = 0
        for vertex in possible_images:
            anchor_mask |= index.postings_mask(vertex)
        work += len(possible_images)
        result_mask = (
            anchor_mask if result_mask is None else result_mask & anchor_mask
        )
        if result_mask == 0:
            break

    if result_mask is None:
        # First step of the order (no anchors): the whole partition.
        candidates = partition.edge_ids
    else:
        candidates = index.decode_mask(result_mask)
    work += len(candidates)

    if counters is not None:
        counters.work_units += work
        counters.candidates += len(candidates)
    return candidates
