"""Hyperedge candidate generation (Algorithm 4 of the paper).

Given a partial embedding and the next query hyperedge in the matching
order, candidates are data hyperedges that

* carry the query hyperedge's signature (Observation V.1) — enforced
  structurally by probing only that signature's partition,
* are incident, for every previously matched adjacent query hyperedge
  ``e`` and every shared query vertex ``u ∈ e ∩ e_q``, to some vertex of
  ``f(e)`` with matching label and partial degree (Observations V.2/V.4),
  excluding vertices owned by non-adjacent matched hyperedges
  (Observation V.3).

Each shared vertex contributes the union of the posting lists of its
possible images; the final candidate set is the intersection of those
unions — pure set algebra over the inverted hyperedge index, no
backtracking.  The algebra dispatches on the partition's index backend:
merge scans over sorted tuples, bitwise ``|``/``&`` over row-id bitmasks
(:class:`repro.hypergraph.BitsetHyperedgeIndex`), or container-pairwise
``|``/``&`` over roaring-style chunk maps
(:class:`repro.hypergraph.AdaptiveHyperedgeIndex`).

The pipeline is *mask-native*: :func:`generate_candidate_set` returns an
opaque :class:`CandidateSet` that keeps the backend's own representation
(tuple, bitmask, or chunk map) and decodes lazily.  Validation iterates
set bits directly and only accepted expansions ever materialise edge-id
tuples; :func:`generate_candidates` is the decoded-tuple convenience
wrapper kept for tests, benchmarks and external callers.

Two cost models feed ``counters.work_units`` (see
:mod:`repro.core.counters`): the merge path charges posting entries
scanned, the mask paths charge vertices scanned plus masks touched plus
the result cardinality.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..hypergraph import (
    chunks_count,
    chunks_intersect,
    chunks_union_many,
    Hypergraph,
    intersect_many,
    union_many,
)
from ..hypergraph.index import (
    CHUNK_BITS,
    bits_to_array,
    chunks_from_rows,
    container_intersect,
    mask_from_chunks,
)
from ..hypergraph.storage import HyperedgePartition
from .counters import MatchCounters
from .plan import StepPlan

#: Sentinel for "no anchor processed yet" in the adaptive fast path
#: (a real result may be a falsy empty container).
_NO_RESULT = object()


def vertex_step_map(
    data: Hypergraph, matched_edges: Sequence[int]
) -> Dict[int, Set[int]]:
    """Map each data vertex of the partial embedding to its incident steps.

    ``vmap[v]`` is the set of step indices whose matched data hyperedge
    contains ``v``.  This is the only derived state a task needs; it is
    rebuilt from the matched edge ids in O(total arity), which keeps tasks
    self-contained (a task stores just a tuple of edge ids — the property
    behind the scheduler's memory bound, Theorem VI.1).
    """
    vmap: Dict[int, Set[int]] = {}
    for step, edge_id in enumerate(matched_edges):
        for vertex in data.edge(edge_id):
            vmap.setdefault(vertex, set()).add(step)
    return vmap


def vertex_step_tuples(
    data: Hypergraph, matched_edges: Sequence[int]
) -> Dict[int, Tuple[int, ...]]:
    """``vertex_step_map`` with ascending step *tuples* as values.

    The validation fast path compares per-vertex sorted step tuples
    (Theorem V.2's profile keys); building them here in step order makes
    every tuple sorted by construction, so validation never re-sorts.
    """
    steps: Dict[int, Tuple[int, ...]] = {}
    for step, edge_id in enumerate(matched_edges):
        for vertex in data.edge(edge_id):
            incident = steps.get(vertex)
            steps[vertex] = (step,) if incident is None else incident + (step,)
    return steps


class VertexStepState:
    """A ``vertex_step_map`` maintained by push/pop deltas.

    Tasks stay self-contained tuples of edge ids (Theorem VI.1's memory
    bound is untouched), but an executor processing many tasks can keep
    one of these per loop and :meth:`advance` it to each task: the map is
    patched by popping back to the longest common prefix with the
    previous task and pushing the differing suffix.  Consecutive tasks
    in the LIFO stack, the BFS frontier and a worker's deque are siblings
    or parent/child almost always, so the usual delta is one pop plus
    one push — O(arity) instead of the O(total arity) full rebuild.

    Alongside the step *sets* the state maintains the per-vertex sorted
    step *tuples* (:attr:`step_tuples`): pushes always carry the next
    step index, so appending keeps each tuple ascending and validation's
    profile fast path gets its sorted tuples for free instead of calling
    ``tuple(sorted(...))`` once per candidate vertex.

    It also maintains the per-vertex step *bitmasks*
    (:attr:`step_masks`, bit ``s`` set iff the vertex occurs in step
    ``s``): the mask backends' validation fast path compares profiles
    over these small ints (one ``|`` per vertex) instead of
    concatenating tuples — the same algebra Algorithm 4 already runs on
    its posting masks, applied to Algorithm 5.
    """

    __slots__ = ("_graph", "_matched", "_vmap", "_steps", "_masks")

    def __init__(
        self, graph: Hypergraph, matched_edges: Sequence[int] = ()
    ) -> None:
        self._graph = graph
        self._matched: List[int] = []
        self._vmap: Dict[int, Set[int]] = {}
        self._steps: Dict[int, Tuple[int, ...]] = {}
        self._masks: Dict[int, int] = {}
        for edge_id in matched_edges:
            self.push(edge_id)

    @property
    def vmap(self) -> Dict[int, Set[int]]:
        """The live map — read-only to callers; mutate via push/pop."""
        return self._vmap

    @property
    def step_tuples(self) -> Dict[int, Tuple[int, ...]]:
        """Per-vertex ascending step tuples — read-only to callers."""
        return self._steps

    @property
    def step_masks(self) -> Dict[int, int]:
        """Per-vertex step bitmasks — read-only to callers."""
        return self._masks

    @property
    def matched(self) -> Tuple[int, ...]:
        """The matched edge ids the state currently reflects."""
        return tuple(self._matched)

    @property
    def depth(self) -> int:
        return len(self._matched)

    def __len__(self) -> int:
        return len(self._vmap)

    def push(self, edge_id: int) -> None:
        """Extend the embedding by ``edge_id`` at the next step index."""
        step = len(self._matched)
        self._matched.append(edge_id)
        bit = 1 << step
        vmap = self._vmap
        step_tuples = self._steps
        step_masks = self._masks
        for vertex in self._graph.edge(edge_id):
            steps = vmap.get(vertex)
            if steps is None:
                vmap[vertex] = {step}
                step_tuples[vertex] = (step,)
                step_masks[vertex] = bit
            else:
                steps.add(step)
                step_tuples[vertex] += (step,)
                step_masks[vertex] |= bit

    def pop(self) -> int:
        """Undo the most recent :meth:`push`; returns the popped edge id."""
        edge_id = self._matched.pop()
        step = len(self._matched)
        bit = 1 << step
        vmap = self._vmap
        step_tuples = self._steps
        step_masks = self._masks
        for vertex in self._graph.edge(edge_id):
            steps = vmap[vertex]
            steps.discard(step)
            if not steps:
                del vmap[vertex]
                del step_tuples[vertex]
                del step_masks[vertex]
            else:
                # The popped step is always the tuple's last element.
                step_tuples[vertex] = step_tuples[vertex][:-1]
                step_masks[vertex] ^= bit
        return edge_id

    def advance(self, matched_edges: Sequence[int]) -> Dict[int, Set[int]]:
        """Re-point the state at ``matched_edges`` and return its vmap.

        Equivalent to ``vertex_step_map(graph, matched_edges)`` but costs
        only the symmetric difference with the previous position.
        """
        current = self._matched
        common = 0
        limit = min(len(current), len(matched_edges))
        while common < limit and current[common] == matched_edges[common]:
            common += 1
        while len(self._matched) > common:
            self.pop()
        for edge_id in matched_edges[common:]:
            self.push(edge_id)
        return self._vmap


# ----------------------------------------------------------------------
# Opaque candidate sets (the mask-native boundary of Algorithm 4)
# ----------------------------------------------------------------------


class CandidateSet:
    """Opaque result of Algorithm 4's set algebra.

    Keeps the owning backend's native representation; iteration yields
    ascending edge ids without materialising the whole set, and
    :meth:`to_tuple` decodes only when a caller really needs the tuple
    boundary (tests, benchmarks, the ``generate_candidates`` wrapper).
    """

    __slots__ = ()

    def to_tuple(self) -> Tuple[int, ...]:
        raise NotImplementedError

    def to_bytes(self, row_offset: int = 0) -> bytes:
        """Serialise to the compact wire format (see module helpers).

        ``row_offset`` translates *row* coordinates into a wider row
        space before encoding — a store shard passes its global row base
        so the payload arrives in global coordinates (edge-id payloads
        ignore it: edge ids are global already).  Decode with
        :meth:`from_bytes` against the receiving side's index.
        """
        raise NotImplementedError

    @staticmethod
    def from_bytes(payload: bytes, index=None) -> "CandidateSet":
        """Reconstruct a candidate set from :meth:`to_bytes` output.

        ``index`` is the receiving side's owning index; required for
        mask and chunk payloads (rows are meaningless without its
        ``row_to_edge`` table) and ignored for edge-id tuples.  The
        payload is normalised to the index's native representation, so
        a single-chunk shard's bare-mask payload lands as a chunk map
        on an adaptive reader and vice versa.
        """
        return candidate_set_from_bytes(payload, index)

    def __iter__(self) -> Iterator[int]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CandidateSet):
            return self.to_tuple() == other.to_tuple()
        if isinstance(other, tuple):
            return self.to_tuple() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.to_tuple())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_tuple()!r})"


class TupleCandidates(CandidateSet):
    """Merge-backend (and whole-partition) candidates: already a tuple."""

    __slots__ = ("_edges",)

    def __init__(self, edges: Tuple[int, ...]) -> None:
        self._edges = edges

    def to_tuple(self) -> Tuple[int, ...]:
        return self._edges

    def to_bytes(self, row_offset: int = 0) -> bytes:
        # Edge ids are global; row_offset only applies to row payloads.
        return encode_tuple_payload(self._edges)

    def __iter__(self) -> Iterator[int]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)


EMPTY_CANDIDATES = TupleCandidates(())


class MaskCandidates(CandidateSet):
    """Bitset-backend candidates: a row bitmask plus its owning index.

    Hot consumers (``HGMatch.expand``, the bench's mask-native replay)
    should read :attr:`mask` / :attr:`row_to_edge` and run the bit-scan
    loop inline — a generator's per-item resume costs more than the
    whole row decode it replaces.
    """

    __slots__ = ("_index", "_mask")

    def __init__(self, index, mask: int) -> None:
        self._index = index
        self._mask = mask

    @property
    def mask(self) -> int:
        return self._mask

    @property
    def index(self):
        """The owning index (read-only)."""
        return self._index

    @property
    def row_to_edge(self) -> Tuple[int, ...]:
        return self._index.row_to_edge

    def to_tuple(self) -> Tuple[int, ...]:
        return self._index.decode_mask(self._mask)

    def to_bytes(self, row_offset: int = 0) -> bytes:
        return encode_mask_payload(self._mask, row_offset)

    def __iter__(self) -> Iterator[int]:
        return self._index.iter_mask(self._mask)

    def __len__(self) -> int:
        return self._mask.bit_count()


class ChunkCandidates(CandidateSet):
    """Adaptive-backend candidates: a chunk map plus its owning index."""

    __slots__ = ("_index", "_chunks", "_count")

    def __init__(self, index, chunks, count: "int | None" = None) -> None:
        self._index = index
        self._chunks = chunks
        self._count = chunks_count(chunks) if count is None else count

    @property
    def chunks(self):
        return self._chunks

    @property
    def index(self):
        """The owning index (read-only)."""
        return self._index

    def to_tuple(self) -> Tuple[int, ...]:
        return self._index.decode_chunks(self._chunks)

    def to_bytes(self, row_offset: int = 0) -> bytes:
        if row_offset == 0:
            return encode_chunks_payload(self._chunks)
        # Shifting by an arbitrary offset can split containers across
        # chunk boundaries, so translate through explicit rows.
        chunk_bits = self._index.chunk_bits
        rows: List[int] = []
        for chunk in sorted(self._chunks):
            base = (chunk << chunk_bits) + row_offset
            container = self._chunks[chunk]
            if isinstance(container, int):
                container = bits_to_array(container)
            rows.extend(base + offset for offset in container)
        return encode_chunks_payload(
            chunks_from_rows(rows, chunk_bits, self._index.array_max)
        )

    def __iter__(self) -> Iterator[int]:
        return self._index.iter_chunks(self._chunks)

    def __len__(self) -> int:
        return self._count


# ----------------------------------------------------------------------
# Wire format (the process-sharding seam)
# ----------------------------------------------------------------------
# One tag byte selects the representation; everything else is
# little-endian struct data, so a payload costs bytes proportional to
# the *representation* (mask bits / containers), never a decoded
# edge-id list:
#
#   ``T``  count:u32, then count edge ids as i64 — the merge backend's
#          native tuples (edge ids are global, no row translation).
#   ``M``  offset:u32, then the *local* row bitmask's little-endian
#          bytes.  The decoder shifts rows up by ``offset``, so a
#          shard's payload costs bytes proportional to its local span —
#          never to its global row base (a shard at base 750k with one
#          survivor ships ~6 bytes, not ~94 KB of leading zeros).
#   ``C``  count:u32, then per chunk: index:u32, kind:u8 (0 = array,
#          1 = bitmask), and the container (array: count:u16 + u32
#          offsets; bitmask: length:u32 + little-endian bytes).  Chunk
#          indices absorb the row base, so these are written directly
#          in the target coordinates.
#
# Row payloads (``M``/``C``) land in the row space the caller chose via
# ``to_bytes(row_offset=...)``; writer and reader must agree on the
# chunk width (both default to ``CHUNK_BITS``).  The decoder normalises
# to the receiving index's backend, so shards and the composing engine
# can disagree about *which* row representation is native without ever
# materialising edge-id lists.
#
# Payloads that leave the process group — the socket transport of
# :mod:`repro.parallel.net_executor` — are additionally *versioned*:
# one leading byte (:data:`WIRE_VERSION`) precedes the tag, so a host
# running an older reader rejects a payload it cannot parse instead of
# mis-decoding it.  Pipes between a parent and the workers it spawned
# skip the byte (both ends are the same build by construction); use
# :func:`encode_versioned` / :func:`decode_versioned` at any boundary
# where the two ends may have been deployed independently.  The full
# byte-level specification lives in ``docs/WIRE_FORMAT.md``.

_WIRE_TUPLE = 0x54  # b"T"
_WIRE_MASK = 0x4D  # b"M"
_WIRE_CHUNKS = 0x43  # b"C"
_ARRAY_KIND = 0
_BITS_KIND = 1

#: Row-coordinate ceiling for payloads decoded against an index with no
#: row space of its own (the merge backend).  Mask and chunk payloads
#: carry row *positions* that the decoder turns into bit shifts; a
#: garbled u32 offset or chunk id would otherwise demand a mask of up
#: to 2**47 bits — a MemoryError, not a ValueError.  Indexes that
#: expose ``row_to_edge`` are bounded by their actual row count instead.
_MAX_WIRE_ROW = 1 << 28


def _row_space_limit(index) -> int:
    rows = getattr(index, "row_to_edge", None)
    return _MAX_WIRE_ROW if rows is None else len(rows)

#: Version byte prefixed to candidate payloads that cross a machine
#: boundary.  Bump on any incompatible change to the ``T``/``M``/``C``
#: encodings below; decoders reject unknown versions.
WIRE_VERSION = 1


def encode_versioned(payload: bytes) -> bytes:
    """Prefix a ``to_bytes`` payload with the wire-format version byte."""
    return bytes((WIRE_VERSION,)) + payload


def decode_versioned(data: bytes) -> bytes:
    """Strip (and validate) the version byte of a versioned payload.

    Raises ``ValueError`` on an empty payload or a version this build
    does not speak — the caller decides whether that is fatal for the
    connection (the socket transport treats it as a protocol error).
    """
    if not data:
        raise ValueError("empty versioned candidate payload")
    version = data[0]
    if version != WIRE_VERSION:
        raise ValueError(
            f"unsupported candidate wire version {version}; "
            f"this build speaks version {WIRE_VERSION}"
        )
    return data[1:]


def encode_tuple_payload(edges: Sequence[int]) -> bytes:
    """Wire payload for an ascending edge-id tuple."""
    return struct.pack(f"<BI{len(edges)}q", _WIRE_TUPLE, len(edges), *edges)


def encode_mask_payload(mask: int, row_offset: int = 0) -> bytes:
    """Wire payload for a row bitmask over *local* rows; the decoder
    shifts rows up by ``row_offset`` (see the format notes above)."""
    return struct.pack("<BI", _WIRE_MASK, row_offset) + mask.to_bytes(
        (mask.bit_length() + 7) // 8, "little"
    )


def encode_chunks_payload(chunks) -> bytes:
    """Wire payload for a roaring-style chunk map."""
    parts = [struct.pack("<BI", _WIRE_CHUNKS, len(chunks))]
    for chunk in sorted(chunks):
        container = chunks[chunk]
        if isinstance(container, int):
            data = container.to_bytes((container.bit_length() + 7) // 8, "little")
            parts.append(struct.pack("<IBI", chunk, _BITS_KIND, len(data)))
            parts.append(data)
        else:
            parts.append(
                struct.pack(
                    f"<IBH{len(container)}I",
                    chunk,
                    _ARRAY_KIND,
                    len(container),
                    *container,
                )
            )
    return b"".join(parts)


def candidate_set_from_bytes(payload: bytes, index=None) -> CandidateSet:
    """Decode a :meth:`CandidateSet.to_bytes` payload against ``index``.

    Mask and chunk payloads are normalised to the index's native
    representation (``bitset`` readers get a :class:`MaskCandidates`,
    ``adaptive`` readers a :class:`ChunkCandidates`); tuple payloads
    never need the index at all.  Malformed input of any shape —
    truncation, bit flips, wild length prefixes — raises
    :class:`ValueError`, never an ``IndexError`` or ``struct.error``:
    the decoder is fed bytes straight off the network, and callers
    treat ``ValueError`` as "kill this connection", not "crash".
    """
    try:
        return _candidate_set_from_bytes(payload, index)
    except struct.error as exc:
        raise ValueError(f"malformed candidate payload: {exc}") from None
    except (MemoryError, OverflowError):
        # Belt and braces behind the explicit row-space bounds below: a
        # decoder must never let hostile coordinates turn into an
        # allocation failure.
        raise ValueError(
            "malformed candidate payload: implausible row coordinates"
        ) from None


def _candidate_set_from_bytes(payload: bytes, index=None) -> CandidateSet:
    if not payload:
        raise ValueError("empty candidate payload")
    tag = payload[0]
    if tag == _WIRE_TUPLE:
        (count,) = struct.unpack_from("<I", payload, 1)
        edges = struct.unpack_from(f"<{count}q", payload, 5)
        return TupleCandidates(tuple(edges)) if count else EMPTY_CANDIDATES
    backend = getattr(index, "backend", None)
    if tag == _WIRE_MASK:
        if index is None:
            raise ValueError("mask payloads require the owning index")
        (row_offset,) = struct.unpack_from("<I", payload, 1)
        limit = _row_space_limit(index)
        if row_offset > limit:
            raise ValueError(
                f"mask row offset {row_offset} exceeds the index's row "
                f"space ({limit} rows)"
            )
        mask = int.from_bytes(payload[5:], "little")
        if backend == "adaptive":
            # Re-chunk from explicit rows: O(survivors), regardless of
            # how far the offset pushes them up the row space.
            rows = [row_offset + row for row in bits_to_array(mask)]
            return ChunkCandidates(
                index,
                chunks_from_rows(rows, index.chunk_bits, index.array_max),
            )
        return MaskCandidates(index, mask << row_offset)
    if tag == _WIRE_CHUNKS:
        if index is None:
            raise ValueError("chunk payloads require the owning index")
        (count,) = struct.unpack_from("<I", payload, 1)
        offset = 5
        chunks = {}
        limit = _row_space_limit(index)
        wire_chunk_bits = getattr(index, "chunk_bits", CHUNK_BITS)
        for _ in range(count):
            chunk, kind = struct.unpack_from("<IB", payload, offset)
            offset += 5
            if (chunk << wire_chunk_bits) > limit:
                raise ValueError(
                    f"chunk {chunk} lies outside the index's row space "
                    f"({limit} rows)"
                )
            if kind == _BITS_KIND:
                (length,) = struct.unpack_from("<I", payload, offset)
                offset += 4
                chunks[chunk] = int.from_bytes(
                    payload[offset : offset + length], "little"
                )
                offset += length
            else:
                (cardinality,) = struct.unpack_from("<H", payload, offset)
                offset += 2
                chunks[chunk] = tuple(
                    struct.unpack_from(f"<{cardinality}I", payload, offset)
                )
                offset += 4 * cardinality
        if backend == "bitset":
            # Bitset indices have no chunk notion; flatten at the
            # default wire width.
            chunk_bits = getattr(index, "chunk_bits", CHUNK_BITS)
            return MaskCandidates(index, mask_from_chunks(chunks, chunk_bits))
        return ChunkCandidates(index, chunks)
    raise ValueError(f"unknown candidate payload tag {tag:#x}")


def compose_candidate_sets(sets: Sequence[CandidateSet]) -> CandidateSet:
    """Union of candidate sets over one row space (the shard seam).

    The engine-side half of process sharding: each shard contributes the
    survivors of its disjoint row range (decoded into the *global* index
    via :func:`candidate_set_from_bytes`) and the union runs on the
    native representations — big-int ``|`` for masks, container-pairwise
    ``|`` for chunk maps, a k-way merge for tuples.  Nothing decodes to
    edge ids unless representations are mixed (which uniform-backend
    stores never produce).
    """
    populated = [s for s in sets if len(s)]
    if not populated:
        return EMPTY_CANDIDATES
    if len(populated) == 1:
        return populated[0]
    first = populated[0]
    if all(type(s) is MaskCandidates for s in populated):
        mask = 0
        for s in populated:
            mask |= s.mask
        return MaskCandidates(first.index, mask)
    if all(type(s) is ChunkCandidates for s in populated):
        chunks = chunks_union_many(
            [s.chunks for s in populated], first.index.array_max
        )
        return ChunkCandidates(first.index, chunks)
    # Tuples — and the mixed-representation fallback — go through the
    # decoded k-way merge.
    return TupleCandidates(union_many([s.to_tuple() for s in populated]))


class CandidateAccumulator:
    """Incremental :func:`compose_candidate_sets`: fold shard survivor
    sets one at a time, in whatever order they arrive.

    The streaming coordinator
    (:func:`repro.parallel.level_sync.run_level_synchronous`) folds each
    shard's payload the moment its reply lands instead of buffering
    every reply behind the level barrier, so composition overlaps the
    stragglers' compute.  Because the union is commutative and
    associative — big-int ``|`` for masks, container-pairwise ``|`` for
    chunk maps, a sorted merge for tuples — :meth:`result` is
    bit-identical to ``compose_candidate_sets(sets)`` for every arrival
    order (pinned by the sharding property tests).

    Mask and chunk sets fold eagerly into one running mask / chunk map
    (shards' row ranges are disjoint, so the running set stays exactly
    as large as the final union); tuple and mixed-representation sets
    are collected and handed to :func:`compose_candidate_sets` at
    :meth:`result`, whose k-way merge wants all operands at once.

    Folding is **exactly-once** under duplicated streams: callers that
    may see the same shard's reply more than once (the socket
    coordinator under speculative re-dispatch — two replicas of one
    range answering the same level) pass ``add(..., key=shard_id)``,
    and every key after the first is ignored.  The row-disjoint
    contract makes duplicates byte-identical, so dropping them is
    lossless; dedup-by-key makes it *provable* without comparing
    payloads.  Mask/chunk unions are idempotent anyway (``a | a ==
    a``), but tuple sets are concatenated before the k-way merge, so
    without the key a duplicated tuple reply would double its edges.
    """

    __slots__ = ("_mask_index", "_mask", "_chunk_index", "_chunks",
                 "_others", "_seen")

    def __init__(self) -> None:
        self._mask_index = None
        self._mask: "int | None" = None
        self._chunk_index = None
        self._chunks = None
        self._others: List[CandidateSet] = []
        self._seen: "set | None" = None

    def add(self, candidates: CandidateSet, key=None) -> None:
        """Fold one shard's survivor set into the running union.

        ``key`` (hashable) identifies the contribution's origin;
        contributions repeating an already-folded key are discarded —
        the exactly-once guard for duplicated reply streams.
        """
        if key is not None:
            if self._seen is None:
                self._seen = set()
            elif key in self._seen:
                return
            self._seen.add(key)
        if not len(candidates):
            return
        kind = type(candidates)
        if kind is MaskCandidates:
            if self._mask is None:
                self._mask_index = candidates.index
                self._mask = candidates.mask
            else:
                self._mask |= candidates.mask
        elif kind is ChunkCandidates:
            if self._chunks is None:
                self._chunk_index = candidates.index
                self._chunks = candidates.chunks
            else:
                self._chunks = chunks_union_many(
                    [self._chunks, candidates.chunks],
                    self._chunk_index.array_max,
                )
        else:
            self._others.append(candidates)

    def __bool__(self) -> bool:
        return (
            self._mask is not None
            or self._chunks is not None
            or bool(self._others)
        )

    def result(self) -> CandidateSet:
        """The union of everything added (``EMPTY_CANDIDATES`` if none)."""
        parts: List[CandidateSet] = []
        if self._mask is not None:
            parts.append(MaskCandidates(self._mask_index, self._mask))
        if self._chunks is not None:
            parts.append(ChunkCandidates(self._chunk_index, self._chunks))
        parts.extend(self._others)
        return compose_candidate_sets(parts)


# ----------------------------------------------------------------------
# Anchor-union memoisation
# ----------------------------------------------------------------------


class AnchorUnionMemo:
    """Engine-level LRU memo for per-anchor posting-union masks.

    Consecutive tasks in the LIFO stack, the BFS frontier and a worker's
    deque are siblings sharing all but the last matched edge, so they
    keep re-deriving identical per-anchor unions.  The memo keys one
    union by ``(partition signature, anchor coordinates, possible-image
    tuple)`` and stores the backend-native mask (bitmask or chunk map,
    both treated as immutable).  The cached union is a pure function of
    the partition and the image *set* alone; the anchor's
    ``(prev_step, query_vertex)`` ints only scope entries per query
    plan, and the images are keyed as the ordered tuple they were
    filtered in (iteration order of a data edge is fixed, so equal image
    sets from the same anchor produce equal tuples) — hashing a small
    int tuple is several times cheaper than building a fresh
    ``frozenset`` per probe, which is what makes the memo profitable at
    small partition sizes too.  Only the mask backends consult it: the
    merge path stays unmemoised so its faithful posting-scan cost model
    keeps charging the work the paper's Algorithm 4 performs.

    Thread-safe without a lock: every mutation is a single C-level
    ``OrderedDict`` call, atomic under the GIL, and the compound
    read-then-recency/insert-then-evict sequences tolerate interleaving
    (a concurrently evicted key surfaces as a caught ``KeyError``; the
    hit/miss tallies are statistics, not invariants).  Workers of the
    threaded executor share the engine and hence this memo — a lock
    here would tax every anchor of every worker to protect nothing
    correctness-critical.
    """

    __slots__ = ("maxsize", "min_rows", "hits", "misses", "_entries")

    #: Sentinel distinguishing "miss" from a memoised falsy mask.
    _MISS = object()

    def __init__(self, maxsize: int = 4096, min_rows: int = 1024) -> None:
        self.maxsize = maxsize
        #: Partitions below this row count bypass the memo entirely: the
        #: OR fold over a handful of machine words costs less than the
        #: key build + probe, so caching only taxes them.  The memo pays
        #: where masks span many words — exactly the very-large-partition
        #: regime it exists for.
        self.min_rows = min_rows
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[object, object]" = OrderedDict()

    def get(self, key):
        value = self._entries.get(key, self._MISS)
        if value is self._MISS:
            self.misses += 1
            return value
        try:
            self._entries.move_to_end(key)
        except KeyError:
            pass
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        entries = self._entries
        entries[key] = value
        if len(entries) > self.maxsize:
            try:
                entries.popitem(last=False)
            except KeyError:
                pass

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def _anchor_images(
    data: Hypergraph,
    prev_image,
    anchor,
    vmap: Dict[int, Set[int]],
    non_incident: Set[int],
) -> List[int]:
    """Vertices of ``prev_image`` that can serve as the anchor's image
    (Algorithm 4 lines 4-5).  Shared by all algebra backends so the
    filter can never drift between them."""
    return [
        vertex
        for vertex in prev_image
        if vertex not in non_incident
        and data.label(vertex) == anchor.label
        and len(vmap[vertex]) == anchor.required_degree
    ]


def generate_candidates(
    data: Hypergraph,
    partition: "HyperedgePartition | None",
    step_plan: StepPlan,
    matched_edges: Sequence[int],
    vmap: Dict[int, Set[int]],
    counters: "MatchCounters | None" = None,
) -> Tuple[int, ...]:
    """Run Algorithm 4 and decode to an ascending candidate tuple.

    Tuple-boundary wrapper around :func:`generate_candidate_set` for
    callers that want the classic representation regardless of backend
    (tests, benchmarks, baselines).  The engine's expand loop uses the
    mask-native function directly and never pays this decode.
    """
    return generate_candidate_set(
        data, partition, step_plan, matched_edges, vmap, counters
    ).to_tuple()


def generate_candidate_set(
    data: Hypergraph,
    partition: "HyperedgePartition | None",
    step_plan: StepPlan,
    matched_edges: Sequence[int],
    vmap: Dict[int, Set[int]],
    counters: "MatchCounters | None" = None,
    memo: "AnchorUnionMemo | None" = None,
) -> CandidateSet:
    """Run Algorithm 4: candidate data hyperedges for ``step_plan``.

    ``matched_edges`` holds the data edge ids for steps
    ``0 .. step_plan.step - 1``; ``vmap`` must be
    ``vertex_step_map(data, matched_edges)``.  Returns a
    :class:`CandidateSet` in the partition backend's native
    representation (possibly empty).  ``partition`` is the data
    partition with the step's signature, or None when no data hyperedge
    carries it.  ``memo`` optionally caches per-anchor union masks
    across calls (mask backends only).
    """
    if partition is None:
        return EMPTY_CANDIDATES

    # Line 1: vertices that must NOT be incident to the matched hyperedge
    # (they belong to images of non-adjacent query hyperedges).
    non_incident: Set[int] = set()
    for prev in step_plan.nonadjacent_prev:
        non_incident.update(data.edge(matched_edges[prev]))

    backend = getattr(partition.index, "backend", "merge")
    if backend == "bitset":
        return _generate_candidates_bitset(
            data, partition, step_plan, matched_edges, vmap, non_incident,
            counters, memo,
        )
    if backend == "adaptive":
        return _generate_candidates_adaptive(
            data, partition, step_plan, matched_edges, vmap, non_incident,
            counters, memo,
        )

    # Lines 3-6: one union-of-posting-lists per (adjacent edge, shared
    # vertex) anchor; the candidate must be incident to a possible image
    # of every anchor vertex.
    per_anchor_sets = []
    work = 0
    for anchor in step_plan.anchors:
        prev_image = data.edge(matched_edges[anchor.prev_step])
        possible_images = _anchor_images(
            data, prev_image, anchor, vmap, non_incident
        )
        if not possible_images:
            if counters is not None:
                counters.work_units += work + len(prev_image)
            return EMPTY_CANDIDATES
        postings = [partition.incident_edges(v) for v in possible_images]
        merged = union_many(postings)
        work += len(prev_image) + sum(len(p) for p in postings)
        per_anchor_sets.append(merged)

    # Line 7: intersect all anchor candidate sets.
    if per_anchor_sets:
        candidates = intersect_many(per_anchor_sets)
        work += sum(len(s) for s in per_anchor_sets)
    else:
        # First step of the order (no anchors): the whole partition.
        candidates = partition.edge_ids
        work += len(candidates)

    if counters is not None:
        counters.work_units += work
        counters.candidates += len(candidates)
    return TupleCandidates(candidates)


def _generate_candidates_bitset(
    data: Hypergraph,
    partition: HyperedgePartition,
    step_plan: StepPlan,
    matched_edges: Sequence[int],
    vmap: Dict[int, Set[int]],
    non_incident: Set[int],
    counters: "MatchCounters | None",
    memo: "AnchorUnionMemo | None",
) -> CandidateSet:
    """Algorithm 4 over row-id bitmasks (same result set as the merge path).

    Each anchor's union of posting lists is an OR of per-vertex masks and
    the final intersection is a running AND, so the set algebra costs a
    handful of big-int ops per anchor.  Work units charge the vertices
    scanned plus one unit per mask touched (one unit total on a memo
    hit) plus the result cardinality — the ops the backend actually
    performs — so the simulated executor's cost model tracks the cheaper
    algebra.
    """
    index = partition.index
    if memo is not None and len(partition.edge_ids) < memo.min_rows:
        memo = None
    result_mask: "int | None" = None
    work = 0
    for anchor in step_plan.anchors:
        prev_image = data.edge(matched_edges[anchor.prev_step])
        work += len(prev_image)
        possible_images = _anchor_images(
            data, prev_image, anchor, vmap, non_incident
        )
        if not possible_images:
            if counters is not None:
                counters.work_units += work
            return EMPTY_CANDIDATES
        anchor_mask = None
        key = None
        if memo is not None:
            key = (
                partition.signature,
                anchor.prev_step,
                anchor.query_vertex,
                tuple(possible_images),
            )
            cached = memo.get(key)
            if cached is not AnchorUnionMemo._MISS:
                anchor_mask = cached
                work += 1
        if anchor_mask is None:
            anchor_mask = 0
            for vertex in possible_images:
                anchor_mask |= index.postings_mask(vertex)
            work += len(possible_images)
            if memo is not None:
                memo.put(key, anchor_mask)
        result_mask = (
            anchor_mask if result_mask is None else result_mask & anchor_mask
        )
        if result_mask == 0:
            break

    if result_mask is None:
        # First step of the order (no anchors): the whole partition.
        candidates: CandidateSet = TupleCandidates(partition.edge_ids)
    else:
        candidates = MaskCandidates(index, result_mask)

    if counters is not None:
        size = len(candidates)
        counters.work_units += work + size
        counters.candidates += size
    return candidates


def _generate_candidates_adaptive(
    data: Hypergraph,
    partition: HyperedgePartition,
    step_plan: StepPlan,
    matched_edges: Sequence[int],
    vmap: Dict[int, Set[int]],
    non_incident: Set[int],
    counters: "MatchCounters | None",
    memo: "AnchorUnionMemo | None",
) -> CandidateSet:
    """Algorithm 4 over roaring-style chunk maps.

    Identical structure to the bitset path — per-anchor union, running
    intersection, same mask-ops cost model — but every ``|``/``&`` is
    container-pairwise over the chunks both operands populate, so dense
    chunks run at big-int speed while sparse chunks stay small sorted
    arrays.
    """
    index = partition.index
    if memo is not None and len(partition.edge_ids) < memo.min_rows:
        memo = None
    array_max = index.array_max
    flat = index.flat_containers
    result_chunks = None
    # Sentinel-based: a genuinely empty container is falsy (0 or ()).
    result_container = _NO_RESULT
    work = 0
    for anchor in step_plan.anchors:
        prev_image = data.edge(matched_edges[anchor.prev_step])
        work += len(prev_image)
        possible_images = _anchor_images(
            data, prev_image, anchor, vmap, non_incident
        )
        if not possible_images:
            if counters is not None:
                counters.work_units += work
            return EMPTY_CANDIDATES
        key = cached = None
        if memo is not None:
            key = (
                partition.signature,
                anchor.prev_step,
                anchor.query_vertex,
                tuple(possible_images),
            )
            cached = memo.get(key)
            if cached is AnchorUnionMemo._MISS:
                cached = None
            else:
                work += 1
        if flat is not None:
            # Single-chunk partition: fold bare containers inline — the
            # hot loop mirrors the bitset backend's OR fold, with sparse
            # array containers gathered on the side.
            if cached is not None:
                anchor_container = cached
            else:
                bits = 0
                arrays = None
                flat_get = flat.get
                for vertex in possible_images:
                    container = flat_get(vertex)
                    if container is None:
                        continue
                    if type(container) is int:
                        bits |= container
                    elif arrays is None:
                        arrays = [container]
                    else:
                        arrays.append(container)
                if arrays is None:
                    anchor_container = bits
                elif bits or len(arrays) > 1:
                    # Mixed / multi-array union, inlined from
                    # containers_union_many — the call itself costs the
                    # adaptive backend measurable margin at this
                    # frequency.  Must stay behaviourally identical to
                    # that helper; TestAdaptiveContainers::
                    # test_flat_fold_equivalent_at_container_extremes
                    # pins the equivalence.
                    if bits or sum(map(len, arrays)) > array_max:
                        for array in arrays:
                            for offset in array:
                                bits |= 1 << offset
                        anchor_container = bits
                    else:
                        anchor_container = tuple(
                            sorted({o for array in arrays for o in array})
                        )
                else:
                    anchor_container = arrays[0]
                work += len(possible_images)
                if memo is not None:
                    memo.put(key, anchor_container)
            if result_container is _NO_RESULT:
                result_container = anchor_container
            elif type(result_container) is int and type(
                anchor_container
            ) is int:
                result_container &= anchor_container
            else:
                result_container = container_intersect(
                    result_container, anchor_container
                )
            if not result_container:
                break
        else:
            if cached is not None:
                anchor_chunks = cached
            else:
                anchor_chunks = chunks_union_many(
                    [index.postings_chunks(v) for v in possible_images],
                    array_max,
                )
                work += len(possible_images)
                if memo is not None:
                    memo.put(key, anchor_chunks)
            result_chunks = (
                anchor_chunks
                if result_chunks is None
                else chunks_intersect(result_chunks, anchor_chunks)
            )
            if not result_chunks:
                break

    if result_container is not _NO_RESULT:
        # Single-chunk results share the bitset consumers: a bitmask
        # container IS a row mask (chunk 0), and an array container is
        # at most array_max entries — decoding it eagerly costs less
        # than any lazy wrapper.
        if type(result_container) is int:
            candidates: CandidateSet = MaskCandidates(index, result_container)
        else:
            row_to_edge = index.row_to_edge
            candidates = TupleCandidates(
                tuple(row_to_edge[offset] for offset in result_container)
            )
    elif result_chunks is not None:
        candidates = ChunkCandidates(index, result_chunks)
    else:
        # First step of the order (no anchors): the whole partition.
        candidates = TupleCandidates(partition.edge_ids)

    if counters is not None:
        size = len(candidates)
        counters.work_units += work + size
        counters.candidates += size
    return candidates
