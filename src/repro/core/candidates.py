"""Hyperedge candidate generation (Algorithm 4 of the paper).

Given a partial embedding and the next query hyperedge in the matching
order, candidates are data hyperedges that

* carry the query hyperedge's signature (Observation V.1) — enforced
  structurally by probing only that signature's partition,
* are incident, for every previously matched adjacent query hyperedge
  ``e`` and every shared query vertex ``u ∈ e ∩ e_q``, to some vertex of
  ``f(e)`` with matching label and partial degree (Observations V.2/V.4),
  excluding vertices owned by non-adjacent matched hyperedges
  (Observation V.3).

Each shared vertex contributes the union of the posting lists of its
possible images; the final candidate set is the intersection of those
unions — pure set algebra over the inverted hyperedge index, no
backtracking.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

from ..hypergraph import Hypergraph, intersect_many, union_many
from ..hypergraph.storage import HyperedgePartition
from .counters import MatchCounters
from .plan import StepPlan


def vertex_step_map(
    data: Hypergraph, matched_edges: Sequence[int]
) -> Dict[int, Set[int]]:
    """Map each data vertex of the partial embedding to its incident steps.

    ``vmap[v]`` is the set of step indices whose matched data hyperedge
    contains ``v``.  This is the only derived state a task needs; it is
    rebuilt from the matched edge ids in O(total arity), which keeps tasks
    self-contained (a task stores just a tuple of edge ids — the property
    behind the scheduler's memory bound, Theorem VI.1).
    """
    vmap: Dict[int, Set[int]] = {}
    for step, edge_id in enumerate(matched_edges):
        for vertex in data.edge(edge_id):
            vmap.setdefault(vertex, set()).add(step)
    return vmap


def generate_candidates(
    data: Hypergraph,
    partition: "HyperedgePartition | None",
    step_plan: StepPlan,
    matched_edges: Sequence[int],
    vmap: Dict[int, Set[int]],
    counters: "MatchCounters | None" = None,
) -> Tuple[int, ...]:
    """Run Algorithm 4: candidate data hyperedges for ``step_plan``.

    ``matched_edges`` holds the data edge ids for steps
    ``0 .. step_plan.step - 1``; ``vmap`` must be
    ``vertex_step_map(data, matched_edges)``.  Returns an ascending tuple
    of candidate edge ids (possibly empty).  ``partition`` is the data
    partition with the step's signature, or None when no data hyperedge
    carries it.
    """
    if partition is None:
        return ()

    # Line 1: vertices that must NOT be incident to the matched hyperedge
    # (they belong to images of non-adjacent query hyperedges).
    non_incident: Set[int] = set()
    for prev in step_plan.nonadjacent_prev:
        non_incident.update(data.edge(matched_edges[prev]))

    # Lines 3-6: one union-of-posting-lists per (adjacent edge, shared
    # vertex) anchor; the candidate must be incident to a possible image
    # of every anchor vertex.
    per_anchor_sets = []
    work = 0
    for anchor in step_plan.anchors:
        prev_image = data.edge(matched_edges[anchor.prev_step])
        possible_images = [
            vertex
            for vertex in prev_image
            if vertex not in non_incident
            and data.label(vertex) == anchor.label
            and len(vmap[vertex]) == anchor.required_degree
        ]
        if not possible_images:
            if counters is not None:
                counters.work_units += work + len(prev_image)
            return ()
        postings = [partition.incident_edges(v) for v in possible_images]
        merged = union_many(postings)
        work += len(prev_image) + sum(len(p) for p in postings)
        per_anchor_sets.append(merged)

    # Line 7: intersect all anchor candidate sets.
    if per_anchor_sets:
        candidates = intersect_many(per_anchor_sets)
        work += sum(len(s) for s in per_anchor_sets)
    else:
        # First step of the order (no anchors): the whole partition.
        candidates = partition.edge_ids
        work += len(candidates)

    if counters is not None:
        counters.work_units += work
        counters.candidates += len(candidates)
    return candidates
