"""The generic match-by-vertex backtracking framework (Algorithm 1).

This is the paper's baseline: a conventional subgraph-matching
backtracking loop extended to hypergraphs with the constraint of
Theorem III.2 — whenever assigning ``f(u) = v`` completes a query
hyperedge (all of its vertices now mapped), the image vertex set must be
an exact data hyperedge.  Hyperedges are therefore *verification
conditions*, checked as late as possible: precisely the delayed
verification the match-by-hyperedge framework removes.

Every extended baseline (CFL-H, DAF-H, CECI-H) instantiates
:class:`VertexBacktrackingMatcher` with its own matching-order strategy
and optional pruning (candidate refinement over all mapped neighbours,
conflict-directed backjumping).  The unpruned :func:`brute_force`
reference used by the test suite lives here too.

Results are counted at two granularities:

* **vertex embeddings** — injective vertex mappings, the framework's
  native output, and
* **hyperedge embeddings** — distinct tuples of matched data hyperedges,
  HGMatch's semantics, obtained by projecting each vertex embedding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import QueryError, TimeoutExceeded
from ..hypergraph import Hypergraph
from .filters import VertexStatistics, ihs_candidates, ldf_candidates

#: How many search-tree nodes to expand between deadline checks.
_TIME_CHECK_INTERVAL = 2048


@dataclass
class BaselineResult:
    """Outcome of one baseline matching job."""

    vertex_embeddings: int
    hyperedge_embeddings: int
    elapsed: float
    search_nodes: int
    candidates_total: int = 0
    hyperedge_tuples: "Set[Tuple[int, ...]] | None" = field(default=None, repr=False)


class VertexBacktrackingMatcher:
    """Generic extended subgraph-matching baseline over hypergraphs.

    Parameters
    ----------
    data:
        The data hypergraph (statistics for the IHS filter are cached on
        the instance, so reuse one matcher per dataset).
    use_ihs:
        Apply the IHS candidate filter (paper Section III-B).  The
        brute-force reference disables it.
    refine:
        CECI-style refinement: restrict candidates of the next query
        vertex by the data-adjacency of *all* mapped query neighbours
        rather than only its order-parent.
    backjump:
        DAF-style conflict-directed backjumping: when every candidate of
        a query vertex fails, jump back to its deepest mapped neighbour
        instead of the previous depth (a light rendition of DAF's
        failing-set pruning).
    store:
        Optionally a :class:`repro.hypergraph.PartitionedStore` over
        ``data`` (e.g. shared with an HGMatch engine in a benchmark
        line-up); the IHS filter then prunes signature containment via
        the store's posting index — posting-mask popcounts on the
        mask-capable backends — instead of per-vertex signature
        multisets.
    """

    name = "generic-H"

    def __init__(
        self,
        data: Hypergraph,
        use_ihs: bool = True,
        refine: bool = False,
        backjump: bool = False,
        store=None,
    ) -> None:
        self.data = data
        self.use_ihs = use_ihs
        self.refine = refine
        self.backjump = backjump
        self.store = store
        self.data_stats = VertexStatistics(data)
        self._neighbour_cache: Dict[int, FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    # Strategy hooks
    # ------------------------------------------------------------------
    def matching_order(
        self, query: Hypergraph, candidates: Dict[int, List[int]]
    ) -> List[int]:
        """Order query vertices; subclasses override (default: BFS from the
        vertex with the fewest candidates, neighbours by candidate count)."""
        from .ordering import bfs_order  # local import to avoid a cycle

        return bfs_order(query, candidates)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def candidates(self, query: Hypergraph) -> Dict[int, List[int]]:
        """Candidate vertex sets under the configured filter."""
        if self.use_ihs:
            return ihs_candidates(
                query, self.data, data_stats=self.data_stats, store=self.store
            )
        return ldf_candidates(query, self.data)

    def run(
        self,
        query: Hypergraph,
        time_budget: "float | None" = None,
        collect_hyperedge_tuples: bool = False,
        max_results: "int | None" = None,
    ) -> BaselineResult:
        """Enumerate all embeddings of ``query`` in the data hypergraph.

        Raises :class:`TimeoutExceeded` when ``time_budget`` (seconds)
        runs out — the bench harness records such queries as unfinished,
        feeding the Table IV completion ratios.
        """
        if query.num_edges == 0:
            raise QueryError("query hypergraph has no hyperedges")
        started = time.monotonic()
        deadline = None if time_budget is None else started + time_budget

        candidates = self.candidates(query)
        candidates_total = sum(len(pool) for pool in candidates.values())
        if any(not pool for pool in candidates.values()):
            return BaselineResult(
                vertex_embeddings=0,
                hyperedge_embeddings=0,
                elapsed=time.monotonic() - started,
                search_nodes=0,
                candidates_total=candidates_total,
                hyperedge_tuples=set() if collect_hyperedge_tuples else None,
            )

        order = self.matching_order(query, candidates)
        state = _SearchState(
            query=query,
            data=self.data,
            order=order,
            candidates=candidates,
            refine=self.refine,
            backjump=self.backjump,
            deadline=deadline,
            time_budget=time_budget,
            collect_tuples=collect_hyperedge_tuples,
            max_results=max_results,
            neighbour_cache=self._neighbour_cache,
        )
        state.search()
        tuples = state.hyperedge_tuples
        return BaselineResult(
            vertex_embeddings=state.vertex_embeddings,
            hyperedge_embeddings=len(tuples) if tuples is not None else -1,
            elapsed=time.monotonic() - started,
            search_nodes=state.search_nodes,
            candidates_total=candidates_total,
            hyperedge_tuples=tuples,
        )

    def count(self, query: Hypergraph, time_budget: "float | None" = None) -> int:
        """Vertex-embedding count (the framework's native granularity)."""
        return self.run(query, time_budget=time_budget).vertex_embeddings

    def hyperedge_embeddings(
        self, query: Hypergraph, time_budget: "float | None" = None
    ) -> Set[Tuple[int, ...]]:
        """Distinct hyperedge tuples — HGMatch-comparable semantics."""
        result = self.run(
            query, time_budget=time_budget, collect_hyperedge_tuples=True
        )
        assert result.hyperedge_tuples is not None
        return result.hyperedge_tuples


class _SearchState:
    """Mutable state of one backtracking search (kept off the matcher so
    matchers are reusable and the recursion reads clearly)."""

    def __init__(
        self,
        query: Hypergraph,
        data: Hypergraph,
        order: Sequence[int],
        candidates: Dict[int, List[int]],
        refine: bool,
        backjump: bool,
        deadline: "float | None",
        time_budget: "float | None",
        collect_tuples: bool,
        max_results: "int | None",
        neighbour_cache: Dict[int, FrozenSet[int]],
    ) -> None:
        self.query = query
        self.data = data
        self.order = list(order)
        self.candidates = candidates
        self.refine = refine
        self.backjump = backjump
        self.deadline = deadline
        self.time_budget = time_budget
        self.collect_tuples = collect_tuples
        self.max_results = max_results
        self.neighbour_cache = neighbour_cache

        self.vertex_embeddings = 0
        self.hyperedge_tuples: "Set[Tuple[int, ...]] | None" = (
            set() if collect_tuples else None
        )
        self.search_nodes = 0
        self.mapping: Dict[int, int] = {}
        self.used: Set[int] = set()

        self.depth_of: Dict[int, int] = {
            vertex: depth for depth, vertex in enumerate(self.order)
        }
        # Query hyperedges that become fully mapped exactly when the
        # vertex at each depth is assigned (Theorem III.2 check points).
        self.check_edges_at: List[List[int]] = [[] for _ in self.order]
        for edge_id in range(query.num_edges):
            last = max(self.depth_of[u] for u in query.edge(edge_id))
            self.check_edges_at[last].append(edge_id)
        # Mapped query neighbours (in the primal graph) available at each
        # depth, for candidate restriction.
        self.anchors_at: List[List[int]] = []
        for depth, vertex in enumerate(self.order):
            anchors = [
                u
                for u in self._query_neighbours(vertex)
                if self.depth_of[u] < depth
            ]
            anchors.sort(key=lambda u: self.depth_of[u])
            self.anchors_at.append(anchors)

    # ------------------------------------------------------------------
    def search(self) -> None:
        self._extend(0)

    def _extend(self, depth: int) -> int:
        """Recursive extension; returns the depth to backtrack to."""
        if depth == len(self.order):
            self._record_embedding()
            return depth - 1
        self._maybe_check_deadline()

        vertex = self.order[depth]
        pool = self._candidate_pool(depth, vertex)
        any_valid = False
        blocked_by_used = False
        for candidate in pool:
            if candidate in self.used:
                # Injectivity conflicts involve arbitrary earlier depths,
                # so they disqualify this subtree from backjumping.
                blocked_by_used = True
                continue
            if not self._check_completed_edges(depth, vertex, candidate):
                continue
            any_valid = True
            self.mapping[vertex] = candidate
            self.used.add(candidate)
            self.search_nodes += 1
            jump_to = self._extend(depth + 1)
            del self.mapping[vertex]
            self.used.discard(candidate)
            if self.max_results is not None and (
                self.vertex_embeddings >= self.max_results
            ):
                return -1
            if jump_to < depth:
                return jump_to
        if not any_valid and not blocked_by_used and self.backjump:
            # Every failure cause (labels, anchor adjacency, completed-edge
            # checks) involves only mapped *neighbours* of this vertex, so
            # re-assigning anything deeper than the deepest such neighbour
            # cannot help — jump straight back to it.
            anchors = self.anchors_at[depth]
            if anchors:
                return self.depth_of[anchors[-1]]
        return depth - 1

    # ------------------------------------------------------------------
    def _candidate_pool(self, depth: int, vertex: int) -> List[int]:
        """Candidates of ``vertex`` restricted by mapped neighbours."""
        anchors = self.anchors_at[depth]
        if not anchors:
            return self.candidates[vertex]
        if self.refine:
            restriction: "Optional[Set[int]]" = None
            for anchor in anchors:
                neighbours = self._data_neighbours(self.mapping[anchor])
                restriction = (
                    set(neighbours)
                    if restriction is None
                    else restriction & neighbours
                )
                if not restriction:
                    return []
            assert restriction is not None
            return [v for v in self.candidates[vertex] if v in restriction]
        anchor_image = self.mapping[anchors[0]]
        neighbours = self._data_neighbours(anchor_image)
        return [v for v in self.candidates[vertex] if v in neighbours]

    def _check_completed_edges(
        self, depth: int, vertex: int, candidate: int
    ) -> bool:
        """Theorem III.2: every query hyperedge completed by this
        assignment must map to an exact data hyperedge."""
        edges = self.check_edges_at[depth]
        if not edges:
            return True
        self.mapping[vertex] = candidate
        try:
            for edge_id in edges:
                image = {self.mapping[u] for u in self.query.edge(edge_id)}
                label = (
                    self.query.edge_label(edge_id)
                    if self.data.is_edge_labelled
                    else None
                )
                if not self.data.has_edge(image, label=label):
                    return False
            return True
        finally:
            del self.mapping[vertex]

    def _record_embedding(self) -> None:
        self.vertex_embeddings += 1
        if self.hyperedge_tuples is not None:
            labelled = self.data.is_edge_labelled
            projected = tuple(
                self.data.edge_id(
                    {self.mapping[u] for u in self.query.edge(j)},
                    label=self.query.edge_label(j) if labelled else None,
                )
                for j in range(self.query.num_edges)
            )
            self.hyperedge_tuples.add(projected)

    # ------------------------------------------------------------------
    def _query_neighbours(self, vertex: int) -> FrozenSet[int]:
        return self.query.adjacent_vertices(vertex)

    def _data_neighbours(self, vertex: int) -> FrozenSet[int]:
        cached = self.neighbour_cache.get(vertex)
        if cached is None:
            cached = self.data.adjacent_vertices(vertex)
            self.neighbour_cache[vertex] = cached
        return cached

    def _maybe_check_deadline(self) -> None:
        if self.deadline is None:
            return
        if self.search_nodes % _TIME_CHECK_INTERVAL == 0:
            now = time.monotonic()
            if now > self.deadline:
                assert self.time_budget is not None
                raise TimeoutExceeded(
                    now - (self.deadline - self.time_budget), self.time_budget
                )


def brute_force(
    data: Hypergraph,
    query: Hypergraph,
    time_budget: "float | None" = None,
) -> BaselineResult:
    """Reference matcher: label/degree filter only, no ordering heuristics.

    Used by the test suite as the ground truth every engine must agree
    with (at hyperedge-tuple granularity).
    """
    matcher = VertexBacktrackingMatcher(
        data, use_ihs=False, refine=False, backjump=False
    )
    matcher.name = "BruteForce"
    return matcher.run(
        query, time_budget=time_budget, collect_hyperedge_tuples=True
    )
