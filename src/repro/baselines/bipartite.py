"""Hypergraph → bipartite graph conversion (Fig. 2 of the paper).

The strawman encoding of a hypergraph is a bipartite graph whose lower
class holds the original vertices (keeping their labels) and whose upper
class holds one node per hyperedge, adjacent to the vertices it
contains.  Hyperedge nodes are labelled with their arity, so an exact
hyperedge match is forced: a query edge-node and its image then have
equal degree, and edge preservation plus injectivity makes the image
neighbourhood coincide with the query edge's image.

RapidMatch cannot be extended through the generic hypergraph framework
(it is join-based), so — exactly as the paper does — RapidMatch-H runs
on this conversion (:mod:`repro.baselines.rapidmatch`).
"""

from __future__ import annotations

from typing import List, Tuple

from ..hypergraph import Hypergraph


class BipartiteGraph:
    """The bipartite incidence graph of a hypergraph.

    Vertices ``0 .. num_lower-1`` are the original hypergraph vertices
    (original labels); vertices ``num_lower .. num_lower+num_upper-1``
    are hyperedge nodes labelled ``("E", arity)``.
    """

    def __init__(self, source: Hypergraph) -> None:
        self.source = source
        self.num_lower = source.num_vertices
        self.num_upper = source.num_edges
        self.labels: List[object] = list(source.labels)
        self.adjacency: List[List[int]] = [
            [] for _ in range(self.num_lower + self.num_upper)
        ]
        for edge_id, edge in enumerate(source.edges):
            upper = self.num_lower + edge_id
            if source.is_edge_labelled:
                self.labels.append(("E", len(edge), source.edge_label(edge_id)))
            else:
                self.labels.append(("E", len(edge)))
            for vertex in sorted(edge):
                self.adjacency[vertex].append(upper)
                self.adjacency[upper].append(vertex)

    @property
    def num_vertices(self) -> int:
        return self.num_lower + self.num_upper

    @property
    def num_edges(self) -> int:
        """Binary edge count — the inflation the paper's intro quantifies."""
        return sum(len(edge) for edge in self.source.edges)

    def is_upper(self, vertex: int) -> bool:
        """True for hyperedge nodes."""
        return vertex >= self.num_lower

    def edge_id_of(self, upper_vertex: int) -> int:
        """Original hyperedge id of an upper (edge-node) vertex."""
        return upper_vertex - self.num_lower

    def degree(self, vertex: int) -> int:
        return len(self.adjacency[vertex])

    def neighbours(self, vertex: int) -> List[int]:
        return self.adjacency[vertex]

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(lower={self.num_lower}, upper={self.num_upper}, "
            f"edges={self.num_edges})"
        )


def convert(graph: Hypergraph) -> BipartiteGraph:
    """Convenience wrapper: the bipartite conversion of ``graph``."""
    return BipartiteGraph(graph)


def inflation_factor(graph: Hypergraph) -> Tuple[int, int]:
    """(bipartite vertices, bipartite edges) — the size blow-up that makes
    the strawman approach intractable on large hypergraphs."""
    bipartite = BipartiteGraph(graph)
    return bipartite.num_vertices, bipartite.num_edges
