"""RapidMatch-H: the join-based baseline on bipartite conversions.

RapidMatch (Sun et al., VLDB'20) evaluates subgraph queries as multiway
joins, so it cannot be extended through the generic backtracking
framework; the paper instead feeds it bipartite conversions of both
hypergraphs.  RapidMatch-H does the same:

1. convert query and data to bipartite incidence graphs
   (:mod:`repro.baselines.bipartite`);
2. build one :class:`BinaryRelation` per (lower label, upper label)
   pair from the data incidence edges;
3. compile the query into a :class:`JoinQuery` — one variable per
   bipartite query vertex, one atom per incidence edge, injectivity over
   the lower (vertex) and upper (hyperedge) classes;
4. evaluate with the binding-order join engine.

Results are native *bipartite vertex mappings*; projecting the upper
variables yields hyperedge tuples comparable with HGMatch.  The heavy
inflation of the converted graphs is exactly why the paper finds this
baseline slowest — reproduced here by construction.
"""

from __future__ import annotations

import time
from typing import Dict, List, Set, Tuple

from ..errors import QueryError
from ..hypergraph import Hypergraph
from ..joins import Atom, BinaryRelation, JoinExecutor, JoinQuery
from .bipartite import BipartiteGraph
from .framework import BaselineResult


class RapidMatchHMatcher:
    """The RapidMatch-H baseline."""

    name = "RapidMatch-H"

    def __init__(self, data: Hypergraph) -> None:
        self.data = data
        self.bipartite = BipartiteGraph(data)
        self._relations: Dict[Tuple[object, object], BinaryRelation] = {}
        self._candidates_by_label: Dict[object, List[int]] = {}
        for vertex in range(self.bipartite.num_vertices):
            self._candidates_by_label.setdefault(
                self.bipartite.labels[vertex], []
            ).append(vertex)
        self._build_relations()

    def _build_relations(self) -> None:
        """One relation per (label(a), label(b)) over incidence pairs."""
        pairs: Dict[Tuple[object, object], List[Tuple[int, int]]] = {}
        for lower in range(self.bipartite.num_lower):
            lower_label = self.bipartite.labels[lower]
            for upper in self.bipartite.neighbours(lower):
                upper_label = self.bipartite.labels[upper]
                pairs.setdefault((lower_label, upper_label), []).append(
                    (lower, upper)
                )
        self._relations = {
            key: BinaryRelation(values) for key, values in pairs.items()
        }

    # ------------------------------------------------------------------
    def compile(self, query: Hypergraph) -> JoinQuery:
        """Compile ``query`` into a join over the data's relations."""
        if query.num_edges == 0:
            raise QueryError("query hypergraph has no hyperedges")
        query_bipartite = BipartiteGraph(query)
        num_variables = query_bipartite.num_vertices

        empty = BinaryRelation(())
        candidates: List[List[int]] = []
        for variable in range(num_variables):
            label = query_bipartite.labels[variable]
            candidates.append(self._candidates_by_label.get(label, []))

        atoms: List[Atom] = []
        for lower in range(query_bipartite.num_lower):
            lower_label = query_bipartite.labels[lower]
            for upper in query_bipartite.neighbours(lower):
                upper_label = query_bipartite.labels[upper]
                relation = self._relations.get((lower_label, upper_label), empty)
                atoms.append(Atom(first=lower, second=upper, relation=relation))

        lower_group = list(range(query_bipartite.num_lower))
        upper_group = list(range(query_bipartite.num_lower, num_variables))
        return JoinQuery(
            num_variables=num_variables,
            candidates=candidates,
            atoms=atoms,
            injective_groups=[lower_group, upper_group],
        )

    def run(
        self,
        query: Hypergraph,
        time_budget: "float | None" = None,
        collect_hyperedge_tuples: bool = False,
    ) -> BaselineResult:
        """Evaluate ``query``; result counts mirror the other baselines."""
        started = time.monotonic()
        join_query = self.compile(query)
        executor = JoinExecutor(join_query)

        query_bipartite = BipartiteGraph(query)
        num_lower = query_bipartite.num_lower
        tuples: "Set[Tuple[int, ...]] | None" = (
            set() if collect_hyperedge_tuples else None
        )

        def on_result(assignment: Dict[int, int]) -> None:
            if tuples is None:
                return
            projected = tuple(
                self.bipartite.edge_id_of(assignment[num_lower + edge_id])
                for edge_id in range(query.num_edges)
            )
            tuples.add(projected)

        count = executor.count(
            time_budget=time_budget,
            on_result=on_result if collect_hyperedge_tuples else None,
        )
        candidates_total = sum(len(pool) for pool in join_query.candidates)
        return BaselineResult(
            vertex_embeddings=count,
            hyperedge_embeddings=len(tuples) if tuples is not None else -1,
            elapsed=time.monotonic() - started,
            search_nodes=count,
            candidates_total=candidates_total,
            hyperedge_tuples=tuples,
        )

    def count(self, query: Hypergraph, time_budget: "float | None" = None) -> int:
        """Bipartite vertex-mapping count (native granularity)."""
        return self.run(query, time_budget=time_budget).vertex_embeddings

    def hyperedge_embeddings(
        self, query: Hypergraph, time_budget: "float | None" = None
    ) -> Set[Tuple[int, ...]]:
        result = self.run(
            query, time_budget=time_budget, collect_hyperedge_tuples=True
        )
        assert result.hyperedge_tuples is not None
        return result.hyperedge_tuples
