"""Candidate vertex filtering for the match-by-vertex baselines.

Implements the LDF (label-and-degree) filter plus the *incident
hyperedge structure* (IHS) filter of Ha et al. [30], as adopted by the
paper (Section III-B) for all extended baselines.  A data vertex ``v``
enters the candidate set of query vertex ``u`` only if:

1. **Label and degree** — ``l(u) = l(v)`` and ``d(u) ≤ d(v)``;
2. **Adjacent vertices** — ``|adj(u)| ≤ |adj(v)|``;
3. **Arity containment** — for every arity ``a``,
   ``|he_a(u)| ≤ |he_a(v)|``;
4. **Hyperedge labels** — every incident hyperedge of ``u`` must find an
   incident hyperedge of ``v`` of the same arity with identical
   per-label vertex counts, i.e. the multiset of signatures of ``u``'s
   incident edges must be contained in ``v``'s.

Signature multiset containment (condition 4) subsumes condition 3, but
condition 3 is kept as the cheap pre-check the paper lists.

When a :class:`repro.hypergraph.PartitionedStore` is available, the
signature-containment check runs over the store's inverted posting
index instead of per-vertex Python ``Counter`` multisets: the number of
``v``-incident hyperedges with signature ``s`` *is* the cardinality of
``v``'s posting set in partition ``s``, which the mask-capable backends
answer as a popcount of the posting bitmask (``bitset``) or a container
count (``adaptive``) — no signature multiset is ever materialised.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from ..hypergraph import Hypergraph, PartitionedStore


class VertexStatistics:
    """Per-vertex statistics of one hypergraph, computed lazily once.

    Shared by the matcher instances so repeated queries against the same
    data hypergraph do not recompute degree/adjacency/signature tables.
    """

    def __init__(self, graph: Hypergraph) -> None:
        self.graph = graph
        self._adjacency_size: Dict[int, int] = {}
        self._arity_histogram: Dict[int, Counter] = {}
        self._signature_multiset: Dict[int, Counter] = {}

    def adjacency_size(self, vertex: int) -> int:
        """``|adj(v)|`` with memoisation."""
        cached = self._adjacency_size.get(vertex)
        if cached is None:
            cached = len(self.graph.adjacent_vertices(vertex))
            self._adjacency_size[vertex] = cached
        return cached

    def arity_histogram(self, vertex: int) -> Counter:
        """Counter: arity → number of incident hyperedges of that arity."""
        cached = self._arity_histogram.get(vertex)
        if cached is None:
            cached = Counter(
                self.graph.arity(edge_id)
                for edge_id in self.graph.incident_edges(vertex)
            )
            self._arity_histogram[vertex] = cached
        return cached

    def signature_multiset(self, vertex: int) -> Counter:
        """Counter over the signatures of the vertex's incident hyperedges."""
        cached = self._signature_multiset.get(vertex)
        if cached is None:
            cached = Counter(
                self.graph.edge_signature(edge_id)
                for edge_id in self.graph.incident_edges(vertex)
            )
            self._signature_multiset[vertex] = cached
        return cached


def ldf_candidates(
    query: Hypergraph, data: Hypergraph
) -> Dict[int, List[int]]:
    """Label-and-degree filter only (used by the brute-force reference)."""
    by_label: Dict[object, List[int]] = {}
    for vertex in range(data.num_vertices):
        by_label.setdefault(data.label(vertex), []).append(vertex)
    candidates: Dict[int, List[int]] = {}
    for u in range(query.num_vertices):
        pool = by_label.get(query.label(u), [])
        degree = query.degree(u)
        candidates[u] = [v for v in pool if data.degree(v) >= degree]
    return candidates


def ihs_candidates(
    query: Hypergraph,
    data: Hypergraph,
    query_stats: "VertexStatistics | None" = None,
    data_stats: "VertexStatistics | None" = None,
    store: "PartitionedStore | None" = None,
) -> Dict[int, List[int]]:
    """Full IHS candidate filter (conditions 1–4 above).

    ``store`` optionally supplies the signature-partitioned posting
    index of ``data``; the condition-4 containment check then prunes via
    posting-set cardinalities per partition (module docs) instead of
    building one signature ``Counter`` per data vertex.  Results are
    identical either way.
    """
    query_stats = query_stats if query_stats is not None else VertexStatistics(query)
    data_stats = data_stats if data_stats is not None else VertexStatistics(data)
    base = ldf_candidates(query, data)
    candidates: Dict[int, List[int]] = {}
    for u, pool in base.items():
        u_adj = query_stats.adjacency_size(u)
        u_arities = query_stats.arity_histogram(u)
        u_signatures = query_stats.signature_multiset(u)
        required = None
        if store is not None:
            # Resolve each required signature to its partition index once
            # per query vertex; a missing partition empties the pool.
            required = []
            for signature, count in u_signatures.items():
                partition = store.partition(signature)
                if partition is None:
                    required = None
                    break
                required.append((partition.index, count))
            if required is None:
                candidates[u] = []
                continue
        kept: List[int] = []
        for v in pool:
            if data_stats.adjacency_size(v) < u_adj:
                continue
            if not _histogram_contained(u_arities, data_stats.arity_histogram(v)):
                continue
            if required is not None:
                if any(
                    index.postings_count(v) < count
                    for index, count in required
                ):
                    continue
            elif not _histogram_contained(
                u_signatures, data_stats.signature_multiset(v)
            ):
                continue
            kept.append(v)
        candidates[u] = kept
    return candidates


def _histogram_contained(small: Counter, big: Counter) -> bool:
    """True if ``small`` is a sub-multiset of ``big``."""
    for key, count in small.items():
        if big.get(key, 0) < count:
            return False
    return True


def candidate_summary(candidates: Dict[int, List[int]]) -> Tuple[int, float]:
    """(total candidate count, average per query vertex) — used in reports."""
    total = sum(len(pool) for pool in candidates.values())
    average = total / len(candidates) if candidates else 0.0
    return total, average
