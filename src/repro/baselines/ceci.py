"""CECI-H: the extended CECI baseline (Bhattarai et al., SIGMOD'19).

CECI builds a BFS tree over the query and an embedding-cluster index
holding, per query vertex, the candidates compatible with each mapped
neighbour.  CECI-H keeps the BFS ordering and realises the index's
effect dynamically: the candidate pool of every query vertex is
intersected with the data-adjacency of *all* its already-mapped primal
neighbours (``refine=True`` in the framework), which is exactly the
forward/backward-neighbour consistency CECI's clusters encode.
"""

from __future__ import annotations

from typing import Dict, List

from ..hypergraph import Hypergraph
from .framework import VertexBacktrackingMatcher
from .ordering import bfs_order


class CECIHMatcher(VertexBacktrackingMatcher):
    """The CECI-H baseline matcher."""

    name = "CECI-H"

    def __init__(self, data: Hypergraph, store=None) -> None:
        super().__init__(
            data, use_ihs=True, refine=True, backjump=False, store=store
        )

    def matching_order(
        self, query: Hypergraph, candidates: Dict[int, List[int]]
    ) -> List[int]:
        return bfs_order(query, candidates)
