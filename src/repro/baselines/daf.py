"""DAF-H: the extended DAF baseline (Han et al., SIGMOD'19 → hypergraphs).

DAF organises the query as a DAG rooted at a vertex minimising
``|C(u)|/deg(u)`` and prunes with failing sets.  DAF-H keeps the DAG
(BFS-level) ordering over the primal graph and a conservative rendition
of failing-set pruning: conflict-directed backjumping to the deepest
mapped neighbour when a query vertex has no valid candidate for reasons
other than injectivity (see ``framework.py`` for the soundness
argument).  Candidates pass the IHS filter as in all extended baselines.
"""

from __future__ import annotations

from typing import Dict, List

from ..hypergraph import Hypergraph
from .framework import VertexBacktrackingMatcher
from .ordering import dag_order


class DAFHMatcher(VertexBacktrackingMatcher):
    """The DAF-H baseline matcher."""

    name = "DAF-H"

    def __init__(self, data: Hypergraph, store=None) -> None:
        super().__init__(
            data, use_ihs=True, refine=False, backjump=True, store=store
        )

    def matching_order(
        self, query: Hypergraph, candidates: Dict[int, List[int]]
    ) -> List[int]:
        return dag_order(query, candidates)
