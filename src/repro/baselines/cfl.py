"""CFL-H: the extended CFL baseline (Bi et al., SIGMOD'16 → hypergraphs).

CFL's signature idea is the core-forest-leaf decomposition: match the
dense 2-core of the query first and postpone the cartesian products
caused by trees and leaves hanging off it.  CFL-H keeps that ordering
over the query's primal graph and runs the generic extended backtracking
framework with the IHS candidate filter (Section III-B of the paper).
"""

from __future__ import annotations

from typing import Dict, List

from ..hypergraph import Hypergraph
from .framework import VertexBacktrackingMatcher
from .ordering import core_forest_leaf_order


class CFLHMatcher(VertexBacktrackingMatcher):
    """The CFL-H baseline matcher."""

    name = "CFL-H"

    def __init__(self, data: Hypergraph, store=None) -> None:
        super().__init__(
            data, use_ihs=True, refine=False, backjump=False, store=store
        )

    def matching_order(
        self, query: Hypergraph, candidates: Dict[int, List[int]]
    ) -> List[int]:
        return core_forest_leaf_order(query, candidates)
