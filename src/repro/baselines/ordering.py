"""Matching-order strategies for the match-by-vertex baselines.

Each extended baseline keeps the ordering philosophy of its namesake
subgraph-matching algorithm, applied to the query's *primal graph* (two
query vertices are adjacent iff they share a hyperedge):

* :func:`bfs_order` — CECI-style: BFS from the vertex with the fewest
  candidates, expanding cheapest-first;
* :func:`core_forest_leaf_order` — CFL-style: dense 2-core vertices
  first, then the connecting forest, degree-1 leaves last, postponing
  the cartesian products leaves cause;
* :func:`dag_order` — DAF-style: BFS levels from a root minimising
  ``|C(u)|/deg(u)``, vertices inside a level by candidate count
  (a static rendition of DAF's adaptive DAG ordering).

All orders are *connected* whenever the query is connected: every vertex
after the first has a previously ordered primal neighbour, which the
backtracking framework exploits for candidate restriction.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from ..hypergraph import Hypergraph


def _primal_adjacency(query: Hypergraph) -> Dict[int, Set[int]]:
    """Primal-graph adjacency of the query hypergraph."""
    return {
        vertex: set(query.adjacent_vertices(vertex))
        for vertex in range(query.num_vertices)
    }


def bfs_order(query: Hypergraph, candidates: Dict[int, List[int]]) -> List[int]:
    """BFS from the fewest-candidate vertex; cheapest frontier first."""
    adjacency = _primal_adjacency(query)
    order: List[int] = []
    visited: Set[int] = set()
    remaining = set(range(query.num_vertices))
    while remaining:
        root = min(remaining, key=lambda u: (len(candidates[u]), u))
        queue = deque([root])
        visited.add(root)
        while queue:
            vertex = queue.popleft()
            order.append(vertex)
            remaining.discard(vertex)
            neighbours = sorted(
                (u for u in adjacency[vertex] if u not in visited),
                key=lambda u: (len(candidates[u]), u),
            )
            for neighbour in neighbours:
                visited.add(neighbour)
                queue.append(neighbour)
    return order


def core_forest_leaf_order(
    query: Hypergraph, candidates: Dict[int, List[int]]
) -> List[int]:
    """Core→forest→leaf decomposition ordering (CFL-style)."""
    adjacency = _primal_adjacency(query)
    # 2-core: iteratively strip vertices of primal degree < 2.
    degree = {u: len(adjacency[u]) for u in adjacency}
    core = set(adjacency)
    changed = True
    while changed:
        changed = False
        for vertex in list(core):
            if sum(1 for u in adjacency[vertex] if u in core) < 2:
                core.discard(vertex)
                changed = True
    leaves = {u for u in adjacency if degree[u] == 1}
    forest = set(adjacency) - core - leaves

    def tier(vertex: int) -> int:
        if vertex in core:
            return 0
        if vertex in forest:
            return 1
        return 2

    # Greedy connected order respecting the tiers: always extend with the
    # lowest-tier reachable vertex, ties by candidate count.
    order: List[int] = []
    ordered: Set[int] = set()
    remaining = set(adjacency)
    while remaining:
        frontier = (
            {u for u in remaining if adjacency[u] & ordered}
            if ordered
            else remaining
        )
        if not frontier:
            frontier = remaining  # disconnected query: start a new block
        chosen = min(
            frontier, key=lambda u: (tier(u), len(candidates[u]), u)
        )
        order.append(chosen)
        ordered.add(chosen)
        remaining.discard(chosen)
    return order


def dag_order(query: Hypergraph, candidates: Dict[int, List[int]]) -> List[int]:
    """BFS-DAG levels from a root minimising |C(u)|/deg(u) (DAF-style)."""
    adjacency = _primal_adjacency(query)

    def root_score(vertex: int) -> tuple:
        degree = max(len(adjacency[vertex]), 1)
        return (len(candidates[vertex]) / degree, vertex)

    order: List[int] = []
    visited: Set[int] = set()
    remaining = set(range(query.num_vertices))
    while remaining:
        root = min(remaining, key=root_score)
        level = [root]
        visited.add(root)
        while level:
            level.sort(key=lambda u: (len(candidates[u]), u))
            order.extend(level)
            remaining.difference_update(level)
            next_level: List[int] = []
            for vertex in level:
                for neighbour in adjacency[vertex]:
                    if neighbour not in visited:
                        visited.add(neighbour)
                        next_level.append(neighbour)
            level = next_level
    return order
