"""Extended match-by-vertex baselines (Section III-B and VII-A).

The paper compares HGMatch against the state-of-the-art subgraph
matching algorithms CFL, DAF and CECI — extended to hypergraphs via the
generic backtracking framework with the Theorem III.2 constraint and the
IHS candidate filter — and against RapidMatch on bipartite conversions.
:func:`make_baseline` builds any of them by name; :data:`BASELINE_NAMES`
lists the benchmark line-up.
"""

from ..hypergraph import Hypergraph
from .bipartite import BipartiteGraph, convert, inflation_factor
from .ceci import CECIHMatcher
from .cfl import CFLHMatcher
from .daf import DAFHMatcher
from .filters import VertexStatistics, ihs_candidates, ldf_candidates
from .framework import BaselineResult, VertexBacktrackingMatcher, brute_force
from .rapidmatch import RapidMatchHMatcher

#: Names of the baseline algorithms in the paper's comparison line-up.
BASELINE_NAMES = ("CFL-H", "DAF-H", "CECI-H", "RapidMatch-H")

_REGISTRY = {
    "CFL-H": CFLHMatcher,
    "DAF-H": DAFHMatcher,
    "CECI-H": CECIHMatcher,
    "RapidMatch-H": RapidMatchHMatcher,
}


def make_baseline(name: str, data: Hypergraph, store=None):
    """Instantiate a baseline matcher by its paper name.

    ``store`` (a :class:`repro.hypergraph.PartitionedStore` over
    ``data``, e.g. shared with an HGMatch engine) lets the backtracking
    baselines run their IHS signature-containment pruning over the
    store's posting masks; RapidMatch-H operates on bipartite
    conversions and ignores it.
    """
    try:
        matcher_class = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown baseline {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None
    if name == "RapidMatch-H":
        return matcher_class(data)
    return matcher_class(data, store=store)


__all__ = [
    "BASELINE_NAMES",
    "make_baseline",
    "VertexBacktrackingMatcher",
    "BaselineResult",
    "brute_force",
    "CFLHMatcher",
    "DAFHMatcher",
    "CECIHMatcher",
    "RapidMatchHMatcher",
    "BipartiteGraph",
    "convert",
    "inflation_factor",
    "ihs_candidates",
    "ldf_candidates",
    "VertexStatistics",
]
