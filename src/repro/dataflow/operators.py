"""Dataflow operators (Section VI-A of the paper).

HGMatch abstracts a matching job as a dataflow graph — a straight path
``SCAN → EXPAND × k → SINK`` (Fig. 5a).  The paper's "Remark" notes the
design is extensible with further operators such as property filtering
and aggregation; those are implemented here too (:class:`Filter`,
:class:`Aggregate`), turning the dataflow layer into the small query-
pipeline substrate a hypergraph database would build on.

Operators transform streams of partial embeddings (tuples of data
hyperedge ids).  :class:`repro.dataflow.graph.DataflowGraph` composes
them and executes either sequentially or on a parallel executor.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, List

from ..core.counters import MatchCounters
from ..core.engine import Embedding, HGMatch
from ..core.plan import ExecutionPlan
from ..parallel.tasks import PartialEmbedding


class Operator:
    """Base class: transforms one partial embedding into zero or more."""

    name = "operator"

    def apply(
        self,
        engine: HGMatch,
        plan: ExecutionPlan,
        item: PartialEmbedding,
        counters: "MatchCounters | None",
    ) -> List[PartialEmbedding]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class Scan(Operator):
    """SCAN(e_q): emit every data hyperedge with the first step's signature."""

    name = "SCAN"

    def apply(self, engine, plan, item, counters):
        return engine.expand(plan, (), counters)


class Expand(Operator):
    """EXPAND(e_q): extend each input embedding by one matched hyperedge."""

    name = "EXPAND"

    def __init__(self, step: int) -> None:
        self.step = step

    def apply(self, engine, plan, item, counters):
        return engine.expand(plan, item, counters)

    def describe(self) -> str:
        return f"{self.name}[{self.step}]"


class Filter(Operator):
    """Property filter over partial embeddings (paper's future-work remark).

    ``predicate(engine.data, item) -> bool``; non-matching embeddings are
    dropped from the stream.  Example predicates live in
    :func:`edge_attribute_filter`.
    """

    name = "FILTER"

    def __init__(
        self,
        predicate: Callable[[object, PartialEmbedding], bool],
        label: str = "",
    ) -> None:
        self.predicate = predicate
        self.label = label

    def apply(self, engine, plan, item, counters):
        return [item] if self.predicate(engine.data, item) else []

    def describe(self) -> str:
        return f"{self.name}({self.label})" if self.label else self.name


class Sink:
    """Terminal consumer of complete embeddings."""

    name = "SINK"

    def consume(self, engine: HGMatch, plan: ExecutionPlan, item: PartialEmbedding) -> None:
        raise NotImplementedError

    def result(self):
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class CountSink(Sink):
    """Count embeddings (the mode used by all benchmark experiments)."""

    name = "SINK(count)"

    def __init__(self) -> None:
        self.count = 0

    def consume(self, engine, plan, item):
        self.count += 1

    def result(self) -> int:
        return self.count


class CollectSink(Sink):
    """Materialise :class:`Embedding` objects (bounded use only)."""

    name = "SINK(collect)"

    def __init__(self, limit: "int | None" = None) -> None:
        self.embeddings: List[Embedding] = []
        self.limit = limit

    def consume(self, engine, plan, item):
        if self.limit is None or len(self.embeddings) < self.limit:
            self.embeddings.append(
                Embedding(engine.data, plan.query, plan.order, item)
            )

    def result(self) -> List[Embedding]:
        return self.embeddings


class CallbackSink(Sink):
    """Invoke a user callback per embedding (streaming consumption)."""

    name = "SINK(callback)"

    def __init__(self, callback: Callable[[Embedding], None]) -> None:
        self.callback = callback
        self.count = 0

    def consume(self, engine, plan, item):
        self.count += 1
        self.callback(Embedding(engine.data, plan.query, plan.order, item))

    def result(self) -> int:
        return self.count


class Aggregate(Sink):
    """Group-by-count aggregation sink (paper's future-work remark).

    ``key(engine.data, item)`` maps each complete embedding to a group
    key; the result is a Counter of group sizes.  The Q/A case study
    uses this to count answers per entity binding.
    """

    name = "SINK(aggregate)"

    def __init__(self, key: Callable[[object, PartialEmbedding], object]) -> None:
        self.key = key
        self.groups: Counter = Counter()

    def consume(self, engine, plan, item):
        self.groups[self.key(engine.data, item)] += 1

    def result(self) -> Counter:
        return self.groups
