"""Dataflow model for HGMatch (Section VI-A) with database-style extensions."""

from .graph import DataflowGraph, run_query
from .operators import (
    Aggregate,
    CallbackSink,
    CollectSink,
    CountSink,
    Expand,
    Filter,
    Operator,
    Scan,
    Sink,
)

__all__ = [
    "DataflowGraph",
    "run_query",
    "Operator",
    "Scan",
    "Expand",
    "Filter",
    "Sink",
    "CountSink",
    "CollectSink",
    "CallbackSink",
    "Aggregate",
]
