"""The dataflow graph: SCAN → EXPAND* → (FILTER*) → SINK (Fig. 5a).

:class:`DataflowGraph` composes operators over an execution plan and
runs them either with the sequential LIFO task loop (one-thread case of
the scheduler) or on the threaded parallel executor.  It is the layer a
hypergraph database would extend with further operators; see the
``Filter``/``Aggregate`` classes in :mod:`repro.dataflow.operators` for
the extensions the paper's Remark sketches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.counters import MatchCounters
from ..core.engine import HGMatch
from ..core.plan import ExecutionPlan
from ..errors import SchedulerError
from ..hypergraph import Hypergraph
from .operators import CountSink, Expand, Filter, Operator, Scan, Sink


class DataflowGraph:
    """A compiled dataflow: a path of operators ending in a sink.

    Build one with :meth:`from_query` (which plans the query) or
    :meth:`from_plan`.  Optional ``filters`` maps a step index to a
    :class:`Filter` applied to partial embeddings right after that
    step's EXPAND.
    """

    def __init__(
        self,
        engine: HGMatch,
        plan: ExecutionPlan,
        sink: Sink,
        filters: "dict[int, Filter] | None" = None,
    ) -> None:
        self.engine = engine
        self.plan = plan
        self.sink = sink
        self.filters = dict(filters or {})
        self.operators: List[Operator] = [Scan()]
        for step in range(1, plan.num_steps):
            self.operators.append(Expand(step))

    @classmethod
    def from_query(
        cls,
        engine: HGMatch,
        query: Hypergraph,
        sink: "Sink | None" = None,
        order: "Sequence[int] | None" = None,
        filters: "dict[int, Filter] | None" = None,
    ) -> "DataflowGraph":
        plan = engine.plan(query, order)
        return cls(engine, plan, sink if sink is not None else CountSink(), filters)

    @classmethod
    def from_plan(
        cls,
        engine: HGMatch,
        plan: ExecutionPlan,
        sink: "Sink | None" = None,
        filters: "dict[int, Filter] | None" = None,
    ) -> "DataflowGraph":
        return cls(engine, plan, sink if sink is not None else CountSink(), filters)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Render the dataflow path, e.g. ``SCAN -> EXPAND[1] -> SINK``."""
        parts = []
        for step, operator in enumerate(self.operators):
            parts.append(operator.describe())
            if step in self.filters:
                parts.append(self.filters[step].describe())
        parts.append(self.sink.describe())
        return " -> ".join(parts)

    def execute(
        self,
        workers: int = 1,
        counters: "MatchCounters | None" = None,
        time_budget: "float | None" = None,
    ):
        """Run the dataflow and return the sink's result.

        ``workers > 1`` requires a pure SCAN/EXPAND pipeline with a
        count-style sink (sinks with shared mutable state would need
        locking); filtered or collecting dataflows run sequentially.
        """
        if workers > 1:
            if self.filters or not isinstance(self.sink, CountSink):
                raise SchedulerError(
                    "parallel dataflow execution supports count sinks "
                    "without filters; run filtered dataflows sequentially"
                )
            from ..parallel.executor import ThreadedExecutor

            result = ThreadedExecutor(num_workers=workers).run(
                self.engine, self.plan.query, order=self.plan.order,
                time_budget=time_budget,
            )
            if counters is not None:
                counters.merge(result.counters)
            self.sink.count += result.embeddings
            return self.sink.result()

        self._execute_sequential(counters, time_budget)
        return self.sink.result()

    # ------------------------------------------------------------------
    def _execute_sequential(
        self,
        counters: "MatchCounters | None",
        time_budget: "float | None",
    ) -> None:
        import time as _time

        deadline = None if time_budget is None else _time.monotonic() + time_budget
        num_steps = self.plan.num_steps
        stack: List[Tuple[int, ...]] = [()]
        while stack:
            item = stack.pop()
            depth = len(item)
            if deadline is not None and _time.monotonic() > deadline:
                from ..errors import TimeoutExceeded

                raise TimeoutExceeded(
                    _time.monotonic() - (deadline - time_budget), time_budget
                )
            children = self.operators[depth].apply(
                self.engine, self.plan, item, counters
            )
            if counters is not None:
                counters.tasks += 1
            step_filter = self.filters.get(depth)
            for child in children:
                if step_filter is not None:
                    if not step_filter.apply(self.engine, self.plan, child, counters):
                        continue
                if len(child) == num_steps:
                    self.sink.consume(self.engine, self.plan, child)
                    if counters is not None:
                        counters.embeddings += 1
                else:
                    stack.append(child)


def run_query(
    engine: HGMatch,
    query: Hypergraph,
    sink: "Sink | None" = None,
    workers: int = 1,
) -> object:
    """One-call convenience: build the dataflow for ``query`` and run it."""
    graph = DataflowGraph.from_query(engine, query, sink)
    return graph.execute(workers=workers)
