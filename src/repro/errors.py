"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch everything coming out of the system with one ``except``
clause while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class HypergraphError(ReproError):
    """Raised when a hypergraph is malformed or an operation is invalid."""


class QueryError(ReproError):
    """Raised when a query hypergraph cannot be matched as given.

    Typical causes: a disconnected query (HGMatch requires a connected
    matching order), an empty query, or labels absent from the data.
    """


class ParseError(ReproError):
    """Raised when a hypergraph text file cannot be parsed."""


class SchedulerError(ReproError):
    """Raised on invalid scheduler or executor configuration."""


class TransportError(SchedulerError):
    """Raised on a malformed or interrupted network transport exchange.

    Covers the socket seam of the sharded executor: truncated frames,
    unknown protocol/wire versions, oversized frame lengths and peers
    vanishing mid-message.  Subclasses :class:`SchedulerError` because a
    broken transport is an executor failure from the caller's point of
    view — existing ``except SchedulerError`` handlers keep working.
    """


class JournalError(ReproError):
    """Raised on an invalid journal configuration or journal I/O failure.

    Covers the durability seam: an unusable ``REPRO_JOURNAL_DIR``, a
    malformed fsync/snapshot knob, a journal directory that cannot be
    created, or an append/fsync that fails mid-commit.
    """


class JournalCorruption(JournalError):
    """Raised when the mutation journal is corrupt beyond a torn tail.

    A *torn* write — a partial record at the end of the log, the
    expected residue of a crash mid-append — is silently truncated on
    open.  This error is the other case: a checksum or structural
    failure in the *middle* of the log (valid records follow the bad
    one), a record whose version breaks the committed sequence, or a
    snapshot that fails its own integrity checks.  Recovery must stop:
    replaying past the corruption would fabricate state.
    """


class ServiceBusy(ReproError):
    """Raised when the match service refuses a query at admission.

    The explicit overload signal of the always-on service: the bounded
    admission queue is at its depth limit, so the query is *refused* —
    never silently queued into an unbounded backlog or left to hang.
    ``retry_after`` is the service's backoff hint in seconds.
    """

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(
            f"match service is at its admission depth limit ({depth} "
            f"queries in flight); retry after {retry_after:.3f}s"
        )
        self.depth = depth
        self.retry_after = retry_after


class QueryCancelled(ReproError):
    """Raised when an in-flight query is cancelled.

    Covers both explicit cancellation (``ticket.cancel()``, a client
    disconnecting mid-query) and service drain: the coordinator sends
    CANCEL frames so every worker drops the query's session state, then
    surfaces this to the waiter.
    """


class TimeoutExceeded(ReproError):
    """Raised internally when a matching job exceeds its time budget.

    The bench harness converts this into a "did not finish" record instead
    of propagating it to the caller.
    """

    def __init__(self, elapsed: float, budget: float) -> None:
        super().__init__(f"query exceeded time budget: {elapsed:.3f}s > {budget:.3f}s")
        self.elapsed = elapsed
        self.budget = budget
