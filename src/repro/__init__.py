"""repro — a from-scratch reproduction of HGMatch (ICDE 2023).

HGMatch is a parallel subhypergraph matching system built around a
*match-by-hyperedge* framework: partial embeddings grow one hyperedge at
a time, candidates come from set operations over signature-partitioned
inverted indexes, and validation compares vertex-profile multisets
instead of backtracking.

Quickstart::

    from repro import Hypergraph, HGMatch

    data = Hypergraph(labels=["A", "C", "A", "A", "B", "C", "A"],
                      edges=[{2, 4}, {4, 6}, {0, 1, 2}, {3, 5, 6},
                             {0, 1, 4, 6}, {2, 3, 4, 5}])
    query = Hypergraph(labels=["A", "C", "A", "A", "B"],
                       edges=[{2, 4}, {0, 1, 2}, {0, 1, 3, 4}])
    engine = HGMatch(data)
    print(engine.count(query))            # -> 2 (Fig. 1 of the paper)

See :mod:`repro.baselines` for the extended match-by-vertex baselines
(CFL-H, DAF-H, CECI-H, RapidMatch-H), :mod:`repro.parallel` for the
task scheduler and work-stealing executors, and :mod:`repro.datasets`
for the synthetic analogues of the paper's ten datasets.
"""

from .core import Embedding, HGMatch, MatchCounters
from .errors import (
    HypergraphError,
    ParseError,
    QueryError,
    ReproError,
    SchedulerError,
    TimeoutExceeded,
)
from .hypergraph import (
    DynamicHypergraph,
    Hypergraph,
    HypergraphBuilder,
    MutationBatch,
    MutationResult,
    PartitionedStore,
    ShardedStore,
    dataset_statistics,
    sample_queries,
    sample_query,
)

__version__ = "1.0.0"

__all__ = [
    "Hypergraph",
    "HypergraphBuilder",
    "DynamicHypergraph",
    "MutationBatch",
    "MutationResult",
    "PartitionedStore",
    "ShardedStore",
    "HGMatch",
    "Embedding",
    "MatchCounters",
    "sample_query",
    "sample_queries",
    "dataset_statistics",
    "ReproError",
    "HypergraphError",
    "QueryError",
    "ParseError",
    "SchedulerError",
    "TimeoutExceeded",
    "__version__",
]
