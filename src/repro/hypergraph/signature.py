"""Hyperedge signatures (Definition IV.1 of the paper).

The signature of a hyperedge is the multiset of the labels of the vertices
it contains.  HGMatch partitions the data hypergraph into one hyperedge
table per distinct signature, so candidate generation for a query hyperedge
only ever touches the single partition whose signature equals the query
hyperedge's signature.

Signatures are represented canonically as a sorted tuple of labels, which
makes them hashable (usable as dict keys) and cheap to compare.  Labels may
be any hashable, orderable values; the library uses small integers
internally but strings work equally well.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Tuple

Label = Hashable
Signature = Tuple[Label, ...]


def signature_of_labels(labels: Iterable[Label]) -> Signature:
    """Return the canonical signature for a multiset of labels.

    >>> signature_of_labels(["B", "A", "A"])
    ('A', 'A', 'B')
    """
    return tuple(sorted(labels))


def signature_arity(signature: Signature) -> int:
    """Arity of any hyperedge carrying this signature (its vertex count)."""
    return len(signature)


def signature_label_counts(signature: Signature) -> Counter:
    """Return a ``Counter`` mapping each label to its multiplicity."""
    return Counter(signature)


def is_sub_signature(small: Signature, big: Signature) -> bool:
    """Return True if ``small`` is a sub-multiset of ``big``.

    Used by partial-containment pruning: the already-mapped portion of a
    query hyperedge must be a sub-multiset of some data hyperedge's
    signature.

    >>> is_sub_signature(("A", "B"), ("A", "A", "B"))
    True
    >>> is_sub_signature(("B", "B"), ("A", "A", "B"))
    False
    """
    remaining = Counter(big)
    remaining.subtract(Counter(small))
    return all(count >= 0 for count in remaining.values())


def merge_signatures(first: Signature, second: Signature) -> Signature:
    """Multiset union of two signatures (labels of the combined vertices).

    Note this is the *disjoint* union: shared vertices are counted twice.
    Callers that need the signature of an actual vertex-set union should
    build it from the vertices instead.
    """
    return tuple(sorted(first + second))
