"""Text serialisation of labelled hypergraphs.

Two formats are supported:

**Native format** (``.hg``) — self-contained, one file::

    # comment lines start with '#'
    v <num_vertices>
    l <vertex_id> <label>          # one per vertex
    e <vertex_id> <vertex_id> ...  # one per hyperedge

**Simplex format** — the layout used by the Benson hypergraph corpus the
paper downloads its datasets from: three parallel files,
``<name>-nverts.txt`` (arity of each simplex), ``<name>-simplices.txt``
(concatenated 1-based vertex ids) and ``<name>-labels.txt`` (one label per
vertex).  :func:`load_simplex_dir` reads a directory in that layout;
:func:`save_simplex_dir` writes one.

Both loaders apply the paper's preprocessing (duplicate hyperedges and
duplicate vertices inside a hyperedge are removed) because that happens in
the :class:`Hypergraph` constructor.
"""

from __future__ import annotations

import os
from typing import Iterable, List, TextIO

from ..errors import ParseError
from .hypergraph import Hypergraph


def dump_native(graph: Hypergraph, stream: TextIO) -> None:
    """Write ``graph`` to ``stream`` in the native ``.hg`` format."""
    stream.write(f"v {graph.num_vertices}\n")
    for vertex in range(graph.num_vertices):
        stream.write(f"l {vertex} {graph.label(vertex)}\n")
    for edge in graph.edges:
        stream.write("e " + " ".join(str(v) for v in sorted(edge)) + "\n")


def save_native(graph: Hypergraph, path: str) -> None:
    """Write ``graph`` to the file at ``path`` in native format."""
    with open(path, "w", encoding="utf-8") as stream:
        dump_native(graph, stream)


def parse_native(stream: TextIO) -> Hypergraph:
    """Parse a native-format hypergraph from ``stream``.

    Labels are read back as strings; callers needing integer labels can
    re-map them.  Raises :class:`ParseError` on malformed input.
    """
    num_vertices = -1
    labels: List[str] = []
    edges: List[List[int]] = []
    for line_no, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        try:
            if kind == "v":
                num_vertices = int(parts[1])
                labels = [""] * num_vertices
            elif kind == "l":
                labels[int(parts[1])] = parts[2]
            elif kind == "e":
                edges.append([int(token) for token in parts[1:]])
            else:
                raise ParseError(f"line {line_no}: unknown record type {kind!r}")
        except (IndexError, ValueError) as exc:
            raise ParseError(f"line {line_no}: malformed record {line!r}") from exc
    if num_vertices < 0:
        raise ParseError("missing 'v' header record")
    return Hypergraph(labels, edges)


def load_native(path: str) -> Hypergraph:
    """Read a native-format hypergraph from the file at ``path``."""
    with open(path, "r", encoding="utf-8") as stream:
        return parse_native(stream)


def load_simplex_dir(directory: str, name: str) -> Hypergraph:
    """Load a Benson-style simplex dataset from ``directory``.

    Expects ``<name>-nverts.txt``, ``<name>-simplices.txt`` and
    ``<name>-labels.txt``.  Vertex ids in the simplices file are 1-based,
    as in the published corpus.
    """
    nverts_path = os.path.join(directory, f"{name}-nverts.txt")
    simplices_path = os.path.join(directory, f"{name}-simplices.txt")
    labels_path = os.path.join(directory, f"{name}-labels.txt")

    with open(labels_path, "r", encoding="utf-8") as stream:
        labels = [line.strip() for line in stream if line.strip()]
    with open(nverts_path, "r", encoding="utf-8") as stream:
        arities = [int(line) for line in stream if line.strip()]
    with open(simplices_path, "r", encoding="utf-8") as stream:
        flat = [int(line) for line in stream if line.strip()]

    if sum(arities) != len(flat):
        raise ParseError(
            f"simplices file length {len(flat)} does not match "
            f"sum of arities {sum(arities)}"
        )

    edges: List[List[int]] = []
    cursor = 0
    for arity in arities:
        chunk = flat[cursor : cursor + arity]
        cursor += arity
        edges.append([vertex - 1 for vertex in chunk])

    max_vertex = max(flat, default=0)
    if max_vertex > len(labels):
        raise ParseError(
            f"simplices reference vertex {max_vertex} but only "
            f"{len(labels)} labels were provided"
        )
    return Hypergraph(labels, edges)


def save_simplex_dir(graph: Hypergraph, directory: str, name: str) -> None:
    """Write ``graph`` to ``directory`` in the Benson simplex layout."""
    os.makedirs(directory, exist_ok=True)
    with open(
        os.path.join(directory, f"{name}-labels.txt"), "w", encoding="utf-8"
    ) as stream:
        for vertex in range(graph.num_vertices):
            stream.write(f"{graph.label(vertex)}\n")
    with open(
        os.path.join(directory, f"{name}-nverts.txt"), "w", encoding="utf-8"
    ) as nverts, open(
        os.path.join(directory, f"{name}-simplices.txt"), "w", encoding="utf-8"
    ) as simplices:
        for edge in graph.edges:
            ordered = sorted(edge)
            nverts.write(f"{len(ordered)}\n")
            for vertex in ordered:
                simplices.write(f"{vertex + 1}\n")


def edges_as_lines(edges: Iterable[Iterable[int]]) -> str:
    """Render an edge list as whitespace-separated lines (debug helper)."""
    return "\n".join(" ".join(str(v) for v in sorted(edge)) for edge in edges)
