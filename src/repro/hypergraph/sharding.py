"""Process-sharded storage: row-range shards of the partitioned store.

The mask-native :class:`~repro.core.candidates.CandidateSet` boundary
makes the partitioned store shardable along its row spaces: Algorithm 4
is pure set algebra over posting structures, and set algebra distributes
over a disjoint split of the rows.  Splitting every signature
partition's rows ``0 .. n-1`` into ``num_shards`` contiguous ranges
therefore yields ``num_shards`` *independent* sub-stores — each one
holding backend-native posting structures (merge tuples, row bitmasks
or roaring-style chunk maps) over its **local** row space — whose
shard-local candidate sets concatenate (disjoint union) to exactly the
global candidate set:

    ``Alg4(partition) ∩ rows_i == Alg4(partition[rows_i])``

because every union and intersection in Algorithm 4 commutes with
restriction to a row range.  A worker process owning one
:class:`StoreShard` can thus expand any partial embedding against its
own rows only, ship the surviving candidates as a compact mask payload
(:meth:`repro.core.candidates.CandidateSet.to_bytes` in *global* row
coordinates), and the engine composes the per-shard payloads with the
same container-pairwise ``|`` algebra — no decoded edge-id lists ever
cross a process boundary.

Memory per worker is bounded by its shard's postings (~``1/num_shards``
of the index), which is the production sharding story: the same wire
format and composition rules apply unchanged when shards live on
different hosts.

Shard *placement* — which contiguous range of each partition a shard
owns — is a pure policy choice on top of that contract.  Two build-time
modes exist (:data:`SHARDING_MODES`): ``"uniform"`` splits every
partition into near-equal row counts (the historical layout), and
``"balanced"`` cuts ranges by **posting mass** (rows weighted by their
arity, i.e. the posting entries they contribute) and steers each
partition's surplus toward the least-loaded shard, so hot or
indivisibly small partitions stop concentrating on shard 0.  On top of
either mode, :func:`rebalance_range_table` recuts an existing layout
from *observed* per-shard load (``WorkerStats`` busy/CPU time), keeping
each shard's position along every partition's row axis so only shards
whose boundaries actually moved need to rebuild.  All placements are
expressed as a :data:`RangeTable` and preserve the same row-disjoint
exact-cover invariant, so Algorithm 4 distributivity — and therefore
bit-identical counts — cannot depend on the policy.
"""

from __future__ import annotations

import struct
import zlib
from bisect import bisect_left
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from .dynamic import MutationResult, group_rows_by_signature
from .hypergraph import Hypergraph
from .index import build_index
from .signature import Signature
from .storage import (
    HyperedgePartition,
    resolve_index_backend,
)


def shard_grouping(graph) -> "Dict[Signature, List[int]]":
    """The grouping shards are cut and built from: each signature's
    *row layout* (all slots, tombstones included, ascending edge id).

    On an immutable :class:`Hypergraph` this is exactly
    :func:`~repro.hypergraph.storage.group_edges_by_signature`; on a
    mutated :class:`~repro.hypergraph.dynamic.DynamicHypergraph` the
    layouts additionally keep tombstoned slots so global row
    coordinates never shift under deletion.  Every range cut, worker
    build and coordinator validation must use this one grouping —
    mixing it with the live grouping silently misaligns row spans.
    """
    return group_rows_by_signature(graph)

#: Build-time shard placement policies.  ``"uniform"`` cuts near-equal
#: row counts per partition; ``"balanced"`` cuts posting-mass-weighted
#: ranges and staggers partition surpluses across shards.  Rebalanced
#: layouts are not a mode — they are labelled ``rebalanced-<fp>`` and
#: always derive from a running pool (see :func:`rebalance_range_table`).
SHARDING_MODES = ("uniform", "balanced")

#: Fixed per-row cost, in posting-entry units, added to a row's arity
#: when the balanced cutter weighs it.  Scanning a candidate row costs
#: a constant (iterating the candidate, the validation call) *plus* a
#: per-posting-entry term (the profile comparison over the row's
#: vertices); weighing rows by arity alone over-allocates fine-grained
#: rows to a shard, because their constant costs don't shrink with
#: their arity.  16 entries ≈ the measured constant/per-entry ratio of
#: the pure-Python validation path (see ``benchmarks/bench_sharding``'s
#: skew section, which gates the resulting balance).
ROW_COST_ENTRIES = 16


def _row_weight(signature: Signature) -> int:
    """Load weight of one row of a partition: posting entries + the
    fixed per-row scan cost (see :data:`ROW_COST_ENTRIES`)."""
    return len(signature) + ROW_COST_ENTRIES


def resolve_sharding(sharding: "str | None") -> str:
    """Normalise a ``sharding`` argument, validating the mode name."""
    mode = "uniform" if sharding is None else sharding
    if mode not in SHARDING_MODES:
        raise ValueError(
            f"unknown sharding mode {mode!r}; expected one of "
            f"{SHARDING_MODES}"
        )
    return mode


@dataclass(frozen=True)
class ShardDescriptor:
    """Handoff summary of one shard: what a remote peer must agree on.

    This is the payload of the socket transport's handshake
    (:mod:`repro.parallel.transport`): a worker announces which slice of
    which store it owns, and the coordinator refuses to compose with a
    worker whose descriptor does not fit the executor's expectations —
    wrong backend (payloads would mis-decode), wrong shard arithmetic
    (rows would be double- or under-counted) or a different data graph
    (counts would be silently wrong).  All fields are plain ints/str so
    the descriptor crosses any serialisation boundary.
    """

    shard_id: int
    num_shards: int
    index_backend: str
    #: Signature partitions this shard owns at least one row of.
    num_partitions: int
    #: Shard-local row count summed over its partitions.
    num_rows: int
    #: Edge/vertex counts of the data graph the shard was built from —
    #: a cheap fingerprint that catches composing shards of different
    #: graphs (a full hash would re-read every edge for little gain).
    graph_edges: int
    graph_vertices: int
    #: Placement the shard's ranges were cut with: a build mode
    #: (``uniform``/``balanced``) or a coordinator-issued
    #: ``rebalanced-<fp>`` label.  Two workers cut under different
    #: placements own overlapping (or gapping) row ranges — composing
    #: them would double- or under-count, so the coordinator refuses.
    sharding: str = "uniform"
    #: Replica membership: this worker is replica ``replica_id`` of
    #: ``num_replicas`` serving the *same* row ranges.  Replicas of one
    #: shard are interchangeable by construction (they build identical
    #: shards from the same grouping), which is what makes mid-job
    #: failover and speculative re-dispatch sound: any replica's level
    #: reply for a range is bit-identical to any other's.  The identity
    #: only distinguishes workers; it never changes what rows they own.
    replica_id: int = 0
    num_replicas: int = 1
    #: Mutation version of the data graph the shard reflects: 0 for an
    #: immutable graph, ``DynamicHypergraph.version`` otherwise.  A
    #: worker that missed a MUTATE broadcast (it was restarting) holds
    #: an older version, and composing its rows with current ones would
    #: silently mis-count — the handshake refuses instead.
    graph_version: int = 0

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "num_shards": self.num_shards,
            "index_backend": self.index_backend,
            "num_partitions": self.num_partitions,
            "num_rows": self.num_rows,
            "graph_edges": self.graph_edges,
            "graph_vertices": self.graph_vertices,
            "sharding": self.sharding,
            "replica_id": self.replica_id,
            "num_replicas": self.num_replicas,
            "graph_version": self.graph_version,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ShardDescriptor":
        descriptor = cls(**{key: payload[key] for key in (
            "shard_id", "num_shards", "index_backend", "num_partitions",
            "num_rows", "graph_edges", "graph_vertices", "sharding",
        )})
        # Replica fields default (0 of 1) when absent so descriptors
        # from pre-replication peers keep parsing — an un-replicated
        # worker *is* replica 0 of 1.  graph_version likewise defaults
        # to 0: a pre-mutation peer is at version 0 by definition.
        descriptor = descriptor.with_replica(
            int(payload.get("replica_id", 0)),
            int(payload.get("num_replicas", 1)),
        )
        return replace(
            descriptor,
            graph_version=int(payload.get("graph_version", 0)),
        )

    def with_replica(
        self, replica_id: int, num_replicas: int
    ) -> "ShardDescriptor":
        """The same shard served as replica ``replica_id`` of
        ``num_replicas`` — replica identity belongs to the *worker*
        serving a shard, not to the shard's data, so servers stamp it
        onto the built shard's descriptor at handshake time."""
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if not 0 <= replica_id < num_replicas:
            raise ValueError(
                f"replica_id {replica_id} out of range for "
                f"{num_replicas} replicas"
            )
        return replace(
            self, replica_id=replica_id, num_replicas=num_replicas
        )


class ReplicaSet:
    """The live replica membership of one shard range.

    The row-disjoint contract makes every replica of a shard
    interchangeable: each one holds exactly the same contiguous row
    ranges (built from the same pure-function placement), so any live
    member can serve any request for the range.  This container tracks
    which of the ``num_replicas`` slots currently hold a live member —
    a coordinator keeps one per range and composes a job as long as
    *every* range has at least one live member; a range with **zero**
    live replicas is the only unrecoverable state.

    Members are arbitrary objects (the socket executor stores its
    connection records); presence *is* liveness — a failed member is
    removed, a recovered one re-placed.  Iteration and :meth:`members`
    are ordered by replica id so replica selection is deterministic.
    """

    __slots__ = ("shard_id", "num_replicas", "_members")

    def __init__(self, shard_id: int, num_replicas: int) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.shard_id = shard_id
        self.num_replicas = num_replicas
        self._members: Dict[int, object] = {}

    def place(self, replica_id: int, member) -> None:
        """Register a live member in slot ``replica_id``; refuses a slot
        outside the replica arithmetic or one already held (two workers
        claiming the same identity is a deployment error, the replica
        twin of duplicate shard ids)."""
        if not 0 <= replica_id < self.num_replicas:
            raise ValueError(
                f"replica_id {replica_id} out of range for "
                f"{self.num_replicas} replicas of shard {self.shard_id}"
            )
        if replica_id in self._members:
            raise ValueError(
                f"replica {replica_id} of shard {self.shard_id} is "
                f"already placed"
            )
        self._members[replica_id] = member

    def grow(self, num_replicas: int) -> None:
        """Widen the replica arithmetic to ``num_replicas`` slots.

        An elastic pool admitting a newcomer whose announced
        ``num_replicas`` exceeds the current one grows every range's
        slot table (replica ids already placed keep their slots).
        Shrinking is refused: retiring a member is :meth:`remove`; the
        arithmetic itself never forgets ids, so a later readmit of the
        same identity stays well-defined.
        """
        if num_replicas < self.num_replicas:
            raise ValueError(
                f"cannot shrink shard {self.shard_id} from "
                f"{self.num_replicas} to {num_replicas} replica slots"
            )
        self.num_replicas = num_replicas

    def remove(self, replica_id: int) -> None:
        """Drop a member (it died or was severed); idempotent."""
        self._members.pop(replica_id, None)

    def get(self, replica_id: int):
        return self._members.get(replica_id)

    def members(self) -> "List[Tuple[int, object]]":
        """Live ``(replica_id, member)`` pairs, ascending replica id."""
        return sorted(self._members.items())

    def __iter__(self) -> Iterator:
        return iter(member for _, member in self.members())

    def __len__(self) -> int:
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)

    def __repr__(self) -> str:
        return (
            f"ReplicaSet(shard={self.shard_id}, "
            f"live={sorted(self._members)}/{self.num_replicas})"
        )


def shard_ranges(num_rows: int, num_shards: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``0 .. num_rows-1`` into ``num_shards`` contiguous ranges.

    Balanced to within one row (the first ``num_rows % num_shards``
    shards take the extra row); empty ranges are legal and show up for
    partitions smaller than the shard count.

    >>> shard_ranges(10, 4)
    ((0, 3), (3, 6), (6, 8), (8, 10))
    >>> shard_ranges(2, 4)
    ((0, 1), (1, 2), (2, 2), (2, 2))
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    base, extra = divmod(num_rows, num_shards)
    ranges = []
    low = 0
    for shard_id in range(num_shards):
        high = low + base + (1 if shard_id < extra else 0)
        ranges.append((low, high))
        low = high
    return tuple(ranges)


def weighted_shard_ranges(
    weights: Sequence[float],
    num_shards: int,
    capacities: "Sequence[float] | None" = None,
) -> Tuple[Tuple[int, int], ...]:
    """Cut ``len(weights)`` rows into ``num_shards`` contiguous ranges of
    near-equal total *weight* (optionally scaled per range).

    ``weights[r]`` is row ``r``'s load contribution (posting mass for
    build-time balancing, cost-rate-scaled mass for rebalancing) and
    must be non-negative.  ``capacities`` — one non-negative value per
    range, in positional order — makes the cut proportional instead of
    equal: range ``k`` targets ``total * capacities[k] / sum(capacities)``
    of the weight (a zero capacity yields an empty range whenever
    rounding allows).  Like :func:`shard_ranges` the result is always a
    disjoint exact cover of ``0 .. len(weights)-1`` with empty ranges
    legal; all-zero weights (or capacities) fall back to the uniform
    row-count cut.

    >>> weighted_shard_ranges((1, 1, 1, 1, 4), 2)
    ((0, 4), (4, 5))
    >>> weighted_shard_ranges((1, 1, 1, 1), 2, capacities=(3, 1))
    ((0, 3), (3, 4))
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    num_rows = len(weights)
    if any(weight < 0 for weight in weights):
        raise ValueError("row weights must be non-negative")
    if capacities is None:
        capacities = (1.0,) * num_shards
    elif len(capacities) != num_shards:
        raise ValueError(
            f"{len(capacities)} capacities for {num_shards} shards"
        )
    elif any(capacity < 0 for capacity in capacities):
        raise ValueError("shard capacities must be non-negative")
    prefix = [0.0]
    for weight in weights:
        prefix.append(prefix[-1] + weight)
    total = prefix[-1]
    capacity_total = sum(capacities)
    if total <= 0 or capacity_total <= 0:
        return shard_ranges(num_rows, num_shards)
    ranges = []
    low = 0
    capacity_seen = 0.0
    for shard_id in range(num_shards - 1):
        capacity_seen += capacities[shard_id]
        target = total * capacity_seen / capacity_total
        # Round the boundary to whichever adjacent prefix is closer to
        # the target (ties round down), never moving left of the
        # previous cut — monotone boundaries keep the cover exact.
        high = bisect_left(prefix, target, lo=low)
        if high > low and (
            high > num_rows
            or prefix[high] - target >= target - prefix[high - 1]
        ):
            high -= 1
        high = min(high, num_rows)
        ranges.append((low, high))
        low = high
    ranges.append((low, num_rows))
    return tuple(ranges)


#: One placement: per signature, the ``(low, high)`` row range each
#: shard owns of that partition, indexed by shard id.  Invariant
#: (pinned by the sharding test suite): for every signature the ranges
#: are a disjoint exact cover of ``0 .. num_rows - 1``.
RangeTable = Dict[Signature, Tuple[Tuple[int, int], ...]]


def uniform_range_table(
    grouped: "Mapping[Signature, Sequence[int]]", num_shards: int
) -> RangeTable:
    """The historical layout: near-equal row counts per partition."""
    return {
        signature: shard_ranges(len(edge_ids), num_shards)
        for signature, edge_ids in grouped.items()
    }


def balanced_range_table(
    grouped: "Mapping[Signature, Sequence[int]]", num_shards: int
) -> RangeTable:
    """Posting-mass-balanced layout, deterministic from the grouping.

    Every row of a partition weighs its arity in posting entries
    (``len(signature)`` — the per-partition index statistic) plus the
    fixed per-row scan cost (:data:`ROW_COST_ENTRIES`), so a
    partition's mass is ``(arity + row_cost) * rows``.  Partitions are
    placed in
    descending *lumpiness* order (arity, then mass): coarse-grained
    partitions — whose rows are large indivisible units, the ones a
    uniform row split cannot help — are cut first with equal-mass
    targets, then each finer partition is cut with targets proportional
    to the shards' current mass *deficits*, smoothing out whatever the
    lumpy partitions left uneven.  The function is a pure function of
    ``(grouped, num_shards)``: workers building their own shard and a
    coordinator validating the layout always agree without shipping the
    table.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    loads = [0.0] * num_shards
    total_mass = 0.0
    table: RangeTable = {}
    order = sorted(
        grouped.items(),
        key=lambda item: (
            -len(item[0]),
            -len(item[0]) * len(item[1]),
            item[1][0],
        ),
    )
    for signature, edge_ids in order:
        weight = _row_weight(signature)
        mass = weight * len(edge_ids)
        target = (total_mass + mass) / num_shards
        deficits = [max(target - load, 0.0) for load in loads]
        if sum(deficits) <= 0:
            deficits = [1.0] * num_shards
        ranges = weighted_shard_ranges(
            (weight,) * len(edge_ids), num_shards, capacities=deficits
        )
        table[signature] = ranges
        for shard_id, (low, high) in enumerate(ranges):
            loads[shard_id] += weight * (high - low)
        total_mass += mass
    return table


def build_range_table(
    grouped: "Mapping[Signature, Sequence[int]]",
    num_shards: int,
    sharding: "str | None" = None,
) -> RangeTable:
    """The placement for a build-time mode (see :data:`SHARDING_MODES`)."""
    mode = resolve_sharding(sharding)
    if mode == "balanced":
        return balanced_range_table(grouped, num_shards)
    return uniform_range_table(grouped, num_shards)


def rebalance_range_table(
    grouped: "Mapping[Signature, Sequence[int]]",
    table: RangeTable,
    loads: Sequence[float],
) -> RangeTable:
    """Recut an existing layout from observed per-shard load.

    ``loads[i]`` is shard ``i``'s measured cost over some window
    (``WorkerStats.cpu_time``/``busy_time``); a shard that ran hotter
    than the mean gets proportionally *less* posting mass in the new
    cut (its capacity is the reciprocal of its load factor, clamped to
    ``[0.25, 4.0]`` so one noisy sample cannot starve or flood a
    shard).  Each partition keeps its shards in their current
    *positional* order along the row axis — boundaries shift, positions
    never swap — so shards far from a moved boundary keep their exact
    ranges and need no rebuild.  The result covers every partition's
    rows exactly like the input did; only the split points move.
    """
    num_shards = len(loads)
    if num_shards == 0:
        raise ValueError("loads must name at least one shard")
    if any(load < 0 for load in loads):
        raise ValueError("shard loads must be non-negative")
    mean = sum(loads) / num_shards
    if mean <= 0:
        return dict(table)
    capacities = [
        1.0 / min(max(load / mean, 0.25), 4.0) for load in loads
    ]
    out: RangeTable = {}
    for signature, ranges in table.items():
        if len(ranges) != num_shards:
            raise ValueError(
                f"table has {len(ranges)} ranges for {num_shards} loads"
            )
        weight = _row_weight(signature)
        num_rows = len(grouped[signature])
        positional = sorted(
            range(num_shards),
            key=lambda shard_id: (ranges[shard_id], shard_id),
        )
        cuts = weighted_shard_ranges(
            (weight,) * num_rows,
            num_shards,
            capacities=[capacities[shard_id] for shard_id in positional],
        )
        recut = [None] * num_shards
        for position, shard_id in enumerate(positional):
            recut[shard_id] = cuts[position]
        out[signature] = tuple(recut)
    return out


def retire_shard_ranges(
    table: RangeTable, shard_id: int, survivors: "Sequence[int]"
) -> RangeTable:
    """Recut a table so ``shard_id`` holds no rows (an elastic shrink).

    Every partition's retired range is handed to its nearest surviving
    *positional* neighbour — the left one when it exists, else the
    right one — by extending that neighbour's boundary across the
    retired interval.  Boundaries only stretch, positions never swap
    (the same invariant as :func:`rebalance_range_table`), so shards
    away from the retired one keep their exact ranges and need no
    rebuild.  The retired shard's entries become empty ranges, which
    keeps the table's positional arithmetic intact for later recuts of
    the surviving shards.
    """
    if shard_id in survivors:
        raise ValueError(
            f"shard {shard_id} cannot survive its own retirement"
        )
    if not survivors:
        raise ValueError("cannot retire the only shard of a table")
    left = max((s for s in survivors if s < shard_id), default=None)
    right = min((s for s in survivors if s > shard_id), default=None)
    if left is None and right is None:
        raise ValueError(
            f"no surviving neighbour for retired shard {shard_id}"
        )
    recut: RangeTable = {}
    for signature, ranges in table.items():
        new_ranges = list(ranges)
        low, high = new_ranges[shard_id]
        if left is not None:
            new_ranges[left] = (new_ranges[left][0], high)
            new_ranges[shard_id] = (high, high)
        else:
            new_ranges[right] = (low, new_ranges[right][1])
            new_ranges[shard_id] = (low, low)
        recut[signature] = tuple(new_ranges)
    return recut


def mutate_range_table(
    table: RangeTable, result: MutationResult, num_shards: int
) -> RangeTable:
    """Row-span maintenance of a placement under one committed batch.

    The coordinator-side mirror of
    :meth:`StoreShard.apply_mutation_result`: deletes tombstone in
    place (no boundary moves), and each insert extends the owning range
    — the non-empty range whose ``high`` equals the insert row — by one
    row, opening a new all-but-last-empty entry for an unseen
    signature.  Empty ranges parked exactly at the extended boundary
    shift past it, keeping them positionally *after* the owner so later
    load-based recuts (which sort ranges positionally) stay
    well-defined.  Returns a new table; the input is not modified.
    """
    out = {
        signature: list(ranges) for signature, ranges in table.items()
    }
    for mutation in result.inserted:
        ranges = out.get(mutation.signature)
        if ranges is None:
            if mutation.row != 0:
                raise ValueError(
                    f"insert at row {mutation.row} of a signature the "
                    f"table has never seen"
                )
            out[mutation.signature] = (
                [(0, 0)] * (num_shards - 1) + [(0, 1)]
            )
            continue
        owner = None
        for shard_id, (low, high) in enumerate(ranges):
            if low < high and high == mutation.row:
                owner = shard_id
        if owner is None:
            raise ValueError(
                f"no range of {ranges} ends at insert row {mutation.row}"
            )
        for shard_id, (low, high) in enumerate(ranges):
            if shard_id == owner:
                ranges[shard_id] = (low, high + 1)
            elif low == high == mutation.row:
                ranges[shard_id] = (high + 1, high + 1)
    return {
        signature: tuple(ranges) for signature, ranges in out.items()
    }


def range_table_slices(
    table: RangeTable, num_shards: int
) -> "List[Dict[Signature, Tuple[int, int]]]":
    """Per-shard view of a table: each shard's non-empty ranges only —
    what actually ships to a worker on a rebalance."""
    slices: "List[Dict[Signature, Tuple[int, int]]]" = [
        {} for _ in range(num_shards)
    ]
    for signature, ranges in table.items():
        for shard_id, (low, high) in enumerate(ranges):
            if low < high:
                slices[shard_id][signature] = (low, high)
    return slices


def plan_rebalance(
    grouped: "Mapping[Signature, Sequence[int]]",
    num_shards: int,
    current_table: RangeTable,
    loads: Sequence[float],
):
    """Coordinator-side recut planning, shared by both shard executors
    (the transports differ only in how the slices ship — keeping the
    computation here is what keeps them from drifting).

    Returns ``None`` when the recut changes no boundary, else
    ``(table, label, slices, moved)`` where ``slices`` is the
    per-shard view of the new table (every shard receives its slice —
    workers whose ranges are unchanged merely adopt the new label
    without rebuilding, so the whole pool always agrees on one
    placement label) and ``moved`` lists the shards whose ranges
    actually changed (the ones that rebuild).
    """
    table = rebalance_range_table(grouped, current_table, loads)
    if table == current_table:
        return None
    label = range_table_label(table, grouped)
    old_slices = range_table_slices(current_table, num_shards)
    slices = range_table_slices(table, num_shards)
    moved = [
        shard_id
        for shard_id in range(num_shards)
        if slices[shard_id] != old_slices[shard_id]
    ]
    return table, label, slices, moved


def range_table_label(
    table: RangeTable, grouped: "Mapping[Signature, Sequence[int]]"
) -> str:
    """Sharding label of a rebalanced layout: ``rebalanced-<crc32>``.

    The fingerprint hashes every partition's cut points keyed by the
    partition's first (global, deterministic) edge id, so two layouts
    agree on the label iff they agree on every boundary.  Workers never
    recompute it — the coordinator ships the label with the slices and
    workers echo it back in their descriptor, which is what lets the
    handshake refuse a worker still holding a stale layout.
    """
    crc = 0
    entries = sorted(
        (grouped[signature][0], ranges) for signature, ranges in table.items()
    )
    for first_edge, ranges in entries:
        crc = zlib.crc32(struct.pack("<q", first_edge), crc)
        for low, high in ranges:
            crc = zlib.crc32(struct.pack("<qq", low, high), crc)
    return f"rebalanced-{crc & 0xFFFFFFFF:08x}"


class StoreShard:
    """One shard: every signature partition restricted to a row range.

    For each signature the shard holds a regular
    :class:`HyperedgePartition` over its *slice* of the global
    partition's (ascending) edge ids, indexed with the same backend —
    local row ``r`` of the shard stands for global row
    ``row_base(signature) + r``.  Edge ids stay global, so shard-local
    candidate sets decode to globally valid edge ids; only *row*
    coordinates need the base offset, which
    :meth:`~repro.core.candidates.CandidateSet.to_bytes` applies when a
    payload leaves the shard.

    Built worker-side from the data hypergraph (see :meth:`build`);
    nothing in a shard needs the global store.
    """

    __slots__ = ("shard_id", "num_shards", "index_backend", "_partitions",
                 "_row_bases", "graph_edges", "graph_vertices", "sharding",
                 "graph_version")

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        index_backend: str,
        partitions: Dict[Signature, HyperedgePartition],
        row_bases: Dict[Signature, int],
        graph_edges: int = 0,
        graph_vertices: int = 0,
        sharding: str = "uniform",
        graph_version: int = 0,
    ) -> None:
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.index_backend = index_backend
        self._partitions = partitions
        self._row_bases = row_bases
        self.graph_edges = graph_edges
        self.graph_vertices = graph_vertices
        self.sharding = sharding
        self.graph_version = graph_version

    @classmethod
    def build(
        cls,
        graph: Hypergraph,
        shard_id: int,
        num_shards: int,
        index_backend: "str | None" = None,
        sharding: "str | None" = None,
    ) -> "StoreShard":
        """Build shard ``shard_id`` of ``num_shards`` directly from the
        graph — the worker-side entry point (no global store required)."""
        return cls.from_grouped(
            graph, shard_grouping(graph), shard_id, num_shards,
            index_backend, sharding,
        )

    @classmethod
    def from_grouped(
        cls,
        graph: Hypergraph,
        grouped: "Dict[Signature, List[int]]",
        shard_id: int,
        num_shards: int,
        index_backend: "str | None" = None,
        sharding: "str | None" = None,
    ) -> "StoreShard":
        """Build a shard from a precomputed signature grouping, so
        :class:`ShardedStore` pays the O(num_edges) grouping once for
        all its shards.  ``sharding`` selects the placement mode
        (:data:`SHARDING_MODES`); both modes are pure functions of the
        grouping, so independently built shards always fit together."""
        if not 0 <= shard_id < num_shards:
            raise ValueError(
                f"shard_id {shard_id} out of range for {num_shards} shards"
            )
        mode = resolve_sharding(sharding)
        table = build_range_table(grouped, num_shards, mode)
        ranges = {
            signature: shard_ranges_per_sig[shard_id]
            for signature, shard_ranges_per_sig in table.items()
        }
        return cls.from_ranges(
            graph, grouped, shard_id, num_shards, index_backend, ranges,
            sharding=mode,
        )

    @classmethod
    def from_ranges(
        cls,
        graph: Hypergraph,
        grouped: "Dict[Signature, List[int]]",
        shard_id: int,
        num_shards: int,
        index_backend: "str | None",
        ranges: "Mapping[Signature, Tuple[int, int]]",
        sharding: str = "custom",
    ) -> "StoreShard":
        """Build a shard from explicit per-signature row ranges — the
        rebalance path, where a coordinator ships each worker its slice
        of a recut :data:`RangeTable` (plus the table's label) instead
        of a mode name."""
        if not 0 <= shard_id < num_shards:
            raise ValueError(
                f"shard_id {shard_id} out of range for {num_shards} shards"
            )
        index_backend = resolve_index_backend(index_backend)
        alive = getattr(graph, "is_live", None)
        partitions: Dict[Signature, HyperedgePartition] = {}
        row_bases: Dict[Signature, int] = {}
        for signature, edge_ids in grouped.items():
            low, high = ranges.get(signature, (0, 0))
            if not 0 <= low <= high <= len(edge_ids):
                raise ValueError(
                    f"range ({low}, {high}) outside partition of "
                    f"{len(edge_ids)} rows"
                )
            if low == high:
                continue  # this shard owns no rows of the partition
            row_ids = tuple(edge_ids[low:high])
            ids = (
                row_ids
                if alive is None
                else tuple(e for e in row_ids if alive(e))
            )
            index = build_index(index_backend, graph, row_ids)
            partitions[signature] = HyperedgePartition(
                signature, ids, index, row_ids
            )
            row_bases[signature] = low
        return cls(
            shard_id, num_shards, index_backend, partitions, row_bases,
            graph_edges=graph.num_edges, graph_vertices=graph.num_vertices,
            sharding=sharding,
            graph_version=getattr(graph, "version", 0),
        )

    @property
    def partitions(self) -> Mapping[Signature, HyperedgePartition]:
        """Mapping from signature to the shard's partition slice."""
        return self._partitions

    def partition(self, signature: Signature) -> "HyperedgePartition | None":
        """The shard's slice of the signature's partition, or None when
        the shard owns no rows of it (absent signature or empty range)."""
        return self._partitions.get(signature)

    def row_base(self, signature: Signature) -> int:
        """Global row index of the shard's first local row (0 if the
        shard owns no rows of the signature)."""
        return self._row_bases.get(signature, 0)

    def ranges(self) -> Dict[Signature, Tuple[int, int]]:
        """The shard's non-empty row ranges — its slice of the range
        table, in the exact shape a REBALANCE message carries, so a
        worker can tell a relabel-only rebalance from a real rebuild.
        Spans count *rows* (tombstones included), never live edges:
        range arithmetic lives in the row layout."""
        return {
            signature: (base, base + self._partitions[signature].num_rows)
            for signature, base in self._row_bases.items()
        }

    def apply_mutation_result(
        self, graph, result: MutationResult
    ) -> None:
        """Incrementally maintain the shard under one committed batch.

        ``result`` must come from applying the batch to (a copy of) the
        same data graph every shard of the pool was built from, and
        every shard of the pool must apply the same results in order —
        that is what keeps independently maintained shards composable.

        Deletes tombstone in place: a delete lands on whichever shard's
        range contains its global row, all other shards ignore it, and
        no range boundary moves.  Inserts append at the global row
        layout's tail, so exactly one shard *owns* each append — the
        shard whose range for the signature is non-empty with
        ``high == insert row`` (appends extend the positionally last
        range), falling back to the highest shard id when the insert
        opens a brand-new partition (row 0 of an unseen signature).
        Both rules are computable from shard-local state, so workers
        never coordinate beyond receiving the same batch.
        """
        for mutation in result.deleted:
            partition = self._partitions.get(mutation.signature)
            if partition is None:
                continue
            base = self._row_bases[mutation.signature]
            if base <= mutation.row < base + partition.num_rows:
                partition.remove_edge(
                    mutation.row - base, mutation.edge_id, mutation.vertices
                )
        for mutation in result.inserted:
            partition = self._partitions.get(mutation.signature)
            if partition is None:
                # Either an unseen signature (row 0: highest shard takes
                # it) or an empty range of an existing one (some other
                # shard's high matches the insert row).
                if mutation.row == 0 and self.shard_id == self.num_shards - 1:
                    index = build_index(self.index_backend, graph, ())
                    partition = HyperedgePartition(
                        mutation.signature, (), index, ()
                    )
                    self._partitions[mutation.signature] = partition
                    self._row_bases[mutation.signature] = 0
                    partition.append_edge(mutation.edge_id, mutation.vertices)
                continue
            base = self._row_bases[mutation.signature]
            if base + partition.num_rows == mutation.row:
                partition.append_edge(mutation.edge_id, mutation.vertices)
        self.graph_edges = graph.num_edges
        self.graph_vertices = graph.num_vertices
        self.graph_version = result.version

    def cardinality(self, signature: Signature) -> int:
        """Shard-local row count for the signature."""
        partition = self._partitions.get(signature)
        return partition.cardinality if partition is not None else 0

    def index_size_entries(self) -> int:
        """Total posting entries across the shard's partitions — the
        per-worker share of the Section IV-C index size bound."""
        return sum(
            partition.index.num_entries
            for partition in self._partitions.values()
        )

    def describe(self) -> ShardDescriptor:
        """The shard's handoff descriptor (the socket handshake body)."""
        return ShardDescriptor(
            shard_id=self.shard_id,
            num_shards=self.num_shards,
            index_backend=self.index_backend,
            num_partitions=len(self._partitions),
            num_rows=sum(
                partition.num_rows
                for partition in self._partitions.values()
            ),
            graph_edges=self.graph_edges,
            graph_vertices=self.graph_vertices,
            sharding=self.sharding,
            graph_version=self.graph_version,
        )

    def __repr__(self) -> str:
        return (
            f"StoreShard({self.shard_id}/{self.num_shards}, "
            f"partitions={len(self._partitions)}, "
            f"backend={self.index_backend})"
        )


class ShardedStore:
    """All ``num_shards`` row-range shards of one data hypergraph.

    The in-process view of the sharding scheme: builds every
    :class:`StoreShard` eagerly, which tests, the simulated executor and
    single-process tools use to reason about shard placement.  The
    multiprocess executor never instantiates this class — each worker
    builds exactly one shard via :meth:`StoreShard.build` so no process
    ever holds the full index.

    Invariant (verified by the sharding test suite): for every
    signature, concatenating the shards' ``edge_ids`` in *range order*
    (ascending ``row_base``; identical to shard order under uniform
    placement) reproduces the global partition's ascending edge-id
    tuple, and every shard-local posting structure equals the global one
    restricted to the shard's row range.
    """

    def __init__(
        self,
        graph: Hypergraph,
        num_shards: int,
        index_backend: "str | None" = None,
        sharding: "str | None" = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._graph = graph
        self.num_shards = num_shards
        self.index_backend = resolve_index_backend(index_backend)
        self.sharding = resolve_sharding(sharding)
        grouped = shard_grouping(graph)
        table = build_range_table(grouped, num_shards, self.sharding)
        self.range_table: RangeTable = table
        self._shards = tuple(
            StoreShard.from_ranges(
                graph,
                grouped,
                shard_id,
                num_shards,
                self.index_backend,
                {
                    signature: ranges[shard_id]
                    for signature, ranges in table.items()
                },
                sharding=self.sharding,
            )
            for shard_id in range(num_shards)
        )

    @property
    def graph(self) -> Hypergraph:
        return self._graph

    def apply_mutation_result(self, result: MutationResult) -> None:
        """Incrementally maintain every shard plus the range table —
        the in-process mirror of a pool-wide MUTATE broadcast (the
        graph itself must already carry the batch)."""
        for shard in self._shards:
            shard.apply_mutation_result(self._graph, result)
        self.range_table = mutate_range_table(
            self.range_table, result, self.num_shards
        )

    @property
    def shards(self) -> Tuple[StoreShard, ...]:
        return self._shards

    def shard(self, shard_id: int) -> StoreShard:
        return self._shards[shard_id]

    def __iter__(self) -> Iterable[StoreShard]:
        return iter(self._shards)

    def __len__(self) -> int:
        return self.num_shards

    def signatures(self) -> Tuple[Signature, ...]:
        """All signatures owned by at least one shard."""
        seen = {}
        for shard in self._shards:
            for signature in shard.partitions:
                seen.setdefault(signature, None)
        return tuple(seen)

    def __repr__(self) -> str:
        return (
            f"ShardedStore(shards={self.num_shards}, "
            f"backend={self.index_backend}, edges={self._graph.num_edges})"
        )
