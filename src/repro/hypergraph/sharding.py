"""Process-sharded storage: row-range shards of the partitioned store.

The mask-native :class:`~repro.core.candidates.CandidateSet` boundary
makes the partitioned store shardable along its row spaces: Algorithm 4
is pure set algebra over posting structures, and set algebra distributes
over a disjoint split of the rows.  Splitting every signature
partition's rows ``0 .. n-1`` into ``num_shards`` contiguous ranges
therefore yields ``num_shards`` *independent* sub-stores — each one
holding backend-native posting structures (merge tuples, row bitmasks
or roaring-style chunk maps) over its **local** row space — whose
shard-local candidate sets concatenate (disjoint union) to exactly the
global candidate set:

    ``Alg4(partition) ∩ rows_i == Alg4(partition[rows_i])``

because every union and intersection in Algorithm 4 commutes with
restriction to a row range.  A worker process owning one
:class:`StoreShard` can thus expand any partial embedding against its
own rows only, ship the surviving candidates as a compact mask payload
(:meth:`repro.core.candidates.CandidateSet.to_bytes` in *global* row
coordinates), and the engine composes the per-shard payloads with the
same container-pairwise ``|`` algebra — no decoded edge-id lists ever
cross a process boundary.

Memory per worker is bounded by its shard's postings (~``1/num_shards``
of the index), which is the production sharding story: the same wire
format and composition rules apply unchanged when shards live on
different hosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from .hypergraph import Hypergraph
from .index import build_index
from .signature import Signature
from .storage import (
    HyperedgePartition,
    group_edges_by_signature,
    resolve_index_backend,
)


@dataclass(frozen=True)
class ShardDescriptor:
    """Handoff summary of one shard: what a remote peer must agree on.

    This is the payload of the socket transport's handshake
    (:mod:`repro.parallel.transport`): a worker announces which slice of
    which store it owns, and the coordinator refuses to compose with a
    worker whose descriptor does not fit the executor's expectations —
    wrong backend (payloads would mis-decode), wrong shard arithmetic
    (rows would be double- or under-counted) or a different data graph
    (counts would be silently wrong).  All fields are plain ints/str so
    the descriptor crosses any serialisation boundary.
    """

    shard_id: int
    num_shards: int
    index_backend: str
    #: Signature partitions this shard owns at least one row of.
    num_partitions: int
    #: Shard-local row count summed over its partitions.
    num_rows: int
    #: Edge/vertex counts of the data graph the shard was built from —
    #: a cheap fingerprint that catches composing shards of different
    #: graphs (a full hash would re-read every edge for little gain).
    graph_edges: int
    graph_vertices: int

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "num_shards": self.num_shards,
            "index_backend": self.index_backend,
            "num_partitions": self.num_partitions,
            "num_rows": self.num_rows,
            "graph_edges": self.graph_edges,
            "graph_vertices": self.graph_vertices,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ShardDescriptor":
        return cls(**{key: payload[key] for key in (
            "shard_id", "num_shards", "index_backend", "num_partitions",
            "num_rows", "graph_edges", "graph_vertices",
        )})


def shard_ranges(num_rows: int, num_shards: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``0 .. num_rows-1`` into ``num_shards`` contiguous ranges.

    Balanced to within one row (the first ``num_rows % num_shards``
    shards take the extra row); empty ranges are legal and show up for
    partitions smaller than the shard count.

    >>> shard_ranges(10, 4)
    ((0, 3), (3, 6), (6, 8), (8, 10))
    >>> shard_ranges(2, 4)
    ((0, 1), (1, 2), (2, 2), (2, 2))
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    base, extra = divmod(num_rows, num_shards)
    ranges = []
    low = 0
    for shard_id in range(num_shards):
        high = low + base + (1 if shard_id < extra else 0)
        ranges.append((low, high))
        low = high
    return tuple(ranges)


class StoreShard:
    """One shard: every signature partition restricted to a row range.

    For each signature the shard holds a regular
    :class:`HyperedgePartition` over its *slice* of the global
    partition's (ascending) edge ids, indexed with the same backend —
    local row ``r`` of the shard stands for global row
    ``row_base(signature) + r``.  Edge ids stay global, so shard-local
    candidate sets decode to globally valid edge ids; only *row*
    coordinates need the base offset, which
    :meth:`~repro.core.candidates.CandidateSet.to_bytes` applies when a
    payload leaves the shard.

    Built worker-side from the data hypergraph (see :meth:`build`);
    nothing in a shard needs the global store.
    """

    __slots__ = ("shard_id", "num_shards", "index_backend", "_partitions",
                 "_row_bases", "graph_edges", "graph_vertices")

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        index_backend: str,
        partitions: Dict[Signature, HyperedgePartition],
        row_bases: Dict[Signature, int],
        graph_edges: int = 0,
        graph_vertices: int = 0,
    ) -> None:
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.index_backend = index_backend
        self._partitions = partitions
        self._row_bases = row_bases
        self.graph_edges = graph_edges
        self.graph_vertices = graph_vertices

    @classmethod
    def build(
        cls,
        graph: Hypergraph,
        shard_id: int,
        num_shards: int,
        index_backend: "str | None" = None,
    ) -> "StoreShard":
        """Build shard ``shard_id`` of ``num_shards`` directly from the
        graph — the worker-side entry point (no global store required)."""
        return cls.from_grouped(
            graph, group_edges_by_signature(graph), shard_id, num_shards,
            index_backend,
        )

    @classmethod
    def from_grouped(
        cls,
        graph: Hypergraph,
        grouped: "Dict[Signature, List[int]]",
        shard_id: int,
        num_shards: int,
        index_backend: "str | None" = None,
    ) -> "StoreShard":
        """Build a shard from a precomputed signature grouping, so
        :class:`ShardedStore` pays the O(num_edges) grouping once for
        all its shards."""
        if not 0 <= shard_id < num_shards:
            raise ValueError(
                f"shard_id {shard_id} out of range for {num_shards} shards"
            )
        index_backend = resolve_index_backend(index_backend)
        partitions: Dict[Signature, HyperedgePartition] = {}
        row_bases: Dict[Signature, int] = {}
        for signature, edge_ids in grouped.items():
            low, high = shard_ranges(len(edge_ids), num_shards)[shard_id]
            if low == high:
                continue  # this shard owns no rows of the partition
            ids = tuple(edge_ids[low:high])
            index = build_index(index_backend, graph, ids)
            partitions[signature] = HyperedgePartition(signature, ids, index)
            row_bases[signature] = low
        return cls(
            shard_id, num_shards, index_backend, partitions, row_bases,
            graph_edges=graph.num_edges, graph_vertices=graph.num_vertices,
        )

    @property
    def partitions(self) -> Mapping[Signature, HyperedgePartition]:
        """Mapping from signature to the shard's partition slice."""
        return self._partitions

    def partition(self, signature: Signature) -> "HyperedgePartition | None":
        """The shard's slice of the signature's partition, or None when
        the shard owns no rows of it (absent signature or empty range)."""
        return self._partitions.get(signature)

    def row_base(self, signature: Signature) -> int:
        """Global row index of the shard's first local row (0 if the
        shard owns no rows of the signature)."""
        return self._row_bases.get(signature, 0)

    def cardinality(self, signature: Signature) -> int:
        """Shard-local row count for the signature."""
        partition = self._partitions.get(signature)
        return partition.cardinality if partition is not None else 0

    def index_size_entries(self) -> int:
        """Total posting entries across the shard's partitions — the
        per-worker share of the Section IV-C index size bound."""
        return sum(
            partition.index.num_entries
            for partition in self._partitions.values()
        )

    def describe(self) -> ShardDescriptor:
        """The shard's handoff descriptor (the socket handshake body)."""
        return ShardDescriptor(
            shard_id=self.shard_id,
            num_shards=self.num_shards,
            index_backend=self.index_backend,
            num_partitions=len(self._partitions),
            num_rows=sum(
                partition.cardinality
                for partition in self._partitions.values()
            ),
            graph_edges=self.graph_edges,
            graph_vertices=self.graph_vertices,
        )

    def __repr__(self) -> str:
        return (
            f"StoreShard({self.shard_id}/{self.num_shards}, "
            f"partitions={len(self._partitions)}, "
            f"backend={self.index_backend})"
        )


class ShardedStore:
    """All ``num_shards`` row-range shards of one data hypergraph.

    The in-process view of the sharding scheme: builds every
    :class:`StoreShard` eagerly, which tests, the simulated executor and
    single-process tools use to reason about shard placement.  The
    multiprocess executor never instantiates this class — each worker
    builds exactly one shard via :meth:`StoreShard.build` so no process
    ever holds the full index.

    Invariant (verified by the sharding test suite): for every
    signature, concatenating the shards' ``edge_ids`` in shard order
    reproduces the global partition's ascending edge-id tuple, and every
    shard-local posting structure equals the global one restricted to
    the shard's row range.
    """

    def __init__(
        self,
        graph: Hypergraph,
        num_shards: int,
        index_backend: "str | None" = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._graph = graph
        self.num_shards = num_shards
        self.index_backend = resolve_index_backend(index_backend)
        grouped = group_edges_by_signature(graph)
        self._shards = tuple(
            StoreShard.from_grouped(
                graph, grouped, shard_id, num_shards, self.index_backend
            )
            for shard_id in range(num_shards)
        )

    @property
    def graph(self) -> Hypergraph:
        return self._graph

    @property
    def shards(self) -> Tuple[StoreShard, ...]:
        return self._shards

    def shard(self, shard_id: int) -> StoreShard:
        return self._shards[shard_id]

    def __iter__(self) -> Iterable[StoreShard]:
        return iter(self._shards)

    def __len__(self) -> int:
        return self.num_shards

    def signatures(self) -> Tuple[Signature, ...]:
        """All signatures owned by at least one shard."""
        seen = {}
        for shard in self._shards:
            for signature in shard.partitions:
                seen.setdefault(signature, None)
        return tuple(seen)

    def __repr__(self) -> str:
        return (
            f"ShardedStore(shards={self.num_shards}, "
            f"backend={self.index_backend}, edges={self._graph.num_edges})"
        )
