"""Persistence of the indexed data hypergraph.

The paper's offline stage (Fig. 3) produces an *indexed data
hypergraph* exactly once; online queries then only read it.  This
module makes that artefact durable: :func:`save_store` writes a
partitioned store (graph + signature partitions + inverted indexes) to
a single portable text file, and :func:`load_store` reads it back
without re-deriving anything — the posting lists come straight off
disk.

Format (line-oriented, ``#``-prefixed comments allowed)::

    HGSTORE 1
    v <num_vertices>
    l <vertex> <label>
    el <edge_id> <edge_label>           # only for edge-labelled graphs
    e <vertex> <vertex> ...             # edge ids are line order
    p <edge_id> <edge_id> ...           # one partition (ascending ids)
    i <vertex> <edge_id> <edge_id> ...  # posting list of the partition

Labels are written with :func:`repr` restricted to str/int so that both
label types round-trip exactly.
"""

from __future__ import annotations

from typing import Dict, List, TextIO, Tuple

from ..errors import ParseError
from .hypergraph import Hypergraph
from .index import index_from_postings
from .storage import (
    HyperedgePartition,
    PartitionedStore,
    resolve_index_backend,
)

_MAGIC = "HGSTORE 1"


def _encode_label(label: object) -> str:
    if isinstance(label, int):
        return f"i:{label}"
    if isinstance(label, str):
        if any(ch.isspace() for ch in label):
            raise ParseError(f"labels may not contain whitespace: {label!r}")
        return f"s:{label}"
    raise ParseError(f"only int/str labels can be persisted, got {type(label)}")


def _decode_label(token: str) -> object:
    kind, _, value = token.partition(":")
    if kind == "i":
        return int(value)
    if kind == "s":
        return value
    raise ParseError(f"malformed label token {token!r}")


def dump_store(store: PartitionedStore, stream: TextIO) -> None:
    """Serialise ``store`` (graph + partitions + indexes) to ``stream``."""
    graph = store.graph
    stream.write(_MAGIC + "\n")
    stream.write(f"v {graph.num_vertices}\n")
    for vertex in range(graph.num_vertices):
        stream.write(f"l {vertex} {_encode_label(graph.label(vertex))}\n")
    if graph.is_edge_labelled:
        for edge_id in range(graph.num_edges):
            stream.write(
                f"el {edge_id} {_encode_label(graph.edge_label(edge_id))}\n"
            )
    for edge in graph.edges:
        stream.write("e " + " ".join(str(v) for v in sorted(edge)) + "\n")
    for partition in store.partitions.values():
        stream.write(
            "p " + " ".join(str(e) for e in partition.edge_ids) + "\n"
        )
        for vertex in sorted(partition.index.vertices()):
            postings = partition.index.postings(vertex)
            stream.write(
                f"i {vertex} " + " ".join(str(e) for e in postings) + "\n"
            )


def save_store(store: PartitionedStore, path: str) -> None:
    """Write the indexed data hypergraph to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        dump_store(store, stream)


def parse_store(
    stream: TextIO, index_backend: "str | None" = None
) -> PartitionedStore:
    """Read an indexed data hypergraph back (no recomputation).

    The on-disk format stores backend-neutral posting lists; the
    requested ``index_backend`` — any of ``merge``/``bitset``/
    ``adaptive``, default per :func:`repro.hypergraph.storage.
    default_index_backend` — is materialised while reading.  For the
    adaptive backend that includes re-deriving each chunk's
    array-versus-bitmask container choice, which is a pure function of
    the posting lists and therefore survives the round trip.
    """
    try:
        index_backend = resolve_index_backend(index_backend)
    except ValueError as exc:
        raise ParseError(str(exc)) from None
    header = stream.readline().strip()
    if header != _MAGIC:
        raise ParseError(f"not an HGSTORE file (header {header!r})")

    num_vertices = -1
    labels: List[object] = []
    edge_labels: Dict[int, object] = {}
    edges: List[List[int]] = []
    partitions: List[Tuple[List[int], Dict[int, Tuple[int, ...]]]] = []

    for line_no, raw in enumerate(stream, start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        try:
            if kind == "v":
                num_vertices = int(parts[1])
                labels = [None] * num_vertices
            elif kind == "l":
                labels[int(parts[1])] = _decode_label(parts[2])
            elif kind == "el":
                edge_labels[int(parts[1])] = _decode_label(parts[2])
            elif kind == "e":
                edges.append([int(token) for token in parts[1:]])
            elif kind == "p":
                partitions.append(([int(t) for t in parts[1:]], {}))
            elif kind == "i":
                if not partitions:
                    raise ParseError(f"line {line_no}: posting before partition")
                vertex = int(parts[1])
                partitions[-1][1][vertex] = tuple(int(t) for t in parts[2:])
            else:
                raise ParseError(f"line {line_no}: unknown record {kind!r}")
        except (IndexError, ValueError) as exc:
            raise ParseError(f"line {line_no}: malformed record {line!r}") from exc

    if num_vertices < 0:
        raise ParseError("missing 'v' header record")
    ordered_edge_labels = (
        [edge_labels[i] for i in range(len(edges))] if edge_labels else None
    )
    graph = Hypergraph(labels, edges, edge_labels=ordered_edge_labels)
    if graph.num_edges != len(edges):
        raise ParseError("store file contains duplicate hyperedges")

    store = PartitionedStore.__new__(PartitionedStore)
    store._graph = graph
    store._partitions = {}
    store.index_backend = index_backend
    for edge_ids, postings in partitions:
        if not edge_ids:
            raise ParseError("empty partition record")
        signature = graph.edge_signature(edge_ids[0])
        try:
            index = index_from_postings(index_backend, edge_ids, postings)
        except KeyError as exc:
            raise ParseError(
                f"posting references edge {exc.args[0]} outside its partition"
            ) from exc
        store._partitions[signature] = HyperedgePartition(
            signature, tuple(edge_ids), index
        )
    _verify_store(store)
    return store


def load_store(
    path: str, index_backend: "str | None" = None
) -> PartitionedStore:
    """Read an indexed data hypergraph from ``path``."""
    with open(path, "r", encoding="utf-8") as stream:
        return parse_store(stream, index_backend=index_backend)


def _verify_store(store: PartitionedStore) -> None:
    """Cheap structural invariants of a deserialised store."""
    graph = store.graph
    covered = 0
    for signature, partition in store.partitions.items():
        covered += len(partition.edge_ids)
        for edge_id in partition.edge_ids:
            if graph.edge_signature(edge_id) != signature:
                raise ParseError(
                    f"edge {edge_id} filed under wrong signature {signature!r}"
                )
        if partition.index.num_entries != sum(
            graph.arity(edge_id) for edge_id in partition.edge_ids
        ):
            raise ParseError(
                f"posting entries do not cover partition {signature!r}"
            )
    if covered != graph.num_edges:
        raise ParseError(
            f"partitions cover {covered} edges, graph has {graph.num_edges}"
        )


def stores_equal(first: PartitionedStore, second: PartitionedStore) -> bool:
    """Deep equality of two stores (graph, partitions and postings)."""
    if first.graph != second.graph:
        return False
    if set(first.partitions) != set(second.partitions):
        return False
    for signature, partition in first.partitions.items():
        other = second.partitions[signature]
        if partition.edge_ids != other.edge_ids:
            return False
        vertices = set(partition.index.vertices())
        if vertices != set(other.index.vertices()):
            return False
        for vertex in vertices:
            if partition.index.postings(vertex) != other.index.postings(vertex):
                return False
    return True
