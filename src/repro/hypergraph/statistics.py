"""Dataset statistics in the shape of the paper's Table II.

For every dataset the paper reports the vertex count, hyperedge count,
label-alphabet size, maximum arity, average arity and the on-disk index
size.  :func:`dataset_statistics` computes the same columns for any
:class:`Hypergraph` (plus a few extras used by the experiment reports),
and :func:`estimate_index_bytes` converts posting-entry counts into an
approximate byte size so the Fig. 7 benchmark can print comparable
"graph size vs index size" columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .hypergraph import Hypergraph
from .storage import PartitionedStore

#: Bytes charged per posting-list entry / per stored vertex id.  The Rust
#: implementation stores 32-bit ids; we charge the same so the reported
#: sizes are comparable in spirit.
BYTES_PER_ENTRY = 4


@dataclass(frozen=True)
class DatasetStatistics:
    """The Table II columns for one dataset (plus derived extras)."""

    name: str
    num_vertices: int
    num_edges: int
    num_labels: int
    max_arity: int
    average_arity: float
    num_partitions: int
    graph_bytes: int
    index_bytes: int

    def as_row(self) -> Dict[str, object]:
        """Dict form used by the bench reporting tables."""
        return {
            "dataset": self.name,
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "|Σ|": self.num_labels,
            "amax": self.max_arity,
            "a": round(self.average_arity, 1),
            "partitions": self.num_partitions,
            "graph_size": format_bytes(self.graph_bytes),
            "index_size": format_bytes(self.index_bytes),
        }


def graph_size_entries(graph: Hypergraph) -> int:
    """Stored entries for the raw hyperedge tables: the sum of arities.

    This is the O(a_H × |E(H)|) storage bound of Section IV-B.
    """
    return sum(len(edge) for edge in graph.edges)


def estimate_graph_bytes(graph: Hypergraph) -> int:
    """Approximate byte size of the partitioned hyperedge tables."""
    return graph_size_entries(graph) * BYTES_PER_ENTRY


def estimate_index_bytes(store: PartitionedStore) -> int:
    """Approximate byte size of the inverted hyperedge index.

    One entry per (vertex, incident edge) pair — identical asymptotics to
    the table storage itself, which is the point of the paper's "the index
    size is similar to the original graph size" observation (Exp-1).
    """
    return store.index_size_entries() * BYTES_PER_ENTRY


def dataset_statistics(name: str, graph: Hypergraph, store: "PartitionedStore | None" = None) -> DatasetStatistics:
    """Compute the Table II row for ``graph``.

    Builds a :class:`PartitionedStore` if one is not supplied (the store
    is needed for the partition count and index size columns).
    """
    if store is None:
        store = PartitionedStore(graph)
    return DatasetStatistics(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_labels=len(graph.label_alphabet()),
        max_arity=graph.max_arity(),
        average_arity=graph.average_arity(),
        num_partitions=store.num_partitions(),
        graph_bytes=estimate_graph_bytes(graph),
        index_bytes=estimate_index_bytes(store),
    )


def format_bytes(size: int) -> str:
    """Human-readable byte size (``178KB``-style, as in Table II)."""
    if size < 1024:
        return f"{size}B"
    if size < 1024**2:
        return f"{size / 1024:.1f}KB"
    if size < 1024**3:
        return f"{size / 1024 ** 2:.1f}MB"
    return f"{size / 1024 ** 3:.1f}GB"
