"""Synthetic labelled-hypergraph generators.

The paper evaluates on ten real-world hypergraphs (Table II).  Those
corpora are unavailable offline, so the dataset registry
(:mod:`repro.datasets`) synthesises scaled analogues with these
generators.  The generator family is a *labelled hypergraph configuration
model*:

* vertex degrees follow a truncated power law (real hypergraphs are
  heavy-tailed — Section VI-C motivates work stealing with exactly this);
* hyperedge arities follow a shifted geometric distribution clipped to a
  maximum, tuned to a target mean arity;
* labels are drawn from a Zipf-like distribution over an alphabet, so some
  labels are frequent and some rare, which is what makes the signature
  partitioning selective in interesting ways.

All generators take an explicit :class:`random.Random` instance so every
dataset and benchmark is reproducible from a seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..errors import HypergraphError
from .hypergraph import Hypergraph


def zipf_weights(count: int, exponent: float) -> List[float]:
    """Weights ``1/rank^exponent`` for ranks ``1..count`` (unnormalised)."""
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]


def sample_labels(
    num_vertices: int,
    num_labels: int,
    rng: random.Random,
    exponent: float = 1.0,
) -> List[int]:
    """Assign each vertex a label drawn Zipf(``exponent``) over ``num_labels``.

    Every label in the alphabet is used at least once when
    ``num_vertices >= num_labels`` (the first occurrence of each label is
    forced), matching the paper's datasets where ``|Σ|`` counts labels in
    use.
    """
    if num_labels <= 0:
        raise HypergraphError("num_labels must be positive")
    weights = zipf_weights(num_labels, exponent)
    labels = rng.choices(range(num_labels), weights=weights, k=num_vertices)
    if num_vertices >= num_labels:
        # Force the full alphabet to appear.
        positions = rng.sample(range(num_vertices), num_labels)
        for label, position in enumerate(positions):
            labels[position] = label
    return labels


def sample_arity(
    mean_arity: float,
    max_arity: int,
    rng: random.Random,
    min_arity: int = 2,
) -> int:
    """Draw a hyperedge arity with roughly the requested mean.

    Uses ``min_arity`` plus a geometric tail, clipped at ``max_arity``.
    The geometric success probability is chosen so the unclipped mean is
    ``mean_arity``; the benchmark tables report the *measured* mean, so
    slight clipping bias is acceptable.
    """
    if max_arity < min_arity:
        raise HypergraphError("max_arity must be >= min_arity")
    excess_mean = max(mean_arity - min_arity, 1e-9)
    success = 1.0 / (1.0 + excess_mean)
    extra = 0
    # Inverse-transform sampling of a geometric distribution.
    roll = rng.random()
    probability = success
    cumulative = probability
    while roll > cumulative and extra < max_arity - min_arity:
        extra += 1
        probability *= 1.0 - success
        cumulative += probability
    return min(min_arity + extra, max_arity)


def generate_hypergraph(
    num_vertices: int,
    num_edges: int,
    num_labels: int,
    mean_arity: float,
    max_arity: int,
    rng: random.Random,
    degree_exponent: float = 0.8,
    label_exponent: float = 1.0,
    min_arity: int = 2,
) -> Hypergraph:
    """Generate a labelled configuration-model hypergraph.

    Parameters mirror the columns of Table II: vertex count, hyperedge
    count, alphabet size, mean arity and maximum arity.  Duplicate edges
    produced by the sampler are removed by the :class:`Hypergraph`
    constructor (the paper applies the same preprocessing), so the edge
    count of the result can be slightly below ``num_edges``.
    """
    if num_vertices <= 0 or num_edges < 0:
        raise HypergraphError("vertex and edge counts must be positive")
    max_arity = min(max_arity, num_vertices)
    min_arity = min(min_arity, max_arity)

    labels = sample_labels(num_vertices, num_labels, rng, exponent=label_exponent)
    # Heavy-tailed vertex popularity: vertex v is picked into edges with
    # probability proportional to 1/(rank)^degree_exponent after a random
    # shuffle of ranks (so popular vertices are spread over the id space).
    ranks = list(range(1, num_vertices + 1))
    rng.shuffle(ranks)
    popularity = [1.0 / (rank**degree_exponent) for rank in ranks]

    edges: List[List[int]] = []
    for _ in range(num_edges):
        arity = sample_arity(mean_arity, max_arity, rng, min_arity=min_arity)
        arity = min(arity, num_vertices)
        members = _weighted_sample_without_replacement(
            num_vertices, popularity, arity, rng
        )
        edges.append(members)
    return Hypergraph(labels, edges)


def _weighted_sample_without_replacement(
    population_size: int,
    weights: Sequence[float],
    sample_size: int,
    rng: random.Random,
) -> List[int]:
    """Sample ``sample_size`` distinct indices with probability ∝ weights.

    Uses the exponential-race trick (Efraimidis–Spirakis): draw a key
    ``u^(1/w)`` per candidate and keep the top-k.  Sampling a bounded
    candidate pool keeps this O(k log k) instead of O(n) per edge.
    """
    if sample_size >= population_size:
        return list(range(population_size))
    # Candidate pool: a weighted-with-replacement draw several times the
    # sample size virtually always contains enough distinct vertices.
    pool_size = max(sample_size * 4, 16)
    pool = rng.choices(range(population_size), weights=weights, k=pool_size)
    distinct = list(dict.fromkeys(pool))
    while len(distinct) < sample_size:
        distinct.extend(
            v
            for v in rng.choices(range(population_size), weights=weights, k=pool_size)
            if v not in distinct
        )
    return distinct[:sample_size]


def generate_planted_hypergraph(
    base: Hypergraph,
    pattern: Hypergraph,
    copies: int,
    rng: random.Random,
) -> Hypergraph:
    """Return ``base`` with ``copies`` disjoint copies of ``pattern`` planted.

    Each copy introduces fresh vertices carrying the pattern's labels and
    adds all pattern hyperedges over them, guaranteeing at least
    ``copies`` embeddings of ``pattern`` (useful for tests that need a
    known lower bound on the result count).
    """
    labels = list(base.labels)
    edges: List[List[int]] = [sorted(edge) for edge in base.edges]
    for _ in range(copies):
        offset = len(labels)
        labels.extend(pattern.labels)
        for edge in pattern.edges:
            edges.append([offset + v for v in edge])
    graph = Hypergraph(labels, edges)
    del rng  # reserved for future randomised overlap planting
    return graph


def generate_uniform_hypergraph(
    num_vertices: int,
    num_edges: int,
    arity: int,
    num_labels: int,
    rng: random.Random,
) -> Hypergraph:
    """Generate an ``arity``-uniform hypergraph with uniform label draws.

    Simpler sibling of :func:`generate_hypergraph` used by property tests
    where heavy tails would only slow hypothesis down.
    """
    if arity > num_vertices:
        raise HypergraphError("arity cannot exceed the vertex count")
    labels = [rng.randrange(num_labels) for _ in range(num_vertices)]
    edges = [rng.sample(range(num_vertices), arity) for _ in range(num_edges)]
    return Hypergraph(labels, edges)


def random_connected_hypergraph(
    num_vertices: int,
    num_edges: int,
    num_labels: int,
    max_arity: int,
    rng: random.Random,
) -> Hypergraph:
    """Generate a *connected* random hypergraph.

    Builds a spanning chain of hyperedges first (each new edge shares at
    least one vertex with the already-connected region), then adds the
    remaining edges at random.  Used for query-shaped inputs in tests.
    """
    if num_vertices <= 0:
        raise HypergraphError("num_vertices must be positive")
    labels = [rng.randrange(num_labels) for _ in range(num_vertices)]
    edges: List[List[int]] = []
    connected = {0}
    remaining = [v for v in range(1, num_vertices)]
    rng.shuffle(remaining)
    while remaining or len(edges) < num_edges:
        anchor = rng.choice(sorted(connected))
        budget = min(max_arity - 1, max(1, len(remaining)))
        take = rng.randint(1, budget) if remaining else 0
        fresh = [remaining.pop() for _ in range(min(take, len(remaining)))]
        others_pool = sorted(connected - {anchor})
        extra_count = rng.randint(0, min(max_arity - 1 - len(fresh), len(others_pool)))
        extras = rng.sample(others_pool, extra_count) if extra_count else []
        members = [anchor] + fresh + extras
        if len(members) < 2 and len(connected) > 1:
            members.append(rng.choice([v for v in others_pool if v != anchor]))
        edges.append(members)
        connected.update(members)
        if len(edges) >= num_edges and not remaining:
            break
    return Hypergraph(labels, edges)


def perturb_labels(
    graph: Hypergraph, flips: int, num_labels: int, rng: random.Random
) -> Hypergraph:
    """Return a copy of ``graph`` with ``flips`` random vertex labels changed.

    Handy for negative tests: a query whose labels were perturbed usually
    stops matching.
    """
    labels = list(graph.labels)
    for _ in range(flips):
        vertex = rng.randrange(graph.num_vertices)
        labels[vertex] = rng.randrange(num_labels)
    return Hypergraph(labels, [sorted(edge) for edge in graph.edges])


def seeded_rng(seed: "int | None" = None) -> random.Random:
    """A fresh :class:`random.Random`; explicit helper so callers never
    reach for the shared module-level generator."""
    return random.Random(seed)
