"""Mutable hypergraphs: edge insert/delete with stable row layouts.

:class:`DynamicHypergraph` duck-types the full read interface of the
immutable :class:`~repro.hypergraph.hypergraph.Hypergraph` — every
consumer of a data graph (stores, shards, engines, executors) works on
either without change — and adds a transactional mutation interface:

* :meth:`DynamicHypergraph.apply` commits one :class:`MutationBatch`
  (edge deletes, vertex adds, edge inserts — in that order), bumps the
  graph :attr:`~DynamicHypergraph.version` and returns a
  :class:`MutationResult` describing exactly which edge slots changed
  and *where they live in the row layout*;
* deleted edges become **tombstones**: the edge id and its row stay
  allocated (so rows of later edges never shift), the slot merely stops
  contributing postings, incidence, lookups or counts;
* inserted edges always receive a fresh, strictly increasing edge id —
  ids are never reused — so new rows *append at the tail* of their
  signature's row layout and every sorted structure (posting tuples,
  ascending incidence lists, row tables) extends without re-sorting.

The row-layout invariant this module guarantees is what makes
incremental index maintenance exact across process boundaries:

    the global row coordinates of a signature are ALL of its edge
    slots — live and tombstoned — in ascending edge-id order.

A store built *from scratch* over a mutated :class:`DynamicHypergraph`
therefore produces bit-identical row coordinates to a store maintained
*incrementally* through the same mutations (the differential mutation
oracle in :mod:`repro.testing` pins this), and a shard pool whose
workers hold independently-mutated graph copies keeps exchanging row
masks that mean the same rows everywhere.

``num_edges``, ``edges``, iteration, equality and the fingerprint all
reflect only the **live** edges — a mutated graph is indistinguishable,
to every read-side consumer, from a fresh graph holding its live
content (plus the tombstone rows that only the index layer ever sees
through :meth:`rows_by_signature` / :meth:`is_live`).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

from ..errors import HypergraphError
from .hypergraph import Hypergraph
from .signature import Label, Signature, signature_of_labels


class MutationBatch:
    """One atomic group of graph mutations.

    Parameters
    ----------
    inserts:
        Edge inserts: each item is either an iterable of vertex ids or
        a ``(vertices, edge_label)`` pair (the latter is required on
        edge-labelled graphs, rejected on unlabelled ones).  Vertices
        are normalised to a sorted duplicate-free tuple.
    deletes:
        Edge ids to tombstone.  Every id must name a live edge.
    add_vertices:
        Labels of new vertices, appended in order; inserts may
        reference the new ids.

    Application order within a batch is fixed — vertex adds, then
    deletes, then inserts — so a batch can delete an edge and re-insert
    a superset referencing a fresh vertex.  Instances are immutable and
    picklable: the same batch object is applied by the coordinator and
    broadcast verbatim to every shard worker (MUTATE frames), which is
    what keeps independently-held graph copies in lockstep.
    """

    __slots__ = ("inserts", "deletes", "add_vertices")

    def __init__(
        self,
        inserts: Iterable[object] = (),
        deletes: Iterable[int] = (),
        add_vertices: Iterable[Label] = (),
    ) -> None:
        normalised: List[Tuple[Tuple[int, ...], "Label | None"]] = []
        for item in inserts:
            if (
                isinstance(item, tuple)
                and len(item) == 2
                and not isinstance(item[0], int)
            ):
                vertices, label = item
            else:
                vertices, label = item, None
            normalised.append((tuple(sorted(set(vertices))), label))
        self.inserts: Tuple[Tuple[Tuple[int, ...], "Label | None"], ...] = (
            tuple(normalised)
        )
        self.deletes: Tuple[int, ...] = tuple(deletes)
        self.add_vertices: Tuple[Label, ...] = tuple(add_vertices)

    def __bool__(self) -> bool:
        return bool(self.inserts or self.deletes or self.add_vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MutationBatch):
            return NotImplemented
        return (
            self.inserts == other.inserts
            and self.deletes == other.deletes
            and self.add_vertices == other.add_vertices
        )

    def __hash__(self) -> int:
        return hash((self.inserts, self.deletes, self.add_vertices))

    def __repr__(self) -> str:
        return (
            f"MutationBatch(+{len(self.inserts)}e/-{len(self.deletes)}e/"
            f"+{len(self.add_vertices)}v)"
        )

    # -- daemon protocol (line-JSON) -----------------------------------

    def to_json(self) -> dict:
        """JSON-safe dict for the daemon's ``mutate`` request."""
        return {
            "inserts": [
                {"vertices": list(vertices), "label": label}
                for vertices, label in self.inserts
            ],
            "deletes": list(self.deletes),
            "add_vertices": list(self.add_vertices),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "MutationBatch":
        """Inverse of :meth:`to_json` (tolerates missing keys)."""
        if not isinstance(payload, dict):
            raise HypergraphError(
                f"mutation payload must be an object, got {type(payload).__name__}"
            )
        inserts = []
        for item in payload.get("inserts", ()):
            if isinstance(item, dict):
                inserts.append((item["vertices"], item.get("label")))
            else:
                inserts.append(item)
        return cls(
            inserts=inserts,
            deletes=payload.get("deletes", ()),
            add_vertices=payload.get("add_vertices", ()),
        )


class EdgeMutation:
    """One applied edge insert or delete, located in the row layout.

    ``row`` is the edge's position among *all* slots (live + tombstoned)
    of its signature, in ascending edge-id order — the same coordinate
    every index backend and every shard range speaks.
    """

    __slots__ = ("edge_id", "signature", "vertices", "row")

    def __init__(
        self,
        edge_id: int,
        signature: Signature,
        vertices: FrozenSet[int],
        row: int,
    ) -> None:
        self.edge_id = edge_id
        self.signature = signature
        self.vertices = vertices
        self.row = row

    def __repr__(self) -> str:
        return (
            f"EdgeMutation(e{self.edge_id}, S={self.signature}, "
            f"row={self.row})"
        )


class MutationResult:
    """What :meth:`DynamicHypergraph.apply` actually did.

    ``inserted``/``deleted`` hold :class:`EdgeMutation` records in
    application order; ``skipped`` holds the insert specs that
    duplicated an existing live edge (the graph stays simple, mirroring
    construction-time dedup).  ``version`` is the graph version after
    the commit.
    """

    __slots__ = ("version", "inserted", "deleted", "skipped")

    def __init__(
        self,
        version: int,
        inserted: Sequence[EdgeMutation],
        deleted: Sequence[EdgeMutation],
        skipped: Sequence[Tuple[Tuple[int, ...], "Label | None"]],
    ) -> None:
        self.version = version
        self.inserted = tuple(inserted)
        self.deleted = tuple(deleted)
        self.skipped = tuple(skipped)

    def __repr__(self) -> str:
        return (
            f"MutationResult(v{self.version}, +{len(self.inserted)}, "
            f"-{len(self.deleted)}, ~{len(self.skipped)})"
        )


class DynamicHypergraph:
    """A mutable labelled hypergraph with the immutable read interface.

    Build one with :meth:`from_hypergraph` (preserving edge ids) or the
    :class:`~repro.hypergraph.hypergraph.Hypergraph` constructor
    signature.  All read accessors report **live** state only; the
    dynamic extras — :attr:`version`, :meth:`is_live`,
    :meth:`live_edge_ids`, :meth:`rows_by_signature`, :attr:`num_slots`
    — expose the tombstone-aware layout the index layer maintains
    against.  Instances are picklable (workers receive a copy at spawn
    and replay MUTATE batches to stay in lockstep).
    """

    def __init__(
        self,
        labels: Sequence[Label],
        edges: Iterable[Iterable[int]] = (),
        edge_labels: "Sequence[Label] | None" = None,
    ) -> None:
        base = Hypergraph(labels, edges, edge_labels=edge_labels)
        self._init_from(base)

    def _init_from(self, base: Hypergraph) -> None:
        self._labels: List[Label] = list(base.labels)
        self._slots: List["FrozenSet[int] | None"] = list(base.edges)
        self._slot_signatures: List[Signature] = list(base.edge_signatures())
        self._edge_labelled = base.is_edge_labelled
        self._slot_labels: List["Label | None"] = [
            base.edge_label(edge_id) for edge_id in range(base.num_edges)
        ]
        self._incidence: List[List[int]] = [
            list(base.incident_edges(v)) for v in range(base.num_vertices)
        ]
        self._edge_lookup: Dict[object, int] = {
            self._lookup_key(edge, self._slot_labels[edge_id]): edge_id
            for edge_id, edge in enumerate(self._slots)
        }
        self._rows: Dict[Signature, List[int]] = {}
        for edge_id, signature in enumerate(self._slot_signatures):
            self._rows.setdefault(signature, []).append(edge_id)
        self._live = len(self._slots)
        self.version = 0
        self._history: List[Tuple[int, MutationBatch]] = []

    @classmethod
    def from_hypergraph(cls, graph: "Hypergraph | DynamicHypergraph") -> "DynamicHypergraph":
        """Promote ``graph`` to a dynamic one, preserving edge ids.

        A :class:`DynamicHypergraph` argument is deep-copied with its
        tombstones and version intact — the row layout is part of the
        graph's identity (indexes, shard ranges and wire masks all
        speak it), so a copy must stay coordinate-compatible with the
        original.  Use :meth:`to_hypergraph` for a dense, tombstone-free
        snapshot instead.
        """
        if isinstance(graph, DynamicHypergraph):
            clone = cls.__new__(cls)
            clone._labels = list(graph._labels)
            clone._slots = list(graph._slots)
            clone._slot_signatures = list(graph._slot_signatures)
            clone._edge_labelled = graph._edge_labelled
            clone._slot_labels = list(graph._slot_labels)
            clone._incidence = [list(ids) for ids in graph._incidence]
            clone._edge_lookup = dict(graph._edge_lookup)
            clone._rows = {
                signature: list(rows)
                for signature, rows in graph._rows.items()
            }
            clone._live = graph._live
            clone.version = graph.version
            clone._history = list(graph._history)
            return clone
        instance = cls.__new__(cls)
        instance._init_from(graph)
        return instance

    @classmethod
    def from_slot_state(
        cls,
        graph: Hypergraph,
        *,
        num_slots: int,
        dead: "Dict[int, Signature]",
        version: int,
    ) -> "DynamicHypergraph":
        """Rebuild a dynamic graph from its frozen live content plus
        the tombstone layout — the snapshot-recovery constructor.

        ``graph`` is the dense live snapshot (what
        :meth:`to_hypergraph` froze: live edges renumbered 0..n-1 in
        ascending original-id order), ``dead`` maps each tombstoned
        slot id to the signature it still occupies in the row layout,
        and ``num_slots`` / ``version`` restore the id allocator and
        the mutation counter.  The result is coordinate-identical to
        the graph the snapshot was taken from: same slots, same rows
        per signature, same next edge id — so replayed
        :class:`MutationBatch` es land on the same coordinates.

        Raises :class:`~repro.errors.HypergraphError` when the pieces
        are inconsistent (slot arithmetic, dead ids out of range or
        colliding with live positions).
        """
        if num_slots != graph.num_edges + len(dead):
            raise HypergraphError(
                f"slot arithmetic mismatch: {num_slots} slots cannot "
                f"hold {graph.num_edges} live edges + {len(dead)} "
                f"tombstones"
            )
        if any(not 0 <= slot < num_slots for slot in dead):
            raise HypergraphError(
                f"tombstoned slot id outside 0..{num_slots - 1}"
            )
        instance = cls.__new__(cls)
        instance._labels = list(graph.labels)
        instance._edge_labelled = graph.is_edge_labelled
        live_ids = [
            slot for slot in range(num_slots) if slot not in dead
        ]
        instance._slots = [None] * num_slots
        instance._slot_signatures = [None] * num_slots
        instance._slot_labels = [None] * num_slots
        for dense_id, slot in enumerate(live_ids):
            instance._slots[slot] = graph.edges[dense_id]
            instance._slot_signatures[slot] = graph.edge_signature(dense_id)
            instance._slot_labels[slot] = graph.edge_label(dense_id)
        for slot, signature in dead.items():
            instance._slot_signatures[slot] = signature
            if instance._edge_labelled:
                # The first signature component of an edge-labelled
                # graph *is* the edge label (see :meth:`apply`).
                instance._slot_labels[slot] = signature[0]
        instance._incidence = [[] for _ in instance._labels]
        for slot in live_ids:
            for vertex in instance._slots[slot]:
                instance._incidence[vertex].append(slot)
        instance._edge_lookup = {
            instance._lookup_key(
                instance._slots[slot], instance._slot_labels[slot]
            ): slot
            for slot in live_ids
        }
        instance._rows = {}
        for slot in range(num_slots):
            instance._rows.setdefault(
                instance._slot_signatures[slot], []
            ).append(slot)
        instance._live = len(live_ids)
        instance.version = version
        instance._history = []
        return instance

    # ------------------------------------------------------------------
    # Dynamic extras (the tombstone-aware layout)
    # ------------------------------------------------------------------

    @property
    def num_slots(self) -> int:
        """Allocated edge slots, live + tombstoned (= next edge id)."""
        return len(self._slots)

    def is_live(self, edge_id: int) -> bool:
        """True when ``edge_id`` names a live (non-tombstoned) edge."""
        return (
            0 <= edge_id < len(self._slots)
            and self._slots[edge_id] is not None
        )

    def live_edge_ids(self) -> Iterator[int]:
        """Live edge ids in ascending order."""
        return (
            edge_id
            for edge_id, edge in enumerate(self._slots)
            if edge is not None
        )

    def rows_by_signature(self) -> Dict[Signature, List[int]]:
        """The row layout: ALL slot ids per signature, ascending.

        Tombstoned slots are included — this is the coordinate system
        indexes, shards and wire masks agree on.  Returns fresh lists.
        """
        return {
            signature: list(rows) for signature, rows in self._rows.items()
        }

    def slot_vertices(self, edge_id: int) -> "FrozenSet[int] | None":
        """The slot's vertex set, or None for a tombstone."""
        return self._slots[edge_id]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _lookup_key(self, vertices: FrozenSet[int], label: "Label | None"):
        return vertices if not self._edge_labelled else (vertices, label)

    def apply(self, batch: MutationBatch) -> MutationResult:
        """Commit ``batch`` atomically; returns the located changes.

        Validation happens before any state changes, so a rejected
        batch leaves the graph untouched.  Raises
        :class:`~repro.errors.HypergraphError` on a delete of an
        unknown/dead/duplicated edge id, an insert referencing an
        unknown vertex, an empty insert, or an edge-label mismatch with
        the graph's labelled-ness.
        """
        # -- validate everything up front --------------------------------
        seen_deletes: Set[int] = set()
        for edge_id in batch.deletes:
            if not self.is_live(edge_id):
                raise HypergraphError(
                    f"cannot delete edge {edge_id}: not a live edge"
                )
            if edge_id in seen_deletes:
                raise HypergraphError(
                    f"edge {edge_id} deleted twice in one batch"
                )
            seen_deletes.add(edge_id)
        new_num_vertices = len(self._labels) + len(batch.add_vertices)
        for vertices, label in batch.inserts:
            if not vertices:
                raise HypergraphError("hyperedges must be non-empty")
            for vertex in vertices:
                if not 0 <= vertex < new_num_vertices:
                    raise HypergraphError(
                        f"edge {list(vertices)} references unknown vertex "
                        f"{vertex}"
                    )
            if self._edge_labelled and label is None:
                raise HypergraphError(
                    "inserts into an edge-labelled hypergraph require an "
                    "edge label"
                )
            if not self._edge_labelled and label is not None:
                raise HypergraphError(
                    "edge labels are not allowed on an unlabelled hypergraph"
                )

        # -- vertices ----------------------------------------------------
        for label in batch.add_vertices:
            self._labels.append(label)
            self._incidence.append([])

        # -- deletes (tombstone in place: rows never shift) --------------
        deleted: List[EdgeMutation] = []
        for edge_id in batch.deletes:
            vertices = self._slots[edge_id]
            signature = self._slot_signatures[edge_id]
            rows = self._rows[signature]
            row = bisect_left(rows, edge_id)
            deleted.append(EdgeMutation(edge_id, signature, vertices, row))
            for vertex in vertices:
                incidence = self._incidence[vertex]
                del incidence[bisect_left(incidence, edge_id)]
            del self._edge_lookup[
                self._lookup_key(vertices, self._slot_labels[edge_id])
            ]
            self._slots[edge_id] = None
            self._live -= 1

        # -- inserts (fresh max ids: every structure appends) ------------
        inserted: List[EdgeMutation] = []
        skipped: List[Tuple[Tuple[int, ...], "Label | None"]] = []
        for vertices, label in batch.inserts:
            edge = frozenset(vertices)
            key = self._lookup_key(edge, label)
            if key in self._edge_lookup:
                skipped.append((vertices, label))
                continue
            edge_id = len(self._slots)
            if self._edge_labelled:
                signature = (label,) + signature_of_labels(
                    self._labels[v] for v in edge
                )
            else:
                signature = signature_of_labels(
                    self._labels[v] for v in edge
                )
            self._slots.append(edge)
            self._slot_signatures.append(signature)
            self._slot_labels.append(label)
            for vertex in edge:
                self._incidence[vertex].append(edge_id)
            self._edge_lookup[key] = edge_id
            rows = self._rows.setdefault(signature, [])
            inserted.append(
                EdgeMutation(edge_id, signature, edge, len(rows))
            )
            rows.append(edge_id)
            self._live += 1

        self.version += 1
        self._history.append((self.version, batch))
        if len(self._history) > self.HISTORY_LIMIT:
            del self._history[: len(self._history) - self.HISTORY_LIMIT]
        return MutationResult(self.version, inserted, deleted, skipped)

    #: Committed batches retained in memory for worker catch-up
    #: (:meth:`batches_since`).  Bounded so a long-lived coordinator
    #: cannot grow without limit; a worker staler than the retained
    #: window is caught up with a full snapshot instead.
    HISTORY_LIMIT = 512

    def batches_since(self, version: int) -> "List[Tuple[int, MutationBatch]] | None":
        """The committed ``(version, batch)`` suffix after ``version``.

        Returns every batch needed to roll a copy of this graph forward
        from ``version`` to :attr:`version`, in commit order — the
        coordinator side of the CATCHUP protocol.  Returns an empty
        list when ``version`` is already current, and None when the
        suffix is not fully retained (the history window rolled past
        it, or ``version`` is ahead of this graph) — the caller falls
        back to shipping a snapshot.
        """
        if version == self.version:
            return []
        if version > self.version:
            return None
        suffix = [
            entry for entry in self._history if entry[0] > version
        ]
        if not suffix or suffix[0][0] != version + 1:
            return None
        return suffix

    # ------------------------------------------------------------------
    # Hypergraph read interface (live state only)
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of *live* hyperedges."""
        return self._live

    @property
    def labels(self) -> Tuple[Label, ...]:
        return tuple(self._labels)

    @property
    def edges(self) -> Tuple[FrozenSet[int], ...]:
        """Live hyperedges in ascending edge-id order.

        Positions here are *not* edge ids once anything was deleted;
        use :meth:`edge` for id-addressed access.
        """
        return tuple(edge for edge in self._slots if edge is not None)

    def label(self, vertex: int) -> Label:
        return self._labels[vertex]

    def _live_slot(self, edge_id: int) -> FrozenSet[int]:
        try:
            edge = self._slots[edge_id]
        except IndexError:
            raise HypergraphError(f"unknown edge id {edge_id}") from None
        if edge is None:
            raise HypergraphError(f"edge {edge_id} has been deleted")
        return edge

    def edge(self, edge_id: int) -> FrozenSet[int]:
        return self._live_slot(edge_id)

    def edge_signature(self, edge_id: int) -> Signature:
        self._live_slot(edge_id)
        return self._slot_signatures[edge_id]

    def edge_signatures(self) -> Tuple[Signature, ...]:
        """Signatures of live edges, ascending edge-id order."""
        return tuple(
            self._slot_signatures[edge_id]
            for edge_id, edge in enumerate(self._slots)
            if edge is not None
        )

    @property
    def is_edge_labelled(self) -> bool:
        return self._edge_labelled

    def edge_label(self, edge_id: int) -> "Label | None":
        self._live_slot(edge_id)
        return self._slot_labels[edge_id]

    def edge_id(
        self, vertices: Iterable[int], label: "Label | None" = None
    ) -> int:
        edge = frozenset(vertices)
        if self._edge_labelled and label is None:
            raise HypergraphError(
                "edge lookups on an edge-labelled hypergraph require the "
                "edge label"
            )
        return self._edge_lookup[self._lookup_key(edge, label)]

    def has_edge(
        self, vertices: Iterable[int], label: "Label | None" = None
    ) -> bool:
        edge = frozenset(vertices)
        if self._edge_labelled and label is None:
            raise HypergraphError(
                "edge lookups on an edge-labelled hypergraph require the "
                "edge label"
            )
        return self._lookup_key(edge, label) in self._edge_lookup

    def incident_edges(self, vertex: int) -> Tuple[int, ...]:
        return tuple(self._incidence[vertex])

    def degree(self, vertex: int) -> int:
        return len(self._incidence[vertex])

    def arity(self, edge_id: int) -> int:
        return len(self._live_slot(edge_id))

    def incident_edges_with_arity(
        self, vertex: int, arity: int
    ) -> Tuple[int, ...]:
        return tuple(
            edge_id
            for edge_id in self._incidence[vertex]
            if len(self._slots[edge_id]) == arity
        )

    def adjacent_vertices(self, vertex: int) -> FrozenSet[int]:
        neighbours: Set[int] = set()
        for edge_id in self._incidence[vertex]:
            neighbours.update(self._slots[edge_id])
        neighbours.discard(vertex)
        return frozenset(neighbours)

    def adjacent_edges(self, edge_id: int) -> FrozenSet[int]:
        neighbours: Set[int] = set()
        for vertex in self._live_slot(edge_id):
            neighbours.update(self._incidence[vertex])
        neighbours.discard(edge_id)
        return frozenset(neighbours)

    def average_arity(self) -> float:
        if not self._live:
            return 0.0
        return (
            sum(len(edge) for edge in self._slots if edge is not None)
            / self._live
        )

    def max_arity(self) -> int:
        if not self._live:
            return 0
        return max(
            len(edge) for edge in self._slots if edge is not None
        )

    def label_alphabet(self) -> FrozenSet[Label]:
        return frozenset(self._labels)

    def is_connected(self) -> bool:
        if self.num_vertices == 0:
            return True
        visited = {0}
        frontier = [0]
        while frontier:
            vertex = frontier.pop()
            for edge_id in self._incidence[vertex]:
                for other in self._slots[edge_id]:
                    if other not in visited:
                        visited.add(other)
                        frontier.append(other)
        return len(visited) == self.num_vertices

    def induced_by_edges(self, edge_ids: Iterable[int]) -> Hypergraph:
        edge_ids = list(edge_ids)
        slots = [self._live_slot(edge_id) for edge_id in edge_ids]
        vertices = sorted({v for edge in slots for v in edge})
        renumber = {old: new for new, old in enumerate(vertices)}
        labels = [self._labels[old] for old in vertices]
        edges = [[renumber[v] for v in edge] for edge in slots]
        edge_labels = (
            [self._slot_labels[edge_id] for edge_id in edge_ids]
            if self._edge_labelled
            else None
        )
        return Hypergraph(labels, edges, edge_labels=edge_labels)

    def to_hypergraph(self) -> Hypergraph:
        """Freeze the live content into an immutable graph.

        Edge ids are *renumbered dense* — this is the from-scratch
        rebuild the differential oracle compares against, equivalent to
        re-loading the graph's native-text dump.
        """
        live_labels = (
            [
                self._slot_labels[edge_id]
                for edge_id, edge in enumerate(self._slots)
                if edge is not None
            ]
            if self._edge_labelled
            else None
        )
        return Hypergraph(
            self._labels,
            [edge for edge in self._slots if edge is not None],
            edge_labels=live_labels,
        )

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[FrozenSet[int]]:
        return (edge for edge in self._slots if edge is not None)

    def __len__(self) -> int:
        return self._live

    def _edge_identity(self) -> FrozenSet[object]:
        if not self._edge_labelled:
            return frozenset(
                edge for edge in self._slots if edge is not None
            )
        return frozenset(
            (edge, self._slot_labels[edge_id])
            for edge_id, edge in enumerate(self._slots)
            if edge is not None
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (Hypergraph, DynamicHypergraph)):
            return NotImplemented
        return (
            tuple(self._labels) == other.labels
            and self._edge_identity() == other._edge_identity()
        )

    def __hash__(self) -> int:
        return hash((tuple(self._labels), self._edge_identity()))

    def __getstate__(self):
        """Pickle without the catch-up history.

        Shipped copies (worker spawns, CATCHUP snapshots) only need the
        graph state itself: the receiving side is the *target* of
        catch-up, never a source, and the history can be the biggest
        part of a long-lived graph's footprint.
        """
        state = dict(self.__dict__)
        state["_history"] = []
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        if "_history" not in state:  # pragma: no cover - older pickles
            self._history = []

    def __repr__(self) -> str:
        return (
            f"DynamicHypergraph(|V|={self.num_vertices}, "
            f"|E|={self.num_edges}, slots={self.num_slots}, "
            f"v{self.version})"
        )


def group_live_edges_by_signature(graph) -> Dict[Signature, List[int]]:
    """Live edge ids grouped by signature, ascending within each group.

    Identical to :func:`repro.hypergraph.storage.group_edges_by_signature`
    for immutable graphs; on a :class:`DynamicHypergraph` it skips
    tombstones.  (Kept here to avoid an import cycle; the storage module
    re-exports the canonical entry point.)
    """
    live = getattr(graph, "live_edge_ids", None)
    edge_ids = live() if live is not None else range(graph.num_edges)
    grouped: Dict[Signature, List[int]] = {}
    for edge_id in edge_ids:
        grouped.setdefault(graph.edge_signature(edge_id), []).append(edge_id)
    return grouped


def group_rows_by_signature(graph) -> Dict[Signature, List[int]]:
    """The row layout: all edge slots per signature, ascending.

    For an immutable :class:`Hypergraph` this equals the live grouping
    (there are no tombstones); for a :class:`DynamicHypergraph` it
    includes tombstoned slots, which hold their row so that later rows
    never shift.  Shards cut ranges over THESE rows.
    """
    rows = getattr(graph, "rows_by_signature", None)
    if rows is not None:
        return rows()
    return group_live_edges_by_signature(graph)
