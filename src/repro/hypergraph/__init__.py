"""Hypergraph substrate: data model, storage, indexing, I/O and sampling.

This package implements everything HGMatch needs below the matching
algorithms: the labelled hypergraph model (Definition III.1), hyperedge
signatures (Definition IV.1), signature-partitioned hyperedge tables
(Section IV-B), the inverted hyperedge index (Section IV-C), text
serialisation, synthetic generators and the paper's random-walk query
sampler (Section VII-A).
"""

from .dynamic import (
    DynamicHypergraph,
    EdgeMutation,
    MutationBatch,
    MutationResult,
    group_live_edges_by_signature,
    group_rows_by_signature,
)
from .hypergraph import Hypergraph, HypergraphBuilder
from .index import (
    ARRAY_CONTAINER_MAX,
    CHUNK_BITS,
    INDEX_BACKENDS,
    AdaptiveHyperedgeIndex,
    BitsetHyperedgeIndex,
    InvertedHyperedgeIndex,
    build_index,
    chunks_count,
    chunks_from_rows,
    chunks_intersect,
    chunks_union_many,
    index_from_postings,
    intersect_many,
    intersect_sorted,
    mask_from_chunks,
    union_many,
    union_sorted,
)
from .sharding import (
    SHARDING_MODES,
    RangeTable,
    ReplicaSet,
    ShardDescriptor,
    ShardedStore,
    StoreShard,
    balanced_range_table,
    build_range_table,
    mutate_range_table,
    range_table_label,
    range_table_slices,
    rebalance_range_table,
    resolve_sharding,
    shard_grouping,
    shard_ranges,
    uniform_range_table,
    weighted_shard_ranges,
)
from .sampling import (
    PAPER_QUERY_SETTINGS,
    QuerySetting,
    query_setting,
    sample_queries,
    sample_query,
)
from .signature import (
    Signature,
    is_sub_signature,
    signature_arity,
    signature_label_counts,
    signature_of_labels,
)
from .journal import MutationJournal, RecoveredState
from .persistence import load_store, save_store, stores_equal
from .statistics import DatasetStatistics, dataset_statistics, format_bytes
from .storage import (
    HyperedgePartition,
    PartitionedStore,
    default_index_backend,
    resolve_index_backend,
)

__all__ = [
    "DynamicHypergraph",
    "EdgeMutation",
    "MutationBatch",
    "MutationResult",
    "group_live_edges_by_signature",
    "group_rows_by_signature",
    "mutate_range_table",
    "shard_grouping",
    "MutationJournal",
    "RecoveredState",
    "Hypergraph",
    "HypergraphBuilder",
    "InvertedHyperedgeIndex",
    "BitsetHyperedgeIndex",
    "AdaptiveHyperedgeIndex",
    "INDEX_BACKENDS",
    "ARRAY_CONTAINER_MAX",
    "CHUNK_BITS",
    "default_index_backend",
    "resolve_index_backend",
    "build_index",
    "index_from_postings",
    "chunks_count",
    "chunks_from_rows",
    "chunks_intersect",
    "chunks_union_many",
    "mask_from_chunks",
    "HyperedgePartition",
    "PartitionedStore",
    "ReplicaSet",
    "ShardDescriptor",
    "ShardedStore",
    "StoreShard",
    "SHARDING_MODES",
    "RangeTable",
    "shard_ranges",
    "weighted_shard_ranges",
    "uniform_range_table",
    "balanced_range_table",
    "build_range_table",
    "rebalance_range_table",
    "range_table_slices",
    "range_table_label",
    "resolve_sharding",
    "Signature",
    "signature_of_labels",
    "signature_arity",
    "signature_label_counts",
    "is_sub_signature",
    "intersect_sorted",
    "intersect_many",
    "union_sorted",
    "union_many",
    "QuerySetting",
    "PAPER_QUERY_SETTINGS",
    "query_setting",
    "sample_query",
    "sample_queries",
    "DatasetStatistics",
    "dataset_statistics",
    "format_bytes",
    "save_store",
    "load_store",
    "stores_equal",
]
