"""Durable mutation journal + snapshots: crash-consistent dynamic graphs.

PR 9 made the hypergraph mutable; this module makes the mutations
*survive*.  A :class:`MutationJournal` owns one directory holding three
kinds of artefact:

``mutations.log``
    An append-only binary log of committed
    :class:`~repro.hypergraph.dynamic.MutationBatch` es.  Each record is
    length-prefixed and CRC32-checksummed::

        u32 length | u32 crc32(body) | body

    (little-endian), where ``body`` is the canonical JSON
    ``{"batch": <MutationBatch.to_json()>, "version": <int>}``.  The
    file starts with the 9-byte magic ``b"HGJRNL 1\\n"``.  On open, a
    *torn* tail — a partial record, the expected residue of a crash
    mid-append — is truncated at the last good record boundary;
    corruption anywhere *before* the tail raises the typed
    :class:`~repro.errors.JournalCorruption` instead, because replaying
    past it would fabricate state.

``snapshot-<version>.snap``
    A periodic full snapshot so recovery is snapshot + replay-suffix
    rather than full replay.  The format reuses
    :func:`~repro.hypergraph.persistence.dump_store` for the dense live
    content and prefixes the tombstone/edge-id state of the
    :class:`~repro.hypergraph.dynamic.DynamicHypergraph` (dead slot ids
    with their signatures, the slot count, the version), which together
    reconstruct a *coordinate-identical* graph — same rows, same next
    edge id, same fingerprint.  Snapshots are written to a temp file,
    fsynced and atomically renamed, so a crash mid-snapshot leaves the
    previous one intact.

``standing.json``
    The registered standing queries (native query text + pinned order),
    rewritten atomically on every register/unregister and at drain, so
    a restarted daemon re-registers them against the recovered graph.

The fsync policy and snapshot cadence are knobs
(``REPRO_JOURNAL_FSYNC``, ``REPRO_JOURNAL_SNAPSHOT_INTERVAL``, plus
``REPRO_JOURNAL_DIR`` for the directory itself), validated at parse
time with typed errors naming the knob — the ``REPRO_NET_*`` idiom.
"""

from __future__ import annotations

import io
import json
import os
import re
import struct
import zlib
from typing import Dict, List, Optional, Tuple

from ..errors import HypergraphError, JournalCorruption, JournalError, ParseError
from .dynamic import DynamicHypergraph, MutationBatch
from .persistence import _decode_label, _encode_label, dump_store, parse_store
from .storage import PartitionedStore

#: First bytes of ``mutations.log``; anything else is not a journal.
JOURNAL_MAGIC = b"HGJRNL 1\n"

#: First line of a snapshot file.
SNAPSHOT_MAGIC = "HGDSNAP 1"

#: ``u32 length | u32 crc32`` — the per-record header, little-endian.
RECORD_HEADER = struct.Struct("<II")

#: Refuse records longer than this (a MutationBatch is tiny; anything
#: bigger is a corrupt length field, not a real record).
MAX_RECORD_BYTES = 1 << 26

#: Accepted values of the fsync policy knob.
FSYNC_POLICIES = ("always", "never")

#: Batches between automatic snapshots when the knob is unset.
DEFAULT_SNAPSHOT_INTERVAL = 64

JOURNAL_FILE = "mutations.log"
STANDING_FILE = "standing.json"

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d+)\.snap$")


# ----------------------------------------------------------------------
# Environment knobs (validated at parse time, errors name the knob)
# ----------------------------------------------------------------------


def default_journal_dir() -> "str | None":
    """``REPRO_JOURNAL_DIR``: the journal directory, or None if unset.

    Raises :class:`~repro.errors.JournalError` naming the knob when set
    to something unusable (empty, or an existing non-directory path).
    """
    value = os.environ.get("REPRO_JOURNAL_DIR")
    if value is None:
        return None
    value = value.strip()
    if not value:
        raise JournalError(
            "REPRO_JOURNAL_DIR must name a directory, got an empty string"
        )
    if os.path.exists(value) and not os.path.isdir(value):
        raise JournalError(
            f"REPRO_JOURNAL_DIR points at {value!r}, which exists but is "
            f"not a directory"
        )
    return value


def default_fsync_policy() -> str:
    """``REPRO_JOURNAL_FSYNC``: ``always`` (default) or ``never``."""
    value = os.environ.get("REPRO_JOURNAL_FSYNC")
    if value is None:
        return "always"
    policy = value.strip().lower()
    if policy not in FSYNC_POLICIES:
        raise JournalError(
            f"REPRO_JOURNAL_FSYNC must be one of {FSYNC_POLICIES}, "
            f"got {value!r}"
        )
    return policy


def default_snapshot_interval() -> int:
    """``REPRO_JOURNAL_SNAPSHOT_INTERVAL``: batches between snapshots."""
    value = os.environ.get("REPRO_JOURNAL_SNAPSHOT_INTERVAL")
    if value is None:
        return DEFAULT_SNAPSHOT_INTERVAL
    try:
        interval = int(value.strip())
    except ValueError:
        raise JournalError(
            f"REPRO_JOURNAL_SNAPSHOT_INTERVAL must be a positive "
            f"integer, got {value!r}"
        ) from None
    if interval < 1:
        raise JournalError(
            f"REPRO_JOURNAL_SNAPSHOT_INTERVAL must be >= 1, "
            f"got {interval}"
        )
    return interval


def _validate_fsync(policy: str) -> str:
    if policy not in FSYNC_POLICIES:
        raise JournalError(
            f"fsync policy must be one of {FSYNC_POLICIES}, got {policy!r}"
        )
    return policy


def _validate_interval(interval: int) -> int:
    if not isinstance(interval, int) or interval < 1:
        raise JournalError(
            f"snapshot interval must be a positive integer, "
            f"got {interval!r}"
        )
    return interval


# ----------------------------------------------------------------------
# Record codec
# ----------------------------------------------------------------------


def encode_record(version: int, batch: MutationBatch) -> bytes:
    """One journal record: length + CRC32 header, canonical JSON body."""
    body = json.dumps(
        {"batch": batch.to_json(), "version": version},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    return RECORD_HEADER.pack(len(body), zlib.crc32(body)) + body


def scan_journal(
    data: bytes, source: str = "journal"
) -> Tuple[List[Tuple[int, int, MutationBatch]], int]:
    """Parse raw journal bytes into committed records.

    Returns ``(records, valid_bytes)`` where each record is ``(offset,
    version, batch)`` and ``valid_bytes`` is the length of the longest
    committed prefix — everything after it is a torn tail the opener
    should truncate.  Raises
    :class:`~repro.errors.JournalCorruption` for damage that is *not* a
    torn tail: a bad magic, an implausible length field, a checksum or
    decode failure with valid-looking log after it, or a record whose
    version breaks the committed sequence.
    """
    if not data:
        return [], 0
    if not data.startswith(JOURNAL_MAGIC):
        if len(data) < len(JOURNAL_MAGIC) and JOURNAL_MAGIC.startswith(data):
            return [], 0  # torn during creation: no records were lost
        raise JournalCorruption(
            f"{source} does not start with the journal magic "
            f"{JOURNAL_MAGIC!r}: not a mutation journal"
        )
    offset = len(JOURNAL_MAGIC)
    records: List[Tuple[int, int, MutationBatch]] = []
    previous_version: "int | None" = None
    while offset < len(data):
        start = offset
        if len(data) - offset < RECORD_HEADER.size:
            return records, start  # torn mid-header
        length, crc = RECORD_HEADER.unpack_from(data, offset)
        offset += RECORD_HEADER.size
        if not 0 < length <= MAX_RECORD_BYTES:
            raise JournalCorruption(
                f"{source}: implausible record length {length} at byte "
                f"{start} — a torn write leaves a short record, never a "
                f"garbled header"
            )
        if len(data) - offset < length:
            return records, start  # torn mid-body
        body = bytes(data[offset:offset + length])
        offset += length
        if zlib.crc32(body) != crc:
            if offset == len(data):
                return records, start  # corrupt tail record: drop it
            raise JournalCorruption(
                f"{source}: checksum mismatch at byte {start} with "
                f"{len(data) - offset} bytes of log after it — "
                f"mid-log corruption, refusing to replay past it"
            )
        try:
            payload = json.loads(body.decode("utf-8"))
            version = payload["version"]
            batch = MutationBatch.from_json(payload["batch"])
            if not isinstance(version, int):
                raise TypeError("version must be an integer")
        except Exception as exc:
            raise JournalCorruption(
                f"{source}: record at byte {start} passed its checksum "
                f"but does not decode ({exc}) — mid-log corruption"
            ) from None
        if previous_version is not None and version != previous_version + 1:
            raise JournalCorruption(
                f"{source}: record at byte {start} carries version "
                f"{version} after {previous_version} — the committed "
                f"sequence is broken"
            )
        previous_version = version
        records.append((start, version, batch))
    return records, offset


def read_journal(
    path: str,
) -> Tuple[List[Tuple[int, int, MutationBatch]], int]:
    """:func:`scan_journal` over a file; missing file = empty journal."""
    try:
        with open(path, "rb") as stream:
            data = stream.read()
    except FileNotFoundError:
        return [], 0
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    return scan_journal(data, source=path)


# ----------------------------------------------------------------------
# Snapshot codec
# ----------------------------------------------------------------------


def dump_snapshot(graph, stream) -> None:
    """Serialise ``graph`` (any Hypergraph/DynamicHypergraph) so that
    :func:`parse_snapshot` reconstructs a coordinate-identical
    :class:`DynamicHypergraph`.

    Layout: the ``HGDSNAP 1`` header with the dynamic extras (version,
    slot count, one ``d`` record per tombstone carrying the signature
    it still occupies in the row layout), followed by an embedded
    ``HGSTORE`` dump (:func:`~repro.hypergraph.persistence.dump_store`)
    of the dense live content.
    """
    dynamic = (
        graph
        if isinstance(graph, DynamicHypergraph)
        else DynamicHypergraph.from_hypergraph(graph)
    )
    stream.write(SNAPSHOT_MAGIC + "\n")
    stream.write(f"version {dynamic.version}\n")
    stream.write(f"slots {dynamic.num_slots}\n")
    for slot in range(dynamic.num_slots):
        if dynamic.slot_vertices(slot) is None:
            tokens = " ".join(
                _encode_label(part)
                for part in dynamic._slot_signatures[slot]
            )
            stream.write(f"d {slot} {tokens}\n")
    # The embedded store is built with the deterministic merge backend:
    # the on-disk posting lists are backend-neutral (parse_store
    # materialises whichever backend the reader asks for).
    dump_store(PartitionedStore(dynamic.to_hypergraph(), "merge"), stream)


def parse_snapshot(stream, source: str = "snapshot") -> DynamicHypergraph:
    """Reconstruct the dynamic graph a snapshot froze.

    Raises :class:`~repro.errors.JournalCorruption` on any structural
    or parse failure — a snapshot is all-or-nothing (it is written to a
    temp file and atomically renamed, so a damaged one is corruption,
    never an expected torn state).
    """
    text = stream.read()
    lines = text.splitlines()
    if not lines or lines[0].strip() != SNAPSHOT_MAGIC:
        raise JournalCorruption(
            f"{source} is not a graph snapshot (header "
            f"{lines[0]!r} != {SNAPSHOT_MAGIC!r})"
            if lines
            else f"{source} is empty"
        )
    version: "int | None" = None
    num_slots: "int | None" = None
    dead: Dict[int, Tuple[object, ...]] = {}
    store_start: "int | None" = None
    try:
        for line_no, raw in enumerate(lines[1:], start=2):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "version":
                version = int(parts[1])
            elif parts[0] == "slots":
                num_slots = int(parts[1])
            elif parts[0] == "d":
                dead[int(parts[1])] = tuple(
                    _decode_label(token) for token in parts[2:]
                )
            else:
                store_start = line_no - 1
                break
    except (IndexError, ValueError, ParseError) as exc:
        raise JournalCorruption(
            f"{source}: malformed snapshot header record ({exc})"
        ) from None
    if version is None or num_slots is None or store_start is None:
        raise JournalCorruption(
            f"{source}: snapshot header is missing its version/slots "
            f"records or the embedded store"
        )
    try:
        store = parse_store(
            io.StringIO("\n".join(lines[store_start:]) + "\n"),
            index_backend="merge",
        )
        return DynamicHypergraph.from_slot_state(
            store.graph, num_slots=num_slots, dead=dead, version=version
        )
    except (ParseError, HypergraphError) as exc:
        raise JournalCorruption(
            f"{source}: snapshot fails its integrity checks ({exc})"
        ) from None


# ----------------------------------------------------------------------
# Recovery result
# ----------------------------------------------------------------------


class RecoveredState:
    """What :meth:`MutationJournal.recover` reconstructed."""

    __slots__ = ("graph", "version", "snapshot_version", "replayed")

    def __init__(self, graph, version, snapshot_version, replayed) -> None:
        self.graph = graph
        self.version = version
        self.snapshot_version = snapshot_version
        self.replayed = replayed

    def __repr__(self) -> str:
        return (
            f"RecoveredState(v{self.version}, snapshot="
            f"v{self.snapshot_version}, replayed={self.replayed})"
        )


class MutationJournal:
    """One durable journal directory: log + snapshots + standing set.

    Lifecycle: construct with a directory (defaults to
    ``REPRO_JOURNAL_DIR``), then either :meth:`recover` a previous
    run's state or :meth:`attach` to a live graph (a fresh directory
    gets a base snapshot so it is self-contained from the first
    record).  :meth:`append` is called inside the service's commit
    barrier — before the batch is broadcast to any pool — so the log
    is always at least as current as any worker.
    """

    def __init__(
        self,
        directory: "str | None" = None,
        *,
        fsync: "str | None" = None,
        snapshot_interval: "int | None" = None,
    ) -> None:
        if directory is None:
            directory = default_journal_dir()
            if directory is None:
                raise JournalError(
                    "no journal directory: pass one explicitly or set "
                    "REPRO_JOURNAL_DIR"
                )
        self.directory = os.fspath(directory)
        self.fsync_policy = (
            default_fsync_policy() if fsync is None else _validate_fsync(fsync)
        )
        self.snapshot_interval = (
            default_snapshot_interval()
            if snapshot_interval is None
            else _validate_interval(snapshot_interval)
        )
        try:
            os.makedirs(self.directory, exist_ok=True)
        except OSError as exc:
            raise JournalError(
                f"cannot create journal directory "
                f"{self.directory!r}: {exc}"
            ) from exc
        self._handle = None
        self._since_snapshot = 0
        #: Version of the last appended (or attached) record.
        self.last_version: "int | None" = None

    # -- paths -----------------------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, JOURNAL_FILE)

    @property
    def standing_path(self) -> str:
        return os.path.join(self.directory, STANDING_FILE)

    def snapshot_path(self, version: int) -> str:
        return os.path.join(self.directory, f"snapshot-{version:012d}.snap")

    def snapshot_versions(self) -> List[int]:
        """Versions with an on-disk snapshot, ascending."""
        versions = []
        for name in os.listdir(self.directory):
            match = _SNAPSHOT_RE.match(name)
            if match is not None:
                versions.append(int(match.group(1)))
        return sorted(versions)

    # -- recovery --------------------------------------------------------

    def recover(self) -> "RecoveredState | None":
        """Reconstruct the graph at the last committed version.

        Snapshot + replay-suffix: load the newest readable snapshot,
        then replay every journal record past its version.  Returns
        None when the directory holds no state at all (a fresh
        directory); raises :class:`~repro.errors.JournalCorruption`
        when the log is damaged beyond its torn tail, the replay
        sequence has a gap, or no snapshot survives to anchor existing
        records.
        """
        records, _valid = read_journal(self.journal_path)
        snapshots = self.snapshot_versions()
        if not snapshots and not records:
            return None
        base: "DynamicHypergraph | None" = None
        base_version = -1
        errors: List[str] = []
        for version in reversed(snapshots):
            path = self.snapshot_path(version)
            try:
                with open(path, "r", encoding="utf-8") as stream:
                    base = parse_snapshot(stream, source=path)
            except (OSError, JournalCorruption) as exc:
                # An older snapshot plus a longer replay still recovers
                # exactly; only give up when none survives.
                errors.append(str(exc))
                continue
            if base.version != version:
                errors.append(
                    f"{path} claims version {version} but decodes to "
                    f"v{base.version}"
                )
                base = None
                continue
            base_version = version
            break
        if base is None:
            detail = "; ".join(errors) if errors else "no snapshot on disk"
            raise JournalCorruption(
                f"journal at {self.directory} has {len(records)} "
                f"record(s) but no usable base snapshot ({detail})"
            )
        replayed = 0
        for _offset, version, batch in records:
            if version <= base_version:
                continue
            if version != base.version + 1:
                raise JournalCorruption(
                    f"journal at {self.directory}: replay needs version "
                    f"{base.version + 1} next but the log holds "
                    f"{version} — the suffix after snapshot "
                    f"v{base_version} has a gap"
                )
            base.apply(batch)
            replayed += 1
        return RecoveredState(base, base.version, base_version, replayed)

    # -- appending -------------------------------------------------------

    def attach(self, graph) -> None:
        """Open the log for appends at ``graph``'s current version.

        A fresh directory gets a base snapshot of ``graph`` first, so
        recovery never needs state from outside the directory.  A
        non-fresh directory must already be *at* the graph's version
        (i.e. the graph came from :meth:`recover`); attaching a stale
        or foreign graph raises :class:`~repro.errors.JournalError`
        rather than silently forking history.  Truncates any torn tail
        left by a previous crash.
        """
        if self._handle is not None:
            raise JournalError("journal is already attached")
        records, valid = read_journal(self.journal_path)
        snapshots = self.snapshot_versions()
        version = getattr(graph, "version", 0)
        if not records and not snapshots:
            self.write_snapshot(graph)
        else:
            last = records[-1][1] if records else 0
            if snapshots:
                last = max(last, snapshots[-1])
            if last != version:
                raise JournalError(
                    f"journal at {self.directory} is at version {last} "
                    f"but the engine graph is at {version}; recover() "
                    f"from the journal (or point it at a fresh "
                    f"directory) instead of attaching"
                )
        try:
            exists = os.path.exists(self.journal_path)
            handle = open(self.journal_path, "ab")
            if not exists:
                handle.write(JOURNAL_MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
            elif handle.tell() > max(valid, len(JOURNAL_MAGIC)):
                # Torn tail from a crash mid-append: cut it off.
                handle.truncate(max(valid, len(JOURNAL_MAGIC)))
        except OSError as exc:
            raise JournalError(
                f"cannot open journal {self.journal_path}: {exc}"
            ) from exc
        self._handle = handle
        self.last_version = version
        self._since_snapshot = 0

    @property
    def attached(self) -> bool:
        return self._handle is not None

    def append(self, version: int, batch: MutationBatch) -> None:
        """Log one committed batch; honours the fsync policy."""
        if self._handle is None:
            raise JournalError("journal is not attached")
        if self.last_version is not None and version != self.last_version + 1:
            raise JournalError(
                f"non-contiguous journal append: version {version} "
                f"after {self.last_version}"
            )
        try:
            self._handle.write(encode_record(version, batch))
            self._handle.flush()
            if self.fsync_policy == "always":
                os.fsync(self._handle.fileno())
        except OSError as exc:
            raise JournalError(
                f"journal append failed at version {version}: {exc}"
            ) from exc
        self.last_version = version
        self._since_snapshot += 1

    def sync(self) -> None:
        """Flush and fsync the log regardless of the fsync policy."""
        if self._handle is None:
            return
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except (OSError, ValueError) as exc:
            raise JournalError(f"journal fsync failed: {exc}") from exc

    def close(self) -> None:
        """Sync and release the log handle.  Idempotent."""
        handle, self._handle = self._handle, None
        if handle is None:
            return
        try:
            handle.flush()
            os.fsync(handle.fileno())
        except (OSError, ValueError):  # pragma: no cover - best effort
            pass
        finally:
            handle.close()

    # -- snapshots -------------------------------------------------------

    def maybe_snapshot(self, graph) -> bool:
        """Write a snapshot when the cadence says so; True if written."""
        if self._since_snapshot < self.snapshot_interval:
            return False
        self.write_snapshot(graph)
        return True

    def write_snapshot(self, graph, keep: int = 2) -> str:
        """Write ``graph`` as a snapshot, atomically; prune old ones.

        Temp-file + fsync + rename, so a crash mid-write can never
        damage an existing snapshot.  The newest ``keep`` snapshots
        are retained (an extra one guards against a just-written
        snapshot being lost with its directory entry on some
        filesystems); older ones are deleted best-effort.
        """
        version = getattr(graph, "version", 0)
        path = self.snapshot_path(version)
        tmp = path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as stream:
                dump_snapshot(graph, stream)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp, path)
            directory_fd = os.open(self.directory, os.O_RDONLY)
            try:
                os.fsync(directory_fd)
            finally:
                os.close(directory_fd)
        except OSError as exc:
            raise JournalError(
                f"cannot write snapshot {path}: {exc}"
            ) from exc
        self._since_snapshot = 0
        for old in self.snapshot_versions()[:-keep]:
            try:
                os.remove(self.snapshot_path(old))
            except OSError:  # pragma: no cover - best effort
                pass
        return path

    # -- standing queries ------------------------------------------------

    def save_standing(self, entries: List[dict]) -> None:
        """Persist the standing-query registrations, atomically.

        ``entries`` is a list of structural query records —
        ``{"labels": [...], "edges": [[...], ...], "edge_labels":
        <list | None>, "order": <list | None>}`` — exactly what
        :meth:`load_standing` returns for re-registration on restart.
        """
        tmp = self.standing_path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as stream:
                json.dump(entries, stream, sort_keys=True)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp, self.standing_path)
        except OSError as exc:
            raise JournalError(
                f"cannot persist standing queries to "
                f"{self.standing_path}: {exc}"
            ) from exc

    def load_standing(self) -> List[dict]:
        """The persisted standing registrations ([] when none)."""
        try:
            with open(self.standing_path, "r", encoding="utf-8") as stream:
                entries = json.load(stream)
        except FileNotFoundError:
            return []
        except OSError as exc:
            raise JournalError(
                f"cannot read standing queries from "
                f"{self.standing_path}: {exc}"
            ) from exc
        except ValueError as exc:
            raise JournalCorruption(
                f"{self.standing_path} is not valid JSON ({exc})"
            ) from None
        if not isinstance(entries, list) or not all(
            isinstance(entry, dict)
            and "labels" in entry
            and "edges" in entry
            for entry in entries
        ):
            raise JournalCorruption(
                f"{self.standing_path} does not hold a standing-query "
                f"list"
            )
        return entries

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "MutationJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"MutationJournal({self.directory!r}, "
            f"fsync={self.fsync_policy!r}, "
            f"snapshot_interval={self.snapshot_interval}, "
            f"last_version={self.last_version})"
        )
