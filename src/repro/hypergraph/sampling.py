"""Random-walk query sampling (Section VII-A of the paper).

The paper generates query hypergraphs by random walks over the data
hypergraph: starting from a random hyperedge, repeatedly move to a
hyperedge adjacent to the already-collected region until the requested
number of hyperedges is gathered, subject to bounds on the total vertex
count.  Because a query is an actual sub-hypergraph of the data, it is
guaranteed to have at least one embedding.

:class:`QuerySetting` mirrors one row of Table III (``q2``/``q3``/``q4``/
``q6``) and :func:`sample_queries` produces the twenty random queries per
setting used throughout the evaluation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set

from ..errors import QueryError
from .hypergraph import Hypergraph


@dataclass(frozen=True)
class QuerySetting:
    """One query class from Table III.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"q3"``.
    num_edges:
        Number of hyperedges in each sampled query (``|E|``).
    min_vertices / max_vertices:
        Inclusive bounds on the query's vertex count.
    """

    name: str
    num_edges: int
    min_vertices: int
    max_vertices: int


#: The four query settings of Table III.
PAPER_QUERY_SETTINGS = (
    QuerySetting("q2", num_edges=2, min_vertices=5, max_vertices=15),
    QuerySetting("q3", num_edges=3, min_vertices=10, max_vertices=20),
    QuerySetting("q4", num_edges=4, min_vertices=10, max_vertices=30),
    QuerySetting("q6", num_edges=6, min_vertices=15, max_vertices=35),
)


def query_setting(name: str) -> QuerySetting:
    """Look up a paper query setting by name (``q2``, ``q3``, ``q4``, ``q6``)."""
    for setting in PAPER_QUERY_SETTINGS:
        if setting.name == name:
            return setting
    raise QueryError(f"unknown query setting {name!r}")


def sample_query(
    data: Hypergraph,
    setting: QuerySetting,
    rng: random.Random,
    max_attempts: int = 2000,
) -> Hypergraph:
    """Sample one connected query hypergraph per the paper's procedure.

    Performs a hyperedge-level random walk: start at a uniformly random
    hyperedge, then repeatedly append a random hyperedge adjacent to the
    collected region.  A walk is accepted when it reaches
    ``setting.num_edges`` distinct hyperedges with a total vertex count in
    ``[min_vertices, max_vertices]``; otherwise it is retried.

    Raises :class:`QueryError` if no valid query is found within
    ``max_attempts`` walks (e.g. the data hypergraph is too small or its
    arities cannot satisfy the vertex bounds).
    """
    if data.num_edges == 0:
        raise QueryError("cannot sample queries from an empty hypergraph")
    for _ in range(max_attempts):
        walk = _random_edge_walk(data, setting.num_edges, rng)
        if walk is None:
            continue
        vertices: Set[int] = set()
        for edge_id in walk:
            vertices.update(data.edge(edge_id))
        if setting.min_vertices <= len(vertices) <= setting.max_vertices:
            query = data.induced_by_edges(walk)
            if query.num_edges == setting.num_edges:
                return query
    raise QueryError(
        f"failed to sample a {setting.name} query "
        f"({setting.num_edges} edges, |V| in "
        f"[{setting.min_vertices}, {setting.max_vertices}]) "
        f"after {max_attempts} attempts"
    )


def _random_edge_walk(
    data: Hypergraph, length: int, rng: random.Random
) -> Optional[List[int]]:
    """One random walk collecting ``length`` distinct, connected hyperedges.

    Returns None when the walk gets stuck (no unvisited adjacent edge).
    """
    start = rng.randrange(data.num_edges)
    collected = [start]
    collected_set = {start}
    region_vertices: Set[int] = set(data.edge(start))
    while len(collected) < length:
        frontier: List[int] = []
        for vertex in region_vertices:
            for edge_id in data.incident_edges(vertex):
                if edge_id not in collected_set:
                    frontier.append(edge_id)
        if not frontier:
            return None
        nxt = rng.choice(frontier)
        collected.append(nxt)
        collected_set.add(nxt)
        region_vertices.update(data.edge(nxt))
    return collected


def sample_queries(
    data: Hypergraph,
    setting: QuerySetting,
    count: int,
    rng: random.Random,
    max_attempts_each: int = 2000,
) -> List[Hypergraph]:
    """Sample ``count`` queries for one setting (paper uses ``count=20``).

    Queries that cannot be sampled (tiny datasets may not support every
    setting) are skipped after exhausting their attempt budget, so the
    result can be shorter than ``count``; the bench harness records how
    many were produced.
    """
    queries: List[Hypergraph] = []
    failures = 0
    while len(queries) < count and failures < 3:
        try:
            queries.append(
                sample_query(data, setting, rng, max_attempts=max_attempts_each)
            )
        except QueryError:
            failures += 1
    return queries
