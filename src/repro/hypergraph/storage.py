"""Signature-partitioned hyperedge tables (Section IV-B, Table I).

HGMatch stores the data hypergraph as one *hyperedge table* per distinct
hyperedge signature.  Searching the candidates of a query hyperedge then
only scans the single partition whose signature matches, and the
cardinality statistic used by the matching-order heuristic
(Definition V.2) is simply the row count of that table — an O(1) lookup.

Each partition also carries the inverted hyperedge index of Section IV-C,
built by :mod:`repro.hypergraph.index`.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Tuple

from .dynamic import (
    MutationResult,
    group_live_edges_by_signature,
    group_rows_by_signature,
)
from .hypergraph import Hypergraph
from .index import INDEX_BACKENDS, build_index
from .signature import Signature


def group_edges_by_signature(
    graph: Hypergraph,
) -> "Dict[Signature, List[int]]":
    """Live edge ids grouped by signature, ascending within each group.

    The canonical partition layout: :class:`PartitionedStore` and the
    row-range sharding in :mod:`repro.hypergraph.sharding` both build
    from this one function, which is what makes a shard's global row
    coordinates (``row_base + local row``) line up with the global
    partition's rows — never reimplement the grouping independently.
    On a :class:`~repro.hypergraph.dynamic.DynamicHypergraph` this
    skips tombstoned slots; the *row layout* (which keeps tombstone
    rows allocated so later rows never shift) is the companion
    :func:`~repro.hypergraph.dynamic.group_rows_by_signature`.
    """
    return group_live_edges_by_signature(graph)


def default_index_backend() -> str:
    """The backend used when callers pass ``index_backend=None``.

    Resolved at call time from the ``REPRO_INDEX_BACKEND`` environment
    variable (falling back to ``"merge"``), so a whole process — the
    test suite under CI's backend matrix, a deployment — can be switched
    without touching call sites.
    """
    return os.environ.get("REPRO_INDEX_BACKEND") or "merge"


def resolve_index_backend(index_backend: "str | None") -> str:
    """Normalise an ``index_backend`` argument, validating the name."""
    backend = (
        default_index_backend() if index_backend is None else index_backend
    )
    if backend not in INDEX_BACKENDS:
        raise ValueError(
            f"unknown index backend {backend!r}; "
            f"expected one of {INDEX_BACKENDS}"
        )
    return backend


class HyperedgePartition:
    """One hyperedge table: all data hyperedges sharing a signature.

    Attributes
    ----------
    signature:
        The common signature ``S(e)`` of every hyperedge in the table.
    edge_ids:
        *Live* edge ids (into the owning hypergraph) in ascending
        order — what candidate scans and cardinality statistics see.
    index:
        The inverted hyperedge index over this partition — either
        backend from :mod:`repro.hypergraph.index`; its ``backend`` tag
        tells candidate generation which set-algebra path to take.
    row_ids:
        The partition's *row layout*: ALL edge slots (live +
        tombstoned) ascending.  Equal to ``edge_ids`` until something
        is deleted; row coordinates (shard ranges, wire masks, the
        index's row space) are positions in this tuple.
    """

    __slots__ = ("signature", "edge_ids", "index", "row_ids")

    def __init__(
        self,
        signature: Signature,
        edge_ids: Tuple[int, ...],
        index,
        row_ids: "Tuple[int, ...] | None" = None,
    ) -> None:
        self.signature = signature
        self.edge_ids = edge_ids
        self.index = index
        self.row_ids = edge_ids if row_ids is None else row_ids

    @property
    def cardinality(self) -> int:
        """Live row count of the table — ``Card(e, H)``."""
        return len(self.edge_ids)

    @property
    def num_rows(self) -> int:
        """Allocated rows (live + tombstoned) — the row-space width."""
        return len(self.row_ids)

    # -- incremental maintenance ---------------------------------------

    def append_edge(self, edge_id: int, vertices) -> None:
        """Append a freshly inserted edge at the row-layout tail.

        ``edge_id`` exceeds every id in the partition (dynamic ids are
        never reused), so both ``edge_ids`` and ``row_ids`` stay
        ascending by plain appends.
        """
        self.row_ids = self.row_ids + (edge_id,)
        self.edge_ids = self.edge_ids + (edge_id,)
        self.index.append_edge(edge_id, vertices)

    def remove_edge(self, local_row: int, edge_id: int, vertices) -> None:
        """Tombstone an edge: it leaves ``edge_ids`` (and the index's
        postings) but keeps its slot in ``row_ids``, so every later
        row keeps its coordinate."""
        ids = self.edge_ids
        position = bisect_left(ids, edge_id)
        self.edge_ids = ids[:position] + ids[position + 1:]
        self.index.remove_edge(local_row, edge_id, vertices)

    def incident_edges(self, vertex: int) -> Tuple[int, ...]:
        """``he(v, s)``: edges in this partition incident to ``vertex``.

        Returns the posting list from the inverted index (ascending edge
        ids), or an empty tuple when the vertex never occurs here.
        """
        return self.index.postings(vertex)

    def __len__(self) -> int:
        return len(self.edge_ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self.edge_ids)

    def __repr__(self) -> str:
        return f"HyperedgePartition(S={self.signature}, rows={len(self.edge_ids)})"


class PartitionedStore:
    """The complete partitioned storage layer over a data hypergraph.

    Building the store is the whole of HGMatch's offline preprocessing:
    group hyperedges by signature and build one inverted index per group.
    No auxiliary structure is ever built at query time.

    ``index_backend`` selects the posting-list representation for every
    partition: ``"merge"`` (sorted tuples + merge scans), ``"bitset"``
    (dense row-id bitmasks + bitwise algebra) or ``"adaptive"``
    (roaring-style chunked containers).  ``None`` defers to
    :func:`default_index_backend` (the ``REPRO_INDEX_BACKEND``
    environment variable, falling back to ``"merge"``).  All backends
    yield identical candidate sets; see :mod:`repro.hypergraph.index`.
    """

    def __init__(
        self, graph: Hypergraph, index_backend: "str | None" = None
    ) -> None:
        index_backend = resolve_index_backend(index_backend)
        self._graph = graph
        self.index_backend = index_backend
        grouped = group_rows_by_signature(graph)
        alive = getattr(graph, "is_live", None)

        self._partitions: Dict[Signature, HyperedgePartition] = {}
        for signature, rows in grouped.items():
            row_ids = tuple(rows)
            ids = (
                row_ids
                if alive is None
                else tuple(e for e in row_ids if alive(e))
            )
            index = build_index(index_backend, graph, row_ids)
            self._partitions[signature] = HyperedgePartition(
                signature, ids, index, row_ids
            )

    @property
    def graph(self) -> Hypergraph:
        """The underlying data hypergraph."""
        return self._graph

    def adopt_graph(self, graph) -> None:
        """Re-point the store at a content-identical graph.

        The promotion hook: an engine upgrading its immutable data
        graph to a :class:`~repro.hypergraph.dynamic.DynamicHypergraph`
        keeps the already-built partitions (edge ids and row layouts
        are preserved by the promotion) instead of rebuilding.
        """
        self._graph = graph

    def apply_mutation_result(self, result: MutationResult) -> None:
        """Incrementally maintain every touched partition.

        ``result`` comes from :meth:`~repro.hypergraph.dynamic.
        DynamicHypergraph.apply` on this store's own graph; each record
        carries the edge's global row, so only the touched partitions —
        and within the adaptive backend only the touched containers —
        are updated.  The outcome is structurally identical to
        rebuilding the store from the mutated graph (the mutation
        oracle pins this per backend).
        """
        for mutation in result.deleted:
            self._partitions[mutation.signature].remove_edge(
                mutation.row, mutation.edge_id, mutation.vertices
            )
        for mutation in result.inserted:
            partition = self._partitions.get(mutation.signature)
            if partition is None:
                index = build_index(self.index_backend, self._graph, ())
                partition = HyperedgePartition(mutation.signature, (), index, ())
                self._partitions[mutation.signature] = partition
            partition.append_edge(mutation.edge_id, mutation.vertices)

    @property
    def partitions(self) -> Mapping[Signature, HyperedgePartition]:
        """Mapping from signature to its partition (read-only view)."""
        return self._partitions

    def partition(self, signature: Signature) -> "HyperedgePartition | None":
        """The partition with the given signature, or None if absent."""
        return self._partitions.get(signature)

    def cardinality(self, signature: Signature) -> int:
        """``Card(e, H)`` for a query hyperedge with this signature (O(1))."""
        partition = self._partitions.get(signature)
        return partition.cardinality if partition is not None else 0

    def num_partitions(self) -> int:
        """Number of distinct signatures in the data hypergraph."""
        return len(self._partitions)

    def index_size_entries(self) -> int:
        """Total number of posting-list entries across all partitions.

        Each hyperedge contributes one entry per vertex it contains, so
        this equals the sum of arities — the O(a_H × |E(H)|) size bound of
        Section IV-C.  Reported (scaled by an entry-size constant) as the
        index size in the Fig. 7 benchmark.
        """
        return sum(
            partition.index.num_entries for partition in self._partitions.values()
        )

    def __repr__(self) -> str:
        return (
            f"PartitionedStore(partitions={len(self._partitions)}, "
            f"edges={self._graph.num_edges})"
        )
