"""Signature-partitioned hyperedge tables (Section IV-B, Table I).

HGMatch stores the data hypergraph as one *hyperedge table* per distinct
hyperedge signature.  Searching the candidates of a query hyperedge then
only scans the single partition whose signature matches, and the
cardinality statistic used by the matching-order heuristic
(Definition V.2) is simply the row count of that table — an O(1) lookup.

Each partition also carries the inverted hyperedge index of Section IV-C,
built by :mod:`repro.hypergraph.index`.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Mapping, Tuple

from .hypergraph import Hypergraph
from .index import INDEX_BACKENDS, build_index
from .signature import Signature


def group_edges_by_signature(
    graph: Hypergraph,
) -> "Dict[Signature, List[int]]":
    """Edge ids grouped by signature, ascending within each group.

    The canonical partition layout: :class:`PartitionedStore` and the
    row-range sharding in :mod:`repro.hypergraph.sharding` both build
    from this one function, which is what makes a shard's global row
    coordinates (``row_base + local row``) line up with the global
    partition's rows — never reimplement the grouping independently.
    """
    grouped: Dict[Signature, List[int]] = {}
    for edge_id in range(graph.num_edges):
        grouped.setdefault(graph.edge_signature(edge_id), []).append(edge_id)
    return grouped


def default_index_backend() -> str:
    """The backend used when callers pass ``index_backend=None``.

    Resolved at call time from the ``REPRO_INDEX_BACKEND`` environment
    variable (falling back to ``"merge"``), so a whole process — the
    test suite under CI's backend matrix, a deployment — can be switched
    without touching call sites.
    """
    return os.environ.get("REPRO_INDEX_BACKEND") or "merge"


def resolve_index_backend(index_backend: "str | None") -> str:
    """Normalise an ``index_backend`` argument, validating the name."""
    backend = (
        default_index_backend() if index_backend is None else index_backend
    )
    if backend not in INDEX_BACKENDS:
        raise ValueError(
            f"unknown index backend {backend!r}; "
            f"expected one of {INDEX_BACKENDS}"
        )
    return backend


class HyperedgePartition:
    """One hyperedge table: all data hyperedges sharing a signature.

    Attributes
    ----------
    signature:
        The common signature ``S(e)`` of every hyperedge in the table.
    edge_ids:
        Edge ids (into the owning hypergraph) in ascending order.
    index:
        The inverted hyperedge index over this partition — either
        backend from :mod:`repro.hypergraph.index`; its ``backend`` tag
        tells candidate generation which set-algebra path to take.
    """

    __slots__ = ("signature", "edge_ids", "index")

    def __init__(
        self,
        signature: Signature,
        edge_ids: Tuple[int, ...],
        index,
    ) -> None:
        self.signature = signature
        self.edge_ids = edge_ids
        self.index = index

    @property
    def cardinality(self) -> int:
        """Row count of the table — ``Card(e, H)`` for matching edges."""
        return len(self.edge_ids)

    def incident_edges(self, vertex: int) -> Tuple[int, ...]:
        """``he(v, s)``: edges in this partition incident to ``vertex``.

        Returns the posting list from the inverted index (ascending edge
        ids), or an empty tuple when the vertex never occurs here.
        """
        return self.index.postings(vertex)

    def __len__(self) -> int:
        return len(self.edge_ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self.edge_ids)

    def __repr__(self) -> str:
        return f"HyperedgePartition(S={self.signature}, rows={len(self.edge_ids)})"


class PartitionedStore:
    """The complete partitioned storage layer over a data hypergraph.

    Building the store is the whole of HGMatch's offline preprocessing:
    group hyperedges by signature and build one inverted index per group.
    No auxiliary structure is ever built at query time.

    ``index_backend`` selects the posting-list representation for every
    partition: ``"merge"`` (sorted tuples + merge scans), ``"bitset"``
    (dense row-id bitmasks + bitwise algebra) or ``"adaptive"``
    (roaring-style chunked containers).  ``None`` defers to
    :func:`default_index_backend` (the ``REPRO_INDEX_BACKEND``
    environment variable, falling back to ``"merge"``).  All backends
    yield identical candidate sets; see :mod:`repro.hypergraph.index`.
    """

    def __init__(
        self, graph: Hypergraph, index_backend: "str | None" = None
    ) -> None:
        index_backend = resolve_index_backend(index_backend)
        self._graph = graph
        self.index_backend = index_backend
        grouped = group_edges_by_signature(graph)

        self._partitions: Dict[Signature, HyperedgePartition] = {}
        for signature, edge_ids in grouped.items():
            ids = tuple(edge_ids)
            index = build_index(index_backend, graph, ids)
            self._partitions[signature] = HyperedgePartition(signature, ids, index)

    @property
    def graph(self) -> Hypergraph:
        """The underlying data hypergraph."""
        return self._graph

    @property
    def partitions(self) -> Mapping[Signature, HyperedgePartition]:
        """Mapping from signature to its partition (read-only view)."""
        return self._partitions

    def partition(self, signature: Signature) -> "HyperedgePartition | None":
        """The partition with the given signature, or None if absent."""
        return self._partitions.get(signature)

    def cardinality(self, signature: Signature) -> int:
        """``Card(e, H)`` for a query hyperedge with this signature (O(1))."""
        partition = self._partitions.get(signature)
        return partition.cardinality if partition is not None else 0

    def num_partitions(self) -> int:
        """Number of distinct signatures in the data hypergraph."""
        return len(self._partitions)

    def index_size_entries(self) -> int:
        """Total number of posting-list entries across all partitions.

        Each hyperedge contributes one entry per vertex it contains, so
        this equals the sum of arities — the O(a_H × |E(H)|) size bound of
        Section IV-C.  Reported (scaled by an entry-size constant) as the
        index size in the Fig. 7 benchmark.
        """
        return sum(
            partition.index.num_entries for partition in self._partitions.values()
        )

    def __repr__(self) -> str:
        return (
            f"PartitionedStore(partitions={len(self._partitions)}, "
            f"edges={self._graph.num_edges})"
        )
