"""The lightweight inverted hyperedge index (Section IV-C).

For a hyperedge table (one signature partition) the index maps every
vertex occurring in the table to the ascending posting list of hyperedge
ids incident to it.  With the index, ``he(v, S(e_q))`` — all incident
hyperedges of ``v`` having a given signature — is a constant-time lookup,
and candidate generation reduces to unions/intersections of posting lists.

Posting lists are plain sorted tuples of ints.  Set algebra over them is
provided by :func:`intersect_sorted` / :func:`union_sorted`, implemented
as classic merge scans (galloping is unnecessary at reproduction scale but
the merge keeps the cost model faithful: work is proportional to list
lengths, exactly the quantity the simulated executor charges).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .hypergraph import Hypergraph


class InvertedHyperedgeIndex:
    """Vertex → sorted posting list of incident edge ids, for one partition."""

    __slots__ = ("_postings",)

    def __init__(self, postings: Dict[int, Tuple[int, ...]]) -> None:
        self._postings = postings

    @classmethod
    def build(
        cls, graph: Hypergraph, edge_ids: Sequence[int]
    ) -> "InvertedHyperedgeIndex":
        """Build the index over ``edge_ids`` (must be ascending)."""
        postings: Dict[int, List[int]] = {}
        for edge_id in edge_ids:
            for vertex in graph.edge(edge_id):
                postings.setdefault(vertex, []).append(edge_id)
        return cls({vertex: tuple(plist) for vertex, plist in postings.items()})

    def postings(self, vertex: int) -> Tuple[int, ...]:
        """Posting list for ``vertex`` (empty tuple if absent)."""
        return self._postings.get(vertex, ())

    def vertices(self) -> Iterable[int]:
        """All vertices appearing in this partition."""
        return self._postings.keys()

    @property
    def num_entries(self) -> int:
        """Total posting entries (== sum of arities of indexed edges)."""
        return sum(len(plist) for plist in self._postings.values())

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._postings

    def __len__(self) -> int:
        return len(self._postings)


def intersect_sorted(first: Sequence[int], second: Sequence[int]) -> Tuple[int, ...]:
    """Intersection of two ascending sequences, returned ascending.

    >>> intersect_sorted((1, 3, 5, 7), (3, 4, 5))
    (3, 5)
    """
    result: List[int] = []
    i = j = 0
    len_first, len_second = len(first), len(second)
    while i < len_first and j < len_second:
        a, b = first[i], second[j]
        if a == b:
            result.append(a)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return tuple(result)


def intersect_many(lists: Sequence[Sequence[int]]) -> Tuple[int, ...]:
    """Intersection of several ascending sequences (shortest-first order).

    Intersecting the two shortest lists first keeps intermediate results
    small, the standard heuristic for multi-way intersection.
    An empty input sequence is a caller error (the neutral element of
    intersection is "everything"); callers guard against it.
    """
    if not lists:
        raise ValueError("intersect_many requires at least one list")
    ordered = sorted(lists, key=len)
    result: Sequence[int] = ordered[0]
    for other in ordered[1:]:
        if not result:
            break
        result = intersect_sorted(result, other)
    return tuple(result)


def union_sorted(first: Sequence[int], second: Sequence[int]) -> Tuple[int, ...]:
    """Union of two ascending sequences, returned ascending and deduplicated.

    >>> union_sorted((1, 3), (2, 3, 4))
    (1, 2, 3, 4)
    """
    result: List[int] = []
    i = j = 0
    len_first, len_second = len(first), len(second)
    while i < len_first and j < len_second:
        a, b = first[i], second[j]
        if a == b:
            result.append(a)
            i += 1
            j += 1
        elif a < b:
            result.append(a)
            i += 1
        else:
            result.append(b)
            j += 1
    result.extend(first[i:])
    result.extend(second[j:])
    return tuple(result)


def union_many(lists: Sequence[Sequence[int]]) -> Tuple[int, ...]:
    """Union of several ascending sequences (empty input yields empty)."""
    result: Tuple[int, ...] = ()
    for other in lists:
        result = union_sorted(result, other)
    return result
