"""The inverted hyperedge index (Section IV-C), in three backends.

For a hyperedge table (one signature partition) the index maps every
vertex occurring in the table to the posting list of hyperedge ids
incident to it.  With the index, ``he(v, S(e_q))`` — all incident
hyperedges of ``v`` having a given signature — is a constant-time lookup,
and candidate generation reduces to unions/intersections of posting lists.

Three interchangeable representations are provided:

``merge`` — :class:`InvertedHyperedgeIndex`
    Posting lists are plain sorted tuples of ints.  Set algebra over
    them is provided by :func:`intersect_sorted` / :func:`union_sorted`,
    implemented as classic merge scans (work proportional to list
    lengths, exactly the quantity the simulated executor charges).

``bitset`` — :class:`BitsetHyperedgeIndex`
    Each partition gets a dense row-id space ``0 .. rows-1`` (row ↔
    edge-id tables) and posting lists become Python big-int bitmasks
    over it.  Unions and intersections are then single ``|`` / ``&``
    operations executed at machine-word speed inside CPython's long
    arithmetic, instead of O(total postings) Python-level merge loops.
    Memory per posting mask is proportional to the *partition* size,
    not the posting count — fine at reproduction scale, wasteful for
    very large partitions with sparse vertices.

``adaptive`` — :class:`AdaptiveHyperedgeIndex`
    A roaring-bitmap-style compromise: the row space is split into
    fixed-width chunks of ``2**CHUNK_BITS`` rows, and each non-empty
    chunk of a posting set is stored either as a sorted tuple of local
    offsets (*array container*, sparse chunks) or as a bitmask over the
    chunk (*bitmask container*, dense chunks), chosen by cardinality
    against :data:`ARRAY_CONTAINER_MAX`.  ``|`` / ``&`` are implemented
    container-pairwise, so dense algebra stays at big-int speed while
    memory is bounded by actual postings rather than partition width.

All backends expose the same ``postings``/``postings_count``/
``vertices`` interface and decode to identical ascending edge-id tuples
at the API boundary.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from .hypergraph import Hypergraph

#: Names of the available index representations, in preference order of
#: the storage layer's default.
INDEX_BACKENDS: Tuple[str, ...] = ("merge", "bitset", "adaptive")

#: Row-space chunk width of the adaptive backend: each chunk covers
#: ``2**CHUNK_BITS`` partition rows.
CHUNK_BITS = 15
CHUNK_SIZE = 1 << CHUNK_BITS

#: Largest cardinality stored as an array container.  Beyond this a
#: chunk flips to a bitmask container.  CPython's big-int ``|``/``&``
#: run a C loop over 30-bit digits while array merges pay Python-level
#: per-element iteration, so the perf break-even sits far below
#: roaring's classic 4096: unions over containers of more than a
#: handful of entries are already cheaper as masks.  4 keeps the long
#: tail of genuinely sparse vertices as arrays — in power-law data
#: that tail is most of the vertex set, which is the memory win — and
#: puts every hot posting set on the big-int fast path.
ARRAY_CONTAINER_MAX = 4

#: A container is either a sorted tuple of local row offsets (array
#: container) or an int bitmask over the chunk (bitmask container); a
#: chunk map is ``{chunk index: container}`` with empty chunks absent.
ChunkMap = Dict[int, object]


def _slot_vertices(graph, edge_id: int):
    """Vertex set of an edge slot, or None for a tombstoned slot.

    The build paths iterate *row layouts* (all slots of a signature,
    live + tombstoned — see :func:`repro.hypergraph.dynamic.
    group_rows_by_signature`), so a dead slot must keep its row
    allocated while contributing no postings.  Immutable graphs have no
    tombstones and take the plain ``edge()`` path.
    """
    getter = getattr(graph, "slot_vertices", None)
    if getter is not None:
        return getter(edge_id)
    return graph.edge(edge_id)


class InvertedHyperedgeIndex:
    """Vertex → sorted posting list of incident edge ids, for one partition."""

    #: Backend tag consulted by candidate generation for dispatch.
    backend = "merge"

    __slots__ = ("_postings",)

    def __init__(self, postings: Dict[int, Tuple[int, ...]]) -> None:
        self._postings = postings

    @classmethod
    def build(
        cls, graph: Hypergraph, edge_ids: Sequence[int]
    ) -> "InvertedHyperedgeIndex":
        """Build the index over ``edge_ids`` (must be ascending)."""
        postings: Dict[int, List[int]] = {}
        for edge_id in edge_ids:
            vertices = _slot_vertices(graph, edge_id)
            if vertices is None:  # tombstoned slot: no postings
                continue
            for vertex in vertices:
                postings.setdefault(vertex, []).append(edge_id)
        return cls({vertex: tuple(plist) for vertex, plist in postings.items()})

    def append_edge(self, edge_id: int, vertices) -> None:
        """Incremental insert: ``edge_id`` must exceed every indexed id
        (fresh dynamic ids always do), so appending keeps every posting
        tuple ascending.  Tuples are replaced, never mutated — existing
        references (memoised unions, in-flight candidate sets) keep
        seeing the pre-mutation list."""
        postings = self._postings
        for vertex in vertices:
            existing = postings.get(vertex)
            postings[vertex] = (
                (edge_id,) if existing is None else existing + (edge_id,)
            )

    def remove_edge(self, row: int, edge_id: int, vertices) -> None:
        """Incremental delete: drop ``edge_id`` from its vertices'
        posting tuples (``row`` is unused — the merge backend has no row
        space).  Emptied posting lists are dropped entirely, matching a
        from-scratch rebuild."""
        postings = self._postings
        for vertex in vertices:
            remaining = tuple(
                other for other in postings[vertex] if other != edge_id
            )
            if remaining:
                postings[vertex] = remaining
            else:
                del postings[vertex]

    def postings(self, vertex: int) -> Tuple[int, ...]:
        """Posting list for ``vertex`` (empty tuple if absent)."""
        return self._postings.get(vertex, ())

    def postings_count(self, vertex: int) -> int:
        """Number of partition edges incident to ``vertex`` (O(1))."""
        return len(self._postings.get(vertex, ()))

    def vertices(self) -> Iterable[int]:
        """All vertices appearing in this partition."""
        return self._postings.keys()

    @property
    def num_entries(self) -> int:
        """Total posting entries (== sum of arities of indexed edges)."""
        return sum(len(plist) for plist in self._postings.values())

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._postings

    def __len__(self) -> int:
        return len(self._postings)


class BitsetHyperedgeIndex:
    """Vertex → bitmask of incident partition rows, plus row ↔ edge tables.

    Rows number the partition's edges ``0 .. rows-1`` in ascending
    edge-id order, so bit ``r`` of a posting mask stands for edge
    ``row_to_edge[r]`` and decoding a mask lowest-bit-first yields an
    ascending edge-id tuple — the same boundary representation the merge
    backend produces.  ``union_mask`` / ``intersect_mask`` over several
    vertices are then a handful of C-speed ``|`` / ``&`` operations.
    """

    backend = "bitset"

    __slots__ = ("_row_to_edge", "_masks")

    def __init__(
        self, row_to_edge: Tuple[int, ...], masks: Dict[int, int]
    ) -> None:
        self._row_to_edge = row_to_edge
        self._masks = masks

    @classmethod
    def build(
        cls, graph: Hypergraph, edge_ids: Sequence[int]
    ) -> "BitsetHyperedgeIndex":
        """Build the index over ``edge_ids`` (must be ascending)."""
        row_to_edge = tuple(edge_ids)
        masks: Dict[int, int] = {}
        for row, edge_id in enumerate(row_to_edge):
            vertices = _slot_vertices(graph, edge_id)
            if vertices is None:  # tombstone: row allocated, bits clear
                continue
            bit = 1 << row
            for vertex in vertices:
                masks[vertex] = masks.get(vertex, 0) | bit
        return cls(row_to_edge, masks)

    def append_edge(self, edge_id: int, vertices) -> None:
        """Incremental insert: allocate the next row, set its bits."""
        bit = 1 << len(self._row_to_edge)
        self._row_to_edge = self._row_to_edge + (edge_id,)
        masks = self._masks
        for vertex in vertices:
            masks[vertex] = masks.get(vertex, 0) | bit
        return None

    def remove_edge(self, row: int, edge_id: int, vertices) -> None:
        """Incremental delete: clear the row's bits, keep the row
        allocated (tombstone) so later rows never shift.  Vertices whose
        mask empties are dropped, matching a from-scratch rebuild."""
        clear = ~(1 << row)
        masks = self._masks
        for vertex in vertices:
            mask = masks.get(vertex, 0) & clear
            if mask:
                masks[vertex] = mask
            else:
                masks.pop(vertex, None)

    @classmethod
    def from_postings(
        cls,
        edge_ids: Sequence[int],
        postings: Dict[int, Tuple[int, ...]],
    ) -> "BitsetHyperedgeIndex":
        """Rebuild from merge-style posting lists (persistence path)."""
        row_to_edge = tuple(edge_ids)
        edge_to_row = {edge_id: row for row, edge_id in enumerate(row_to_edge)}
        masks: Dict[int, int] = {}
        for vertex, plist in postings.items():
            mask = 0
            for edge_id in plist:
                mask |= 1 << edge_to_row[edge_id]
            masks[vertex] = mask
        return cls(row_to_edge, masks)

    @property
    def row_to_edge(self) -> Tuple[int, ...]:
        """The row → edge-id translation table (read-only)."""
        return self._row_to_edge

    def postings_mask(self, vertex: int) -> int:
        """Bitmask of rows incident to ``vertex`` (0 if absent)."""
        return self._masks.get(vertex, 0)

    def decode_mask(self, mask: int) -> Tuple[int, ...]:
        """Translate a row bitmask back to an ascending edge-id tuple."""
        row_to_edge = self._row_to_edge
        result: List[int] = []
        while mask:
            low = mask & -mask
            result.append(row_to_edge[low.bit_length() - 1])
            mask ^= low
        return tuple(result)

    def iter_mask(self, mask: int) -> Iterator[int]:
        """Lazily yield the edge ids of a row bitmask in ascending order."""
        row_to_edge = self._row_to_edge
        while mask:
            low = mask & -mask
            yield row_to_edge[low.bit_length() - 1]
            mask ^= low

    def postings(self, vertex: int) -> Tuple[int, ...]:
        """Posting list for ``vertex`` (empty tuple if absent)."""
        return self.decode_mask(self._masks.get(vertex, 0))

    def postings_count(self, vertex: int) -> int:
        """Number of partition edges incident to ``vertex`` (popcount)."""
        return self._masks.get(vertex, 0).bit_count()

    def vertices(self) -> Iterable[int]:
        """All vertices appearing in this partition."""
        return self._masks.keys()

    @property
    def num_rows(self) -> int:
        """Size of the dense row-id space (== partition cardinality)."""
        return len(self._row_to_edge)

    @property
    def num_entries(self) -> int:
        """Total posting entries (== sum of arities of indexed edges)."""
        return sum(mask.bit_count() for mask in self._masks.values())

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._masks

    def __len__(self) -> int:
        return len(self._masks)


# ----------------------------------------------------------------------
# Adaptive (roaring-style) containers
# ----------------------------------------------------------------------
# All container/chunk-map operations are pure: inputs are never mutated,
# so index-internal chunk maps can be handed to the set algebra and its
# results memoised without defensive copies.


def array_to_bits(offsets: Sequence[int]) -> int:
    """Sorted offset tuple → chunk bitmask."""
    bits = 0
    for offset in offsets:
        bits |= 1 << offset
    return bits


def bits_to_array(bits: int) -> Tuple[int, ...]:
    """Chunk bitmask → ascending offset tuple."""
    offsets: List[int] = []
    while bits:
        low = bits & -bits
        offsets.append(low.bit_length() - 1)
        bits ^= low
    return tuple(offsets)


def _normalise_container(offsets: Sequence[int], array_max: int):
    """Pick the container representation for a sorted offset sequence."""
    if len(offsets) > array_max:
        return array_to_bits(offsets)
    return tuple(offsets)


def container_count(container) -> int:
    """Cardinality of one container."""
    if isinstance(container, int):
        return container.bit_count()
    return len(container)


def container_intersect(first, second):
    """Intersection of two containers (array result stays an array)."""
    if isinstance(first, int):
        if isinstance(second, int):
            return first & second
        return tuple(x for x in second if (first >> x) & 1)
    if isinstance(second, int):
        return tuple(x for x in first if (second >> x) & 1)
    return intersect_sorted(first, second)


def container_union(first, second, array_max: int = ARRAY_CONTAINER_MAX):
    """Union of two containers, re-normalised against ``array_max``."""
    if isinstance(first, int):
        if isinstance(second, int):
            return first | second
        return first | array_to_bits(second)
    if isinstance(second, int):
        return second | array_to_bits(first)
    merged = union_sorted(first, second)
    if len(merged) > array_max:
        return array_to_bits(merged)
    return merged


def chunks_count(chunks: ChunkMap) -> int:
    """Total cardinality of a chunk map."""
    total = 0
    for container in chunks.values():
        if isinstance(container, int):
            total += container.bit_count()
        else:
            total += len(container)
    return total


def chunks_union_many(
    maps: Sequence[ChunkMap], array_max: int = ARRAY_CONTAINER_MAX
) -> ChunkMap:
    """Union of several chunk maps, container-pairwise per chunk.

    Containers of the same chunk are gathered first and combined once:
    any bitmask input (or a combined array cardinality past the
    threshold) makes the chunk dense, so arrays are OR-folded into one
    bitmask instead of repeatedly merge-scanned.
    """
    if not maps:
        return {}
    if len(maps) == 1:
        return maps[0]
    per_chunk: Dict[int, List[object]] = {}
    for chunk_map in maps:
        for chunk, container in chunk_map.items():
            per_chunk.setdefault(chunk, []).append(container)
    out: ChunkMap = {}
    for chunk, containers in per_chunk.items():
        if len(containers) == 1:
            out[chunk] = containers[0]
        else:
            out[chunk] = containers_union_many(containers, array_max)
    return out


def containers_union_many(
    containers: Sequence[object], array_max: int = ARRAY_CONTAINER_MAX
):
    """Union of several containers of the *same* chunk.

    The one-chunk core of :func:`chunks_union_many`, exposed separately
    so the single-chunk fast path (every partition no larger than one
    chunk, the common case at reproduction scale) can fold posting
    containers without any chunk-map staging.
    """
    bits = 0
    arrays: List[Sequence[int]] = []
    for container in containers:
        if isinstance(container, int):
            bits |= container
        else:
            arrays.append(container)
    if not arrays:
        return bits
    if bits or sum(len(a) for a in arrays) > array_max:
        for array in arrays:
            for offset in array:
                bits |= 1 << offset
        return bits
    if len(arrays) == 1:
        return arrays[0]
    # Arrays total at most array_max offsets: a set-dedup + sort beats a
    # heap merge at this size by a wide margin.
    return tuple(sorted({offset for array in arrays for offset in array}))


def chunks_from_rows(
    rows: Sequence[int],
    chunk_bits: int = CHUNK_BITS,
    array_max: int = ARRAY_CONTAINER_MAX,
) -> ChunkMap:
    """Bucket *ascending* row ids into a normalised chunk map.

    The inverse of flattening a chunk map to rows; used when a row set
    produced outside the index (validation survivors, wire payloads
    shifted into another row space) has to re-enter the adaptive
    representation.
    """
    offset_mask = (1 << chunk_bits) - 1
    raw: Dict[int, List[int]] = {}
    for row in rows:
        raw.setdefault(row >> chunk_bits, []).append(row & offset_mask)
    return {
        chunk: _normalise_container(offsets, array_max)
        for chunk, offsets in raw.items()
    }


def mask_from_chunks(chunks: ChunkMap, chunk_bits: int = CHUNK_BITS) -> int:
    """Flatten a chunk map back into one row bitmask."""
    mask = 0
    for chunk, container in chunks.items():
        if not isinstance(container, int):
            container = array_to_bits(container)
        mask |= container << (chunk << chunk_bits)
    return mask


def chunks_intersect(first: ChunkMap, second: ChunkMap) -> ChunkMap:
    """Intersection of two chunk maps; empty chunks are dropped."""
    if len(first) > len(second):
        first, second = second, first
    out: ChunkMap = {}
    for chunk, container in first.items():
        other = second.get(chunk)
        if other is None:
            continue
        merged = container_intersect(container, other)
        if merged if isinstance(merged, int) else len(merged):
            out[chunk] = merged
    return out


class AdaptiveHyperedgeIndex:
    """Vertex → roaring-style chunked containers over partition rows.

    Rows number the partition's edges ``0 .. rows-1`` in ascending
    edge-id order (as in the bitset backend) and are split into chunks
    of ``2**chunk_bits`` rows.  A vertex's posting set keeps, per
    non-empty chunk, either a sorted tuple of local offsets or a chunk
    bitmask, by cardinality against ``array_max`` — the CRoaring/
    pyroaring container scheme adapted to Python big-ints.  Set algebra
    over chunk maps is provided by :func:`chunks_union_many` /
    :func:`chunks_intersect`.
    """

    backend = "adaptive"

    __slots__ = (
        "_row_to_edge",
        "_chunk_maps",
        "_flat",
        "chunk_bits",
        "array_max",
    )

    def __init__(
        self,
        row_to_edge: Tuple[int, ...],
        chunk_maps: Dict[int, ChunkMap],
        chunk_bits: int = CHUNK_BITS,
        array_max: int = ARRAY_CONTAINER_MAX,
    ) -> None:
        self._row_to_edge = row_to_edge
        self._chunk_maps = chunk_maps
        self.chunk_bits = chunk_bits
        self.array_max = array_max
        # Single-chunk fast path: when the whole partition fits one chunk
        # (the common case below 2**chunk_bits rows) the chunk maps all
        # degenerate to ``{0: container}``, so the set algebra can work
        # on bare containers with zero chunk-map staging.  ``_flat``
        # aliases the same container objects; None on multi-chunk
        # partitions.
        if len(row_to_edge) <= (1 << chunk_bits):
            # A vertex persisted with an empty posting list has an empty
            # chunk map; leaving it out of _flat makes flat.get() treat
            # it as empty, matching the other backends.
            self._flat = {
                vertex: chunks[0]
                for vertex, chunks in chunk_maps.items()
                if chunks
            }
        else:
            self._flat = None

    @property
    def flat_containers(self) -> "Dict[int, object] | None":
        """``{vertex: container}`` when the partition fits one chunk,
        else None.  Treat as immutable."""
        return self._flat

    @property
    def row_to_edge(self) -> Tuple[int, ...]:
        """The row → edge-id translation table (read-only)."""
        return self._row_to_edge

    def decode_mask(self, mask: int) -> Tuple[int, ...]:
        """Translate a *single-chunk* bitmask (chunk 0: offsets == rows)
        back to an ascending edge-id tuple — lets single-chunk results
        share the bitset backend's mask consumers."""
        row_to_edge = self._row_to_edge
        result: List[int] = []
        while mask:
            low = mask & -mask
            result.append(row_to_edge[low.bit_length() - 1])
            mask ^= low
        return tuple(result)

    def iter_mask(self, mask: int) -> Iterator[int]:
        """Lazily yield the edge ids of a single-chunk bitmask."""
        row_to_edge = self._row_to_edge
        while mask:
            low = mask & -mask
            yield row_to_edge[low.bit_length() - 1]
            mask ^= low

    @classmethod
    def build(
        cls,
        graph: Hypergraph,
        edge_ids: Sequence[int],
        chunk_bits: int = CHUNK_BITS,
        array_max: int = ARRAY_CONTAINER_MAX,
    ) -> "AdaptiveHyperedgeIndex":
        """Build the index over ``edge_ids`` (must be ascending)."""
        row_to_edge = tuple(edge_ids)
        offset_mask = (1 << chunk_bits) - 1
        raw: Dict[int, Dict[int, List[int]]] = {}
        for row, edge_id in enumerate(row_to_edge):
            vertices = _slot_vertices(graph, edge_id)
            if vertices is None:  # tombstone: row allocated, no postings
                continue
            chunk, offset = row >> chunk_bits, row & offset_mask
            for vertex in vertices:
                raw.setdefault(vertex, {}).setdefault(chunk, []).append(offset)
        # Offsets were appended in ascending row order, hence sorted.
        chunk_maps = {
            vertex: {
                chunk: _normalise_container(offsets, array_max)
                for chunk, offsets in chunks.items()
            }
            for vertex, chunks in raw.items()
        }
        return cls(row_to_edge, chunk_maps, chunk_bits, array_max)

    @classmethod
    def from_postings(
        cls,
        edge_ids: Sequence[int],
        postings: Dict[int, Tuple[int, ...]],
        chunk_bits: int = CHUNK_BITS,
        array_max: int = ARRAY_CONTAINER_MAX,
    ) -> "AdaptiveHyperedgeIndex":
        """Rebuild from merge-style posting lists (persistence path)."""
        row_to_edge = tuple(edge_ids)
        edge_to_row = {edge_id: row for row, edge_id in enumerate(row_to_edge)}
        offset_mask = (1 << chunk_bits) - 1
        chunk_maps: Dict[int, ChunkMap] = {}
        for vertex, plist in postings.items():
            raw: Dict[int, List[int]] = {}
            for edge_id in plist:
                row = edge_to_row[edge_id]
                raw.setdefault(row >> chunk_bits, []).append(row & offset_mask)
            chunk_maps[vertex] = {
                chunk: _normalise_container(sorted(offsets), array_max)
                for chunk, offsets in raw.items()
            }
        return cls(row_to_edge, chunk_maps, chunk_bits, array_max)

    # -- incremental maintenance ---------------------------------------
    # Containers and per-vertex chunk-map dicts are REPLACED, never
    # mutated in place: the whole container algebra (and the anchor-
    # union memo) treats them as immutable values, so an in-flight
    # reference must keep seeing the pre-mutation object.  Only the
    # touched (vertex, chunk) containers re-choose their representation
    # (array vs bitmask, via _normalise_container) — exactly the
    # decision a from-scratch rebuild would make at the new
    # cardinality, which is what keeps incremental and rebuilt indices
    # structurally identical (pinned by the mutation oracle).

    def append_edge(self, edge_id: int, vertices) -> None:
        """Incremental insert: allocate the next row, post its vertices."""
        row = len(self._row_to_edge)
        self._row_to_edge = self._row_to_edge + (edge_id,)
        if self._flat is not None and len(self._row_to_edge) > (
            1 << self.chunk_bits
        ):
            # The partition outgrew the single-chunk fast path; a
            # rebuild at this size would not have it either.
            self._flat = None
        chunk = row >> self.chunk_bits
        offset = row & ((1 << self.chunk_bits) - 1)
        bit = 1 << offset
        array_max = self.array_max
        for vertex in vertices:
            chunks = self._chunk_maps.get(vertex)
            container = None if chunks is None else chunks.get(chunk)
            if container is None:
                updated: object = (offset,)
            elif isinstance(container, int):
                updated = container | bit
            else:
                # New rows are the partition maximum: appending keeps
                # the offset tuple sorted; re-choose the representation
                # at the new cardinality.
                updated = _normalise_container(
                    container + (offset,), array_max
                )
            new_chunks = dict(chunks) if chunks else {}
            new_chunks[chunk] = updated
            self._chunk_maps[vertex] = new_chunks
            if self._flat is not None:
                self._flat[vertex] = updated

    def remove_edge(self, row: int, edge_id: int, vertices) -> None:
        """Incremental delete: clear the row from its vertices' chunk
        containers; the row stays allocated (tombstone).  Touched
        containers re-choose array vs bitmask at the shrunken
        cardinality; emptied containers/vertices are dropped, matching
        a from-scratch rebuild."""
        chunk = row >> self.chunk_bits
        offset = row & ((1 << self.chunk_bits) - 1)
        array_max = self.array_max
        for vertex in vertices:
            chunks = self._chunk_maps.get(vertex)
            container = None if chunks is None else chunks.get(chunk)
            if container is None:
                continue
            if isinstance(container, int):
                bits = container & ~(1 << offset)
                updated = (
                    _normalise_container(bits_to_array(bits), array_max)
                    if bits
                    else None
                )
            else:
                remaining = tuple(o for o in container if o != offset)
                updated = remaining if remaining else None
            new_chunks = dict(chunks)
            if updated is None:
                new_chunks.pop(chunk, None)
            else:
                new_chunks[chunk] = updated
            if new_chunks:
                self._chunk_maps[vertex] = new_chunks
            else:
                del self._chunk_maps[vertex]
            if self._flat is not None:
                if updated is None:
                    self._flat.pop(vertex, None)
                else:
                    self._flat[vertex] = updated

    _EMPTY: ChunkMap = {}

    def postings_chunks(self, vertex: int) -> ChunkMap:
        """The vertex's chunk map ({} if absent).  Treat as immutable."""
        return self._chunk_maps.get(vertex, self._EMPTY)

    def iter_chunks(self, chunks: ChunkMap) -> Iterator[int]:
        """Lazily yield the edge ids of a chunk map in ascending order."""
        row_to_edge = self._row_to_edge
        chunk_bits = self.chunk_bits
        for chunk in sorted(chunks):
            base = chunk << chunk_bits
            container = chunks[chunk]
            if isinstance(container, int):
                while container:
                    low = container & -container
                    yield row_to_edge[base + low.bit_length() - 1]
                    container ^= low
            else:
                for offset in container:
                    yield row_to_edge[base + offset]

    def decode_chunks(self, chunks: ChunkMap) -> Tuple[int, ...]:
        """Translate a chunk map back to an ascending edge-id tuple."""
        row_to_edge = self._row_to_edge
        chunk_bits = self.chunk_bits
        result: List[int] = []
        append = result.append
        for chunk in sorted(chunks):
            base = chunk << chunk_bits
            container = chunks[chunk]
            if isinstance(container, int):
                while container:
                    low = container & -container
                    append(row_to_edge[base + low.bit_length() - 1])
                    container ^= low
            else:
                for offset in container:
                    append(row_to_edge[base + offset])
        return tuple(result)

    def postings(self, vertex: int) -> Tuple[int, ...]:
        """Posting list for ``vertex`` (empty tuple if absent)."""
        return self.decode_chunks(self.postings_chunks(vertex))

    def postings_count(self, vertex: int) -> int:
        """Number of partition edges incident to ``vertex``."""
        return chunks_count(self.postings_chunks(vertex))

    def container_kinds(self) -> Dict[int, Tuple[Tuple[int, str], ...]]:
        """Per-vertex ``(chunk, "array"|"bits")`` choices — the adaptive
        representation decisions, exposed for tests and persistence
        round-trip verification."""
        return {
            vertex: tuple(
                (chunk, "bits" if isinstance(container, int) else "array")
                for chunk, container in sorted(chunks.items())
            )
            for vertex, chunks in self._chunk_maps.items()
        }

    def vertices(self) -> Iterable[int]:
        """All vertices appearing in this partition."""
        return self._chunk_maps.keys()

    @property
    def num_rows(self) -> int:
        """Size of the dense row-id space (== partition cardinality)."""
        return len(self._row_to_edge)

    @property
    def num_entries(self) -> int:
        """Total posting entries (== sum of arities of indexed edges)."""
        return sum(chunks_count(chunks) for chunks in self._chunk_maps.values())

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._chunk_maps

    def __len__(self) -> int:
        return len(self._chunk_maps)


def build_index(
    backend: str, graph: Hypergraph, edge_ids: Sequence[int]
):
    """Build the index of the requested ``backend`` over a partition."""
    if backend == "merge":
        return InvertedHyperedgeIndex.build(graph, edge_ids)
    if backend == "bitset":
        return BitsetHyperedgeIndex.build(graph, edge_ids)
    if backend == "adaptive":
        return AdaptiveHyperedgeIndex.build(graph, edge_ids)
    raise ValueError(
        f"unknown index backend {backend!r}; expected one of {INDEX_BACKENDS}"
    )


def index_from_postings(
    backend: str,
    edge_ids: Sequence[int],
    postings: Dict[int, Tuple[int, ...]],
):
    """Materialise an index of ``backend`` from raw posting lists."""
    if backend == "merge":
        return InvertedHyperedgeIndex(dict(postings))
    if backend == "bitset":
        return BitsetHyperedgeIndex.from_postings(edge_ids, postings)
    if backend == "adaptive":
        return AdaptiveHyperedgeIndex.from_postings(edge_ids, postings)
    raise ValueError(
        f"unknown index backend {backend!r}; expected one of {INDEX_BACKENDS}"
    )


def intersect_sorted(first: Sequence[int], second: Sequence[int]) -> Tuple[int, ...]:
    """Intersection of two ascending sequences, returned ascending.

    >>> intersect_sorted((1, 3, 5, 7), (3, 4, 5))
    (3, 5)
    """
    result: List[int] = []
    i = j = 0
    len_first, len_second = len(first), len(second)
    while i < len_first and j < len_second:
        a, b = first[i], second[j]
        if a == b:
            result.append(a)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return tuple(result)


def intersect_many(lists: Sequence[Sequence[int]]) -> Tuple[int, ...]:
    """Intersection of several ascending sequences (shortest-first order).

    Intersecting the two shortest lists first keeps intermediate results
    small, the standard heuristic for multi-way intersection.
    An empty input sequence is a caller error (the neutral element of
    intersection is "everything"); callers guard against it.
    """
    if not lists:
        raise ValueError("intersect_many requires at least one list")
    ordered = sorted(lists, key=len)
    result: Sequence[int] = ordered[0]
    for other in ordered[1:]:
        if not result:
            break
        result = intersect_sorted(result, other)
    return tuple(result)


def union_sorted(first: Sequence[int], second: Sequence[int]) -> Tuple[int, ...]:
    """Union of two ascending sequences, returned ascending and deduplicated.

    >>> union_sorted((1, 3), (2, 3, 4))
    (1, 2, 3, 4)
    """
    result: List[int] = []
    i = j = 0
    len_first, len_second = len(first), len(second)
    while i < len_first and j < len_second:
        a, b = first[i], second[j]
        if a == b:
            result.append(a)
            i += 1
            j += 1
        elif a < b:
            result.append(a)
            i += 1
        else:
            result.append(b)
            j += 1
    result.extend(first[i:])
    result.extend(second[j:])
    return tuple(result)


def union_many(lists: Sequence[Sequence[int]]) -> Tuple[int, ...]:
    """Union of several ascending sequences (empty input yields empty).

    A heap-based k-way merge: each input is consumed exactly once, so
    the cost is O(N log k) for N total postings over k lists, instead of
    the O(k·N) a pairwise left-fold degrades to on high-degree anchor
    vertices with many posting lists.
    """
    populated = [lst for lst in lists if lst]
    if not populated:
        return ()
    if len(populated) == 1:
        return tuple(populated[0])
    result: List[int] = []
    last = None
    for value in heapq.merge(*populated):
        if value != last:
            result.append(value)
            last = value
    return tuple(result)
