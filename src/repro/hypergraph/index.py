"""The inverted hyperedge index (Section IV-C), in two backends.

For a hyperedge table (one signature partition) the index maps every
vertex occurring in the table to the posting list of hyperedge ids
incident to it.  With the index, ``he(v, S(e_q))`` — all incident
hyperedges of ``v`` having a given signature — is a constant-time lookup,
and candidate generation reduces to unions/intersections of posting lists.

Two interchangeable representations are provided:

``merge`` — :class:`InvertedHyperedgeIndex`
    Posting lists are plain sorted tuples of ints.  Set algebra over
    them is provided by :func:`intersect_sorted` / :func:`union_sorted`,
    implemented as classic merge scans (work proportional to list
    lengths, exactly the quantity the simulated executor charges).

``bitset`` — :class:`BitsetHyperedgeIndex`
    Each partition gets a dense row-id space ``0 .. rows-1`` (row ↔
    edge-id tables) and posting lists become Python big-int bitmasks
    over it.  Unions and intersections are then single ``|`` / ``&``
    operations executed at machine-word speed inside CPython's long
    arithmetic, instead of O(total postings) Python-level merge loops.
    Both backends expose the same ``postings``/``vertices`` interface
    and decode to identical ascending edge-id tuples at the API
    boundary.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence, Tuple

from .hypergraph import Hypergraph

#: Names of the available index representations, in preference order of
#: the storage layer's default.
INDEX_BACKENDS: Tuple[str, ...] = ("merge", "bitset")


class InvertedHyperedgeIndex:
    """Vertex → sorted posting list of incident edge ids, for one partition."""

    #: Backend tag consulted by candidate generation for dispatch.
    backend = "merge"

    __slots__ = ("_postings",)

    def __init__(self, postings: Dict[int, Tuple[int, ...]]) -> None:
        self._postings = postings

    @classmethod
    def build(
        cls, graph: Hypergraph, edge_ids: Sequence[int]
    ) -> "InvertedHyperedgeIndex":
        """Build the index over ``edge_ids`` (must be ascending)."""
        postings: Dict[int, List[int]] = {}
        for edge_id in edge_ids:
            for vertex in graph.edge(edge_id):
                postings.setdefault(vertex, []).append(edge_id)
        return cls({vertex: tuple(plist) for vertex, plist in postings.items()})

    def postings(self, vertex: int) -> Tuple[int, ...]:
        """Posting list for ``vertex`` (empty tuple if absent)."""
        return self._postings.get(vertex, ())

    def vertices(self) -> Iterable[int]:
        """All vertices appearing in this partition."""
        return self._postings.keys()

    @property
    def num_entries(self) -> int:
        """Total posting entries (== sum of arities of indexed edges)."""
        return sum(len(plist) for plist in self._postings.values())

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._postings

    def __len__(self) -> int:
        return len(self._postings)


class BitsetHyperedgeIndex:
    """Vertex → bitmask of incident partition rows, plus row ↔ edge tables.

    Rows number the partition's edges ``0 .. rows-1`` in ascending
    edge-id order, so bit ``r`` of a posting mask stands for edge
    ``row_to_edge[r]`` and decoding a mask lowest-bit-first yields an
    ascending edge-id tuple — the same boundary representation the merge
    backend produces.  ``union_mask`` / ``intersect_mask`` over several
    vertices are then a handful of C-speed ``|`` / ``&`` operations.
    """

    backend = "bitset"

    __slots__ = ("_row_to_edge", "_masks")

    def __init__(
        self, row_to_edge: Tuple[int, ...], masks: Dict[int, int]
    ) -> None:
        self._row_to_edge = row_to_edge
        self._masks = masks

    @classmethod
    def build(
        cls, graph: Hypergraph, edge_ids: Sequence[int]
    ) -> "BitsetHyperedgeIndex":
        """Build the index over ``edge_ids`` (must be ascending)."""
        row_to_edge = tuple(edge_ids)
        masks: Dict[int, int] = {}
        for row, edge_id in enumerate(row_to_edge):
            bit = 1 << row
            for vertex in graph.edge(edge_id):
                masks[vertex] = masks.get(vertex, 0) | bit
        return cls(row_to_edge, masks)

    @classmethod
    def from_postings(
        cls,
        edge_ids: Sequence[int],
        postings: Dict[int, Tuple[int, ...]],
    ) -> "BitsetHyperedgeIndex":
        """Rebuild from merge-style posting lists (persistence path)."""
        row_to_edge = tuple(edge_ids)
        edge_to_row = {edge_id: row for row, edge_id in enumerate(row_to_edge)}
        masks: Dict[int, int] = {}
        for vertex, plist in postings.items():
            mask = 0
            for edge_id in plist:
                mask |= 1 << edge_to_row[edge_id]
            masks[vertex] = mask
        return cls(row_to_edge, masks)

    def postings_mask(self, vertex: int) -> int:
        """Bitmask of rows incident to ``vertex`` (0 if absent)."""
        return self._masks.get(vertex, 0)

    def decode_mask(self, mask: int) -> Tuple[int, ...]:
        """Translate a row bitmask back to an ascending edge-id tuple."""
        row_to_edge = self._row_to_edge
        result: List[int] = []
        while mask:
            low = mask & -mask
            result.append(row_to_edge[low.bit_length() - 1])
            mask ^= low
        return tuple(result)

    def postings(self, vertex: int) -> Tuple[int, ...]:
        """Posting list for ``vertex`` (empty tuple if absent)."""
        return self.decode_mask(self._masks.get(vertex, 0))

    def vertices(self) -> Iterable[int]:
        """All vertices appearing in this partition."""
        return self._masks.keys()

    @property
    def num_rows(self) -> int:
        """Size of the dense row-id space (== partition cardinality)."""
        return len(self._row_to_edge)

    @property
    def num_entries(self) -> int:
        """Total posting entries (== sum of arities of indexed edges)."""
        return sum(mask.bit_count() for mask in self._masks.values())

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._masks

    def __len__(self) -> int:
        return len(self._masks)


def build_index(
    backend: str, graph: Hypergraph, edge_ids: Sequence[int]
):
    """Build the index of the requested ``backend`` over a partition."""
    if backend == "merge":
        return InvertedHyperedgeIndex.build(graph, edge_ids)
    if backend == "bitset":
        return BitsetHyperedgeIndex.build(graph, edge_ids)
    raise ValueError(
        f"unknown index backend {backend!r}; expected one of {INDEX_BACKENDS}"
    )


def index_from_postings(
    backend: str,
    edge_ids: Sequence[int],
    postings: Dict[int, Tuple[int, ...]],
):
    """Materialise an index of ``backend`` from raw posting lists."""
    if backend == "merge":
        return InvertedHyperedgeIndex(dict(postings))
    if backend == "bitset":
        return BitsetHyperedgeIndex.from_postings(edge_ids, postings)
    raise ValueError(
        f"unknown index backend {backend!r}; expected one of {INDEX_BACKENDS}"
    )


def intersect_sorted(first: Sequence[int], second: Sequence[int]) -> Tuple[int, ...]:
    """Intersection of two ascending sequences, returned ascending.

    >>> intersect_sorted((1, 3, 5, 7), (3, 4, 5))
    (3, 5)
    """
    result: List[int] = []
    i = j = 0
    len_first, len_second = len(first), len(second)
    while i < len_first and j < len_second:
        a, b = first[i], second[j]
        if a == b:
            result.append(a)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return tuple(result)


def intersect_many(lists: Sequence[Sequence[int]]) -> Tuple[int, ...]:
    """Intersection of several ascending sequences (shortest-first order).

    Intersecting the two shortest lists first keeps intermediate results
    small, the standard heuristic for multi-way intersection.
    An empty input sequence is a caller error (the neutral element of
    intersection is "everything"); callers guard against it.
    """
    if not lists:
        raise ValueError("intersect_many requires at least one list")
    ordered = sorted(lists, key=len)
    result: Sequence[int] = ordered[0]
    for other in ordered[1:]:
        if not result:
            break
        result = intersect_sorted(result, other)
    return tuple(result)


def union_sorted(first: Sequence[int], second: Sequence[int]) -> Tuple[int, ...]:
    """Union of two ascending sequences, returned ascending and deduplicated.

    >>> union_sorted((1, 3), (2, 3, 4))
    (1, 2, 3, 4)
    """
    result: List[int] = []
    i = j = 0
    len_first, len_second = len(first), len(second)
    while i < len_first and j < len_second:
        a, b = first[i], second[j]
        if a == b:
            result.append(a)
            i += 1
            j += 1
        elif a < b:
            result.append(a)
            i += 1
        else:
            result.append(b)
            j += 1
    result.extend(first[i:])
    result.extend(second[j:])
    return tuple(result)


def union_many(lists: Sequence[Sequence[int]]) -> Tuple[int, ...]:
    """Union of several ascending sequences (empty input yields empty).

    A heap-based k-way merge: each input is consumed exactly once, so
    the cost is O(N log k) for N total postings over k lists, instead of
    the O(k·N) a pairwise left-fold degrades to on high-degree anchor
    vertices with many posting lists.
    """
    populated = [lst for lst in lists if lst]
    if not populated:
        return ()
    if len(populated) == 1:
        return tuple(populated[0])
    result: List[int] = []
    last = None
    for value in heapq.merge(*populated):
        if value != last:
            result.append(value)
            last = value
    return tuple(result)
