"""The labelled hypergraph data model (Definition III.1 of the paper).

A :class:`Hypergraph` is an immutable, vertex-labelled simple hypergraph:

* vertices are the integers ``0 .. num_vertices - 1``;
* every vertex carries a label (any hashable value);
* hyperedges are non-empty frozensets of vertices, identified by their
  integer position ``0 .. num_edges - 1``;
* repeated hyperedges and repeated vertices inside a hyperedge are removed
  at construction time, mirroring the preprocessing applied to the paper's
  datasets (Section VII-A).

The class stores, besides the edge list itself, the incidence lists
``he(v)`` (edge ids incident to each vertex, ascending) because nearly
every algorithm in the paper is phrased in terms of incident hyperedges.

Use :class:`HypergraphBuilder` for incremental construction or the
``Hypergraph.from_edges`` convenience constructor for one-shot building.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

from ..errors import HypergraphError
from .signature import Label, Signature, signature_of_labels


class Hypergraph:
    """An immutable vertex-labelled simple hypergraph.

    Parameters
    ----------
    labels:
        ``labels[v]`` is the label of vertex ``v``.  The length of this
        sequence defines the vertex count.
    edges:
        Iterable of vertex collections.  Duplicate vertices within an edge
        are collapsed; duplicate edges (same vertex set — and same edge
        label when edge labels are used) are dropped, keeping the first
        occurrence.  Empty edges raise :class:`HypergraphError`.
    edge_labels:
        Optional hyperedge labels, parallel to ``edges`` (before
        deduplication).  When given, the hypergraph is *edge-labelled*
        (paper footnote 2): isomorphism additionally requires matched
        hyperedges to carry equal labels, which the engine obtains for
        free by folding the edge label into the hyperedge signature.
    """

    __slots__ = (
        "_labels",
        "_edges",
        "_edge_labels",
        "_incidence",
        "_signatures",
        "_edge_lookup",
    )

    def __init__(
        self,
        labels: Sequence[Label],
        edges: Iterable[Iterable[int]],
        edge_labels: "Sequence[Label] | None" = None,
    ) -> None:
        self._labels: Tuple[Label, ...] = tuple(labels)
        num_vertices = len(self._labels)

        raw_edges = [frozenset(raw) for raw in edges]
        if edge_labels is not None:
            raw_labels = list(edge_labels)
            if len(raw_labels) != len(raw_edges):
                raise HypergraphError(
                    "edge_labels must parallel edges "
                    f"({len(raw_labels)} labels for {len(raw_edges)} edges)"
                )
        else:
            raw_labels = None

        deduped: List[FrozenSet[int]] = []
        deduped_labels: List[Label] = []
        seen: Set[object] = set()
        for position, edge in enumerate(raw_edges):
            if not edge:
                raise HypergraphError("hyperedges must be non-empty")
            for vertex in edge:
                if not 0 <= vertex < num_vertices:
                    raise HypergraphError(
                        f"edge {sorted(edge)} references unknown vertex {vertex}"
                    )
            key = edge if raw_labels is None else (edge, raw_labels[position])
            if key in seen:
                continue
            seen.add(key)
            deduped.append(edge)
            if raw_labels is not None:
                deduped_labels.append(raw_labels[position])

        self._edges: Tuple[FrozenSet[int], ...] = tuple(deduped)
        self._edge_labels: "Tuple[Label, ...] | None" = (
            tuple(deduped_labels) if raw_labels is not None else None
        )
        if self._edge_labels is None:
            self._edge_lookup: Dict[object, int] = {
                edge: index for index, edge in enumerate(self._edges)
            }
        else:
            self._edge_lookup = {
                (edge, self._edge_labels[index]): index
                for index, edge in enumerate(self._edges)
            }

        incidence: List[List[int]] = [[] for _ in range(num_vertices)]
        for edge_id, edge in enumerate(self._edges):
            for vertex in edge:
                incidence[vertex].append(edge_id)
        self._incidence: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(edge_ids) for edge_ids in incidence
        )

        if self._edge_labels is None:
            self._signatures: Tuple[Signature, ...] = tuple(
                signature_of_labels(self._labels[v] for v in edge)
                for edge in self._edges
            )
        else:
            # The edge label becomes part of the signature, so signature
            # partitioning (and with it candidate generation) enforces
            # the extra edge-label constraint with no engine changes.
            self._signatures = tuple(
                (self._edge_labels[edge_id],)
                + signature_of_labels(self._labels[v] for v in edge)
                for edge_id, edge in enumerate(self._edges)
            )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices, ``|V(H)|``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of hyperedges, ``|E(H)|``."""
        return len(self._edges)

    @property
    def labels(self) -> Tuple[Label, ...]:
        """Tuple of vertex labels indexed by vertex id."""
        return self._labels

    @property
    def edges(self) -> Tuple[FrozenSet[int], ...]:
        """Tuple of hyperedges (frozensets of vertex ids) indexed by edge id."""
        return self._edges

    def label(self, vertex: int) -> Label:
        """Label of ``vertex`` (``l(v)`` in the paper)."""
        return self._labels[vertex]

    def edge(self, edge_id: int) -> FrozenSet[int]:
        """The vertex set of hyperedge ``edge_id``."""
        return self._edges[edge_id]

    def edge_signature(self, edge_id: int) -> Signature:
        """Signature ``S(e)`` of hyperedge ``edge_id`` (Definition IV.1)."""
        return self._signatures[edge_id]

    def edge_signatures(self) -> Tuple[Signature, ...]:
        """All edge signatures, indexed by edge id."""
        return self._signatures

    @property
    def is_edge_labelled(self) -> bool:
        """True when hyperedges carry labels (paper footnote 2)."""
        return self._edge_labels is not None

    def edge_label(self, edge_id: int) -> "Label | None":
        """Label of hyperedge ``edge_id`` (None for unlabelled edges)."""
        if self._edge_labels is None:
            return None
        return self._edge_labels[edge_id]

    def _lookup_key(self, vertices: Iterable[int], label: "Label | None"):
        edge = frozenset(vertices)
        if self._edge_labels is None:
            return edge
        if label is None:
            raise HypergraphError(
                "edge lookups on an edge-labelled hypergraph require the "
                "edge label"
            )
        return (edge, label)

    def edge_id(
        self, vertices: Iterable[int], label: "Label | None" = None
    ) -> int:
        """Return the id of the hyperedge equal to ``vertices``.

        For edge-labelled hypergraphs, ``label`` selects among edges over
        the same vertex set.  Raises :class:`KeyError` if no such
        hyperedge exists.  This lookup is the hyperedge-existence test
        used by the match-by-vertex baselines (Theorem III.2).
        """
        return self._edge_lookup[self._lookup_key(vertices, label)]

    def has_edge(
        self, vertices: Iterable[int], label: "Label | None" = None
    ) -> bool:
        """True if ``vertices`` (with ``label``, when edge-labelled) is a
        hyperedge of this graph."""
        return self._lookup_key(vertices, label) in self._edge_lookup

    # ------------------------------------------------------------------
    # Incidence and adjacency
    # ------------------------------------------------------------------
    def incident_edges(self, vertex: int) -> Tuple[int, ...]:
        """Edge ids incident to ``vertex`` in ascending order (``he(v)``)."""
        return self._incidence[vertex]

    def degree(self, vertex: int) -> int:
        """Vertex degree ``d(v)``: the number of incident hyperedges."""
        return len(self._incidence[vertex])

    def arity(self, edge_id: int) -> int:
        """Arity ``a(e)``: the number of vertices in hyperedge ``edge_id``."""
        return len(self._edges[edge_id])

    def incident_edges_with_arity(self, vertex: int, arity: int) -> Tuple[int, ...]:
        """``he_a(v)``: incident edge ids whose arity equals ``arity``."""
        return tuple(
            edge_id
            for edge_id in self._incidence[vertex]
            if len(self._edges[edge_id]) == arity
        )

    def adjacent_vertices(self, vertex: int) -> FrozenSet[int]:
        """``adj(v)``: vertices sharing at least one hyperedge with ``vertex``.

        The vertex itself is excluded, matching the conventional
        definition used by the IHS filter.
        """
        neighbours: Set[int] = set()
        for edge_id in self._incidence[vertex]:
            neighbours.update(self._edges[edge_id])
        neighbours.discard(vertex)
        return frozenset(neighbours)

    def adjacent_edges(self, edge_id: int) -> FrozenSet[int]:
        """``adj(e)``: hyperedge ids sharing at least one vertex with ``edge_id``."""
        neighbours: Set[int] = set()
        for vertex in self._edges[edge_id]:
            neighbours.update(self._incidence[vertex])
        neighbours.discard(edge_id)
        return frozenset(neighbours)

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def average_arity(self) -> float:
        """Average arity ``a_H`` over all hyperedges (0.0 for no edges)."""
        if not self._edges:
            return 0.0
        return sum(len(edge) for edge in self._edges) / len(self._edges)

    def max_arity(self) -> int:
        """Maximum arity ``a_max`` (0 for no edges)."""
        if not self._edges:
            return 0
        return max(len(edge) for edge in self._edges)

    def label_alphabet(self) -> FrozenSet[Label]:
        """The set of labels ``Σ`` actually used by vertices."""
        return frozenset(self._labels)

    def is_connected(self) -> bool:
        """True if the hypergraph is connected (via shared vertices).

        Isolated vertices (degree 0) make the hypergraph disconnected
        unless it has at most one vertex and no edges.
        """
        if self.num_vertices == 0:
            return True
        visited = {0}
        frontier = [0]
        while frontier:
            vertex = frontier.pop()
            for edge_id in self._incidence[vertex]:
                for other in self._edges[edge_id]:
                    if other not in visited:
                        visited.add(other)
                        frontier.append(other)
        return len(visited) == self.num_vertices

    # ------------------------------------------------------------------
    # Derived hypergraphs
    # ------------------------------------------------------------------
    def induced_by_edges(self, edge_ids: Iterable[int]) -> "Hypergraph":
        """Sub-hypergraph built from the given edges, vertices renumbered.

        Vertices are relabelled ``0..k-1`` in ascending order of their
        original ids.  Used by the random-walk query sampler.
        """
        edge_ids = list(edge_ids)
        vertices = sorted({v for edge_id in edge_ids for v in self._edges[edge_id]})
        renumber = {old: new for new, old in enumerate(vertices)}
        labels = [self._labels[old] for old in vertices]
        edges = [
            [renumber[v] for v in self._edges[edge_id]] for edge_id in edge_ids
        ]
        edge_labels = (
            [self._edge_labels[edge_id] for edge_id in edge_ids]
            if self._edge_labels is not None
            else None
        )
        return Hypergraph(labels, edges, edge_labels=edge_labels)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[FrozenSet[int]]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def _edge_identity(self) -> FrozenSet[object]:
        if self._edge_labels is None:
            return frozenset(self._edges)
        return frozenset(
            (edge, self._edge_labels[index])
            for index, edge in enumerate(self._edges)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (
            self._labels == other._labels
            and self._edge_identity() == other._edge_identity()
        )

    def __hash__(self) -> int:
        return hash((self._labels, self._edge_identity()))

    def __repr__(self) -> str:
        return (
            f"Hypergraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"|Σ|={len(self.label_alphabet())})"
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Iterable[int]],
        labels: Sequence[Label],
        edge_labels: "Sequence[Label] | None" = None,
    ) -> "Hypergraph":
        """Build a hypergraph from an edge list and a label sequence."""
        return cls(labels, edges, edge_labels=edge_labels)


class HypergraphBuilder:
    """Mutable builder producing :class:`Hypergraph` instances.

    Vertices may be added explicitly via :meth:`add_vertex` (which returns
    the new vertex id) or implicitly through :meth:`add_edge` using
    arbitrary hashable external keys — the builder assigns dense internal
    ids and remembers the mapping.
    """

    def __init__(self) -> None:
        self._labels: List[Label] = []
        self._edges: List[List[int]] = []
        self._edge_labels: List[Label] = []
        self._key_to_id: Dict[Hashable, int] = {}

    def add_vertex(self, label: Label, key: "Hashable | None" = None) -> int:
        """Add a vertex with ``label``; optionally register an external key."""
        vertex = len(self._labels)
        self._labels.append(label)
        if key is not None:
            if key in self._key_to_id:
                raise HypergraphError(f"duplicate vertex key: {key!r}")
            self._key_to_id[key] = vertex
        return vertex

    def vertex_for_key(self, key: Hashable, label: Label) -> int:
        """Return the vertex id for ``key``, creating it with ``label`` if new."""
        if key not in self._key_to_id:
            self.add_vertex(label, key=key)
        return self._key_to_id[key]

    def add_edge(
        self, vertices: Iterable[int], label: "Label | None" = None
    ) -> int:
        """Add a hyperedge over already-created vertex ids; returns its index.

        Passing ``label`` on every edge produces an edge-labelled
        hypergraph; mixing labelled and unlabelled edges is rejected at
        :meth:`build` time.
        """
        edge = list(vertices)
        for vertex in edge:
            if not 0 <= vertex < len(self._labels):
                raise HypergraphError(f"unknown vertex id {vertex}")
        self._edges.append(edge)
        self._edge_labels.append(label)
        return len(self._edges) - 1

    def add_edge_by_keys(self, keyed_vertices: Iterable[Tuple[Hashable, Label]]) -> int:
        """Add a hyperedge given ``(key, label)`` pairs, creating vertices lazily."""
        edge = [self.vertex_for_key(key, label) for key, label in keyed_vertices]
        return self.add_edge(edge)

    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def build(self) -> Hypergraph:
        """Freeze the builder into an immutable :class:`Hypergraph`."""
        labelled = [label is not None for label in self._edge_labels]
        if any(labelled) and not all(labelled):
            raise HypergraphError(
                "either all hyperedges carry a label or none do"
            )
        edge_labels = self._edge_labels if any(labelled) else None
        return Hypergraph(self._labels, self._edges, edge_labels=edge_labels)
