"""Worker supervision: keep a local shard-worker pool alive.

The elastic runtime's third leg (next to discovery —
:mod:`repro.parallel.registry` — and the coordinator's
``admit``/``drain``): a :class:`WorkerSupervisor` owns the
``num_shards × num_replicas`` local ``serve-shard`` processes of one
pool, health-checks them, and restarts crashed ones under the shared
:class:`~repro.parallel.tasks.RetryPolicy` jittered backoff with a
per-slot restart budget.

Restart policy
--------------
Each (shard, replica) slot keeps its own budget and backoff clock:

* A slot whose process dies is **not** restarted inline — the death is
  noted and the next restart *attempt time* is scheduled with the
  retry policy's jittered exponential delay (seeded per slot identity,
  so schedules are reproducible).  :meth:`poll` performs the restart
  when the attempt time has passed.  The supervisor therefore never
  busy-restarts a crash-looping worker.
* A restart that fails (the fresh process dies before reporting ready)
  consumes budget exactly like a crash.
* A slot that exhausts its budget is marked ``exhausted`` and left
  down.  That is *graceful degradation*, not an error: the pool keeps
  serving at reduced K as long as any replica of every range survives
  (the coordinator's failover handles the rest).  Only when **zero**
  supervised workers remain alive and every slot is out of budget does
  :meth:`poll` raise — there is nothing left to serve with.

``repro supervise`` is the CLI wrapper; ``make test-elastic`` and the
``elastic-smoke`` CI job kill a supervised worker and assert the
restart (see ``docs/ARCHITECTURE.md`` "Elastic runtime & operations").
"""

from __future__ import annotations

import logging
import random
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import SchedulerError
from .net_executor import spawn_local_cluster
from .tasks import RetryPolicy, default_seed

logger = logging.getLogger(__name__)

#: Default number of restarts each (shard, replica) slot is granted.
DEFAULT_RESTART_BUDGET = 3

#: Restart backoff: same shape as the coordinator's connect retries,
#: but starting slower — a worker restart means a process died, and
#: hammering a host that is OOM-killing workers helps nobody.
RESTART_RETRY = RetryPolicy(
    attempts=DEFAULT_RESTART_BUDGET, base_delay=0.2, max_delay=5.0
)


@dataclass(frozen=True)
class SlotStatus:
    """Point-in-time health snapshot of one supervised worker slot."""

    shard_id: int
    replica_id: int
    state: str  #: ``running`` | ``backoff`` | ``exhausted`` | ``stopped``
    address: "Tuple[str, int] | None"
    pid: "int | None"
    restarts: int  #: restarts consumed so far
    restart_budget: int
    next_attempt_at: "float | None"  #: monotonic deadline while in backoff

    @property
    def alive(self) -> bool:
        return self.state == "running"


class _Slot:
    """Mutable supervision state for one (shard, replica) worker."""

    __slots__ = (
        "shard_id", "replica_id", "restarts", "next_attempt_at",
        "exhausted", "rng",
    )

    def __init__(self, shard_id: int, replica_id: int, seed: int) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.restarts = 0
        self.next_attempt_at: "float | None" = None
        self.exhausted = False
        # Per-slot jitter stream: reproducible backoff schedules, and
        # no two slots share a schedule (no synchronised restart herd).
        self.rng = random.Random(
            0x5AFE ^ (shard_id << 20) ^ (replica_id << 4) ^ seed
        )


class WorkerSupervisor:
    """Own, health-check and restart a local shard-worker pool.

    :meth:`start` boots the ``num_shards × num_replicas`` workers (via
    :func:`~repro.parallel.net_executor.spawn_local_cluster`, so the
    pool is byte-for-byte the pool every test and benchmark uses);
    :meth:`poll` is one supervision step — call it from your own loop,
    or let :meth:`run_forever` drive it.  With ``announce`` set the
    supervised workers also register with a
    :class:`~repro.parallel.registry.WorkerRegistry`, which is how a
    coordinator discovers restarts without the supervisor telling it
    anything (the fresh worker announces its fresh port).
    """

    def __init__(
        self,
        graph,
        num_shards: int,
        index_backend: "str | None" = None,
        seed: "int | None" = None,
        num_replicas: int = 1,
        sharding: "str | None" = None,
        start_method: "str | None" = None,
        announce: "Tuple[str, int] | None" = None,
        heartbeat_interval: "float | None" = None,
        restart_budget: int = DEFAULT_RESTART_BUDGET,
        retry: "RetryPolicy | None" = None,
        ready_timeout: float = 30.0,
        chaos=None,
    ) -> None:
        if restart_budget < 0:
            raise SchedulerError("restart_budget must be >= 0")
        self.graph = graph
        self.num_shards = num_shards
        self.num_replicas = num_replicas
        self.index_backend = index_backend
        self.seed = default_seed() if seed is None else seed
        self.sharding = sharding
        self.start_method = start_method
        self.announce = announce
        self.heartbeat_interval = heartbeat_interval
        self.restart_budget = restart_budget
        self.retry = RESTART_RETRY if retry is None else retry
        self.ready_timeout = ready_timeout
        self.chaos = chaos
        self.cluster = None
        self._slots: "List[_Slot]" = []

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "WorkerSupervisor":
        """Boot the pool; idempotent."""
        if self.cluster is not None:
            return self
        self.cluster = spawn_local_cluster(
            self.graph,
            self.num_shards,
            self.index_backend,
            seed=self.seed,
            start_method=self.start_method,
            ready_timeout=self.ready_timeout,
            sharding=self.sharding,
            num_replicas=self.num_replicas,
            chaos=self.chaos,
            announce=self.announce,
            heartbeat_interval=self.heartbeat_interval,
        )
        self._slots = [
            _Slot(shard_id, replica_id, self.seed)
            for shard_id in range(self.num_shards)
            for replica_id in range(self.num_replicas)
        ]
        logger.info(
            "supervising %d shard worker(s) (%d shard(s) x K=%d)",
            len(self._slots), self.num_shards, self.num_replicas,
        )
        return self

    def close(self) -> None:
        """Stop every supervised worker; idempotent."""
        if self.cluster is not None:
            self.cluster.close()
            self.cluster = None
        self._slots = []

    def __enter__(self) -> "WorkerSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection ---------------------------------------------------

    @property
    def addresses(self) -> "List[Tuple[str, int]]":
        """Current worker addresses, shard-major (stale entries for
        down slots — discovery via the registry is the live view)."""
        self._require_started()
        return list(self.cluster.addresses)

    def live_count(self) -> int:
        self._require_started()
        return sum(
            1 for process in self.cluster.processes if process.is_alive()
        )

    def status(self) -> "List[SlotStatus]":
        """Health snapshot of every slot, shard-major order."""
        self._require_started()
        out: "List[SlotStatus]" = []
        for slot in self._slots:
            index = slot.shard_id * self.num_replicas + slot.replica_id
            process = self.cluster.processes[index]
            if process.is_alive():
                state = "running"
                address = self.cluster.addresses[index]
            elif slot.exhausted:
                state = "exhausted"
                address = None
            elif slot.next_attempt_at is not None:
                # Due or not: the next poll() decides; either way the
                # slot is between death and restart.
                state = "backoff"
                address = None
            else:
                state = "stopped"
                address = None
            out.append(SlotStatus(
                shard_id=slot.shard_id,
                replica_id=slot.replica_id,
                state=state,
                address=address,
                pid=process.pid if process.is_alive() else None,
                restarts=slot.restarts,
                restart_budget=self.restart_budget,
                next_attempt_at=slot.next_attempt_at,
            ))
        return out

    # -- supervision -----------------------------------------------------

    def poll(self) -> int:
        """One supervision step; returns the number of restarts it
        performed.

        Detects dead workers, schedules their restart under the retry
        policy's jittered backoff, restarts the ones whose attempt time
        has come, and marks slots that ran out of budget as exhausted.
        Raises :class:`SchedulerError` only when the pool is
        *unservable*: zero live workers and zero budget anywhere.
        """
        self._require_started()
        now = time.monotonic()
        restarted = 0
        for slot in self._slots:
            index = slot.shard_id * self.num_replicas + slot.replica_id
            process = self.cluster.processes[index]
            if process.is_alive() or slot.exhausted:
                continue
            if slot.next_attempt_at is None:
                # Fresh death: schedule, don't restart inline.
                if slot.restarts >= self.restart_budget:
                    self._exhaust(slot, "died")
                    continue
                delay = self.retry.delay(slot.restarts, slot.rng)
                slot.next_attempt_at = now + delay
                logger.warning(
                    "shard %d replica %d died (exit code %s); restart "
                    "%d/%d in %.2fs",
                    slot.shard_id, slot.replica_id, process.exitcode,
                    slot.restarts + 1, self.restart_budget, delay,
                )
                continue
            if slot.next_attempt_at > now:
                continue  # still backing off
            slot.restarts += 1
            slot.next_attempt_at = None
            try:
                address = self.cluster.respawn(
                    slot.shard_id, slot.replica_id
                )
            except SchedulerError as exc:
                if slot.restarts >= self.restart_budget:
                    self._exhaust(slot, f"restart failed: {exc}")
                else:
                    delay = self.retry.delay(slot.restarts, slot.rng)
                    slot.next_attempt_at = time.monotonic() + delay
                    logger.warning(
                        "shard %d replica %d restart failed (%s); "
                        "retry %d/%d in %.2fs",
                        slot.shard_id, slot.replica_id, exc,
                        slot.restarts + 1, self.restart_budget, delay,
                    )
                continue
            restarted += 1
            logger.info(
                "restarted shard %d replica %d at %s:%s (restart %d/%d)",
                slot.shard_id, slot.replica_id, address[0], address[1],
                slot.restarts, self.restart_budget,
            )
        if self.live_count() == 0 and all(
            slot.exhausted for slot in self._slots
        ):
            raise SchedulerError(
                "every supervised worker is down and out of restart "
                "budget; nothing left to serve with"
            )
        return restarted

    def run_forever(
        self,
        duration: "float | None" = None,
        poll_interval: float = 0.2,
    ) -> int:
        """Drive :meth:`poll` until ``duration`` elapses (forever when
        None) or the pool becomes unservable; returns the total number
        of restarts performed.  KeyboardInterrupt exits cleanly."""
        self._require_started()
        deadline = (
            None if duration is None else time.monotonic() + duration
        )
        total = 0
        try:
            while deadline is None or time.monotonic() < deadline:
                total += self.poll()
                time.sleep(poll_interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        return total

    # -- helpers ---------------------------------------------------------

    def _require_started(self) -> None:
        if self.cluster is None:
            raise SchedulerError(
                "supervisor is not running; call start() first"
            )

    def _exhaust(self, slot: _Slot, cause: str) -> None:
        slot.exhausted = True
        slot.next_attempt_at = None
        live = self.live_count()
        logger.error(
            "shard %d replica %d is out of restart budget (%d/%d, %s); "
            "degrading — %d supervised worker(s) still live",
            slot.shard_id, slot.replica_id, slot.restarts,
            self.restart_budget, cause, live,
        )
