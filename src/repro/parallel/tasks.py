"""Tasks: the minimal scheduling unit of HGMatch (Definition VI.1).

A task carries nothing but the tuple of data hyperedge ids matched so
far; every other piece of state is recomputed from it in O(total arity).
That is what makes tasks cheap to spawn, cheap to steal, and what gives
the scheduler its memory bound (Theorem VI.1).

Three task kinds exist, one per dataflow operator:

* ``TSCAN``  — the root task; expands the empty embedding by scanning the
  first query hyperedge's signature partition,
* ``TEXPAND`` — expands one partial embedding by the next hyperedge,
* ``TSINK``  — a complete embedding reaching the sink (counted/output).

The executors never materialise explicit ``TSINK`` objects: a child whose
length equals the plan length is consumed on the spot, which is
behaviourally identical and avoids a million tiny allocations.
"""

from __future__ import annotations

import logging
import os
import random
from dataclasses import dataclass
from typing import Tuple

logger = logging.getLogger("repro.parallel")

#: A partial embedding: matched data hyperedge ids for steps 0..k-1.
PartialEmbedding = Tuple[int, ...]

#: The root task (the empty partial embedding, i.e. TSCAN).
ROOT_TASK: PartialEmbedding = ()


def default_seed() -> int:
    """The process-wide scheduler seed: ``REPRO_SEED`` or 0.

    Every executor RNG (steal-victim selection in the threaded,
    simulated and multiprocess schedulers) is seeded per job by deriving
    from this value, never from the process-global :mod:`random` state —
    so two runs of the same job under the same ``REPRO_SEED`` make
    identical steal decisions, in every worker thread and every worker
    process, and cross-process tests can assert exact reproducibility.

    Resolved at call time (like ``REPRO_INDEX_BACKEND``) so a test
    session or deployment can switch seeds without touching call sites.
    """
    value = os.environ.get("REPRO_SEED")
    try:
        return int(value) if value else 0
    except ValueError:
        raise ValueError(
            f"REPRO_SEED must be an integer, got {value!r}"
        ) from None


def join_or_kill(process, timeout: float = 5.0, label: str = "worker") -> bool:
    """Join ``process``, escalating terminate → kill instead of leaking.

    Every join in the shard runtimes funnels through here so a stuck
    worker can never silently survive its pool: a process that misses
    the ``timeout`` join is terminated (SIGTERM) with a logged warning,
    and one that survives *that* is killed (SIGKILL) — each escalation
    gets its own ``timeout`` join.  Returns True when the process ended
    by itself within the first join, False when escalation was needed
    (the caller's cleanup still completed either way).
    """
    process.join(timeout=timeout)
    if not process.is_alive():
        return True
    logger.warning(
        "%s (pid %s) did not exit within %.1fs; terminating",
        label, process.pid, timeout,
    )
    process.terminate()
    process.join(timeout=timeout)
    if not process.is_alive():
        return False
    logger.warning(
        "%s (pid %s) survived terminate; killing",
        label, process.pid,
    )
    kill = getattr(process, "kill", process.terminate)
    kill()
    process.join(timeout=timeout)
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with jittered exponential backoff.

    ``delay(attempt)`` for attempts ``0, 1, 2, ...`` grows
    ``base_delay · 2^attempt`` capped at ``max_delay``, stretched by a
    uniform ``[0, jitter]`` fraction so a pool of coordinators (or one
    coordinator's many workers) never retries in lockstep.  The jitter
    draws from a caller-supplied :class:`random.Random` — seeded, so
    retry schedules are as reproducible as everything else here.

    Shared by every retry loop in the shard runtimes: coordinator →
    worker TCP connects, spawned-worker ready polling, the supervisor's
    restart backoff and the announcer's registry reconnects.  Lives
    here (next to :func:`join_or_kill`) because it is scheduling
    policy, not socket code.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def delay(
        self, attempt: int, rng: "random.Random | None" = None
    ) -> float:
        base = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        if rng is None or self.jitter <= 0:
            return base
        return base * (1.0 + self.jitter * rng.random())


def task_kind(task: PartialEmbedding, num_steps: int) -> str:
    """Classify a task as ``TSCAN`` / ``TEXPAND`` / ``TSINK``."""
    if not task:
        return "TSCAN"
    if len(task) >= num_steps:
        return "TSINK"
    return "TEXPAND"


@dataclass
class WorkerStats:
    """Per-worker accounting used by the load-balancing experiment."""

    worker_id: int
    tasks_executed: int = 0
    embeddings: int = 0
    busy_time: float = 0.0
    steal_attempts: int = 0
    steals_succeeded: int = 0
    tasks_stolen: int = 0
    peak_queue: int = 0
    #: Bytes of candidate payloads this worker shipped across a process
    #: boundary (multiprocess executor only; 0 for thread workers).
    payload_bytes: int = 0
    #: CPU seconds this worker's own thread spent expanding levels
    #: (``time.thread_time`` deltas; shard executors only).  Unlike
    #: ``busy_time`` — a wall-clock span that inflates with scheduler
    #: contention when more workers than cores run concurrently — this
    #: measures the work a shard actually performed, which is what the
    #: skew benchmark gates on and what the rebalancer feeds back into
    #: the range cut.
    cpu_time: float = 0.0

    def as_row(self) -> dict:
        return {
            "worker": self.worker_id,
            "tasks": self.tasks_executed,
            "embeddings": self.embeddings,
            "busy_time": self.busy_time,
            "cpu_time": self.cpu_time,
            "steals": self.steals_succeeded,
            "stolen_tasks": self.tasks_stolen,
            "peak_queue": self.peak_queue,
            "payload_bytes": self.payload_bytes,
        }


def worker_loads(stats: "list[WorkerStats]") -> "list[float]":
    """Per-worker observed load, ordered by worker id.

    Prefers the contention-robust :attr:`WorkerStats.cpu_time` and
    falls back to :attr:`WorkerStats.busy_time` for executors that do
    not record CPU deltas.  This is the one definition shared by the
    skew benchmark's imbalance metric and the shard rebalancer, so the
    number being gated is the number being fed back.
    """
    ordered = sorted(stats, key=lambda entry: entry.worker_id)
    if any(entry.cpu_time > 0 for entry in ordered):
        return [entry.cpu_time for entry in ordered]
    return [entry.busy_time for entry in ordered]


def load_imbalance(stats: "list[WorkerStats]") -> float:
    """Max/mean per-worker load — 1.0 is perfect balance.

    The critical path of a level-synchronous job is its slowest shard,
    so this ratio is exactly the factor the level barrier loses to skew.
    """
    loads = worker_loads(stats)
    mean = sum(loads) / max(len(loads), 1)
    if mean <= 0:
        return 1.0
    return max(loads) / mean
