"""The work-stealing task deque (Section VI-C).

Each worker owns one deque.  The owner pushes newly spawned tasks to the
*head* and pops from the *head* (LIFO — the property behind the
scheduler's memory bound); thieves steal *half* the tasks from the
*tail*, which hands over the oldest (shallowest, therefore largest)
subtrees and keeps steal frequency low.

The paper uses a lock-free Chase–Lev deque; under CPython the GIL already
serialises bytecode, so this implementation uses a plain mutex per deque
— the semantics (LIFO owner end, steal-half tail end) are what the
experiments depend on, and those are preserved exactly.  The lock also
keeps the structure correct under free-threaded builds.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Generic, List, Optional, TypeVar

T = TypeVar("T")


class WorkStealingDeque(Generic[T]):
    """A double-ended task queue with owner LIFO access and tail stealing."""

    __slots__ = ("_items", "_lock", "peak_size")

    def __init__(self) -> None:
        self._items: deque = deque()
        self._lock = threading.Lock()
        #: High-water mark of the queue length (memory accounting).
        self.peak_size = 0

    def push(self, item: T) -> None:
        """Owner: push a freshly spawned task onto the head."""
        with self._lock:
            self._items.appendleft(item)
            if len(self._items) > self.peak_size:
                self.peak_size = len(self._items)

    def push_many(self, items: List[T]) -> None:
        """Owner: push several tasks; the *last* item ends up on the head.

        Children of one expansion are pushed together so the LIFO order
        walks them depth-first in their natural order.
        """
        with self._lock:
            for item in items:
                self._items.appendleft(item)
            if len(self._items) > self.peak_size:
                self.peak_size = len(self._items)

    def pop(self) -> Optional[T]:
        """Owner: pop the most recently pushed task (head), or None."""
        with self._lock:
            if not self._items:
                return None
            return self._items.popleft()

    def steal_half(self) -> List[T]:
        """Thief: atomically remove and return half the tasks from the tail.

        Returns the stolen tasks oldest-first (the thief pushes them onto
        its own deque, restoring LIFO locally).  Stealing from a deque
        with a single task takes that task; an empty deque yields ``[]``.
        """
        with self._lock:
            count = len(self._items)
            if count == 0:
                return []
            take = max(1, count // 2)
            stolen = [self._items.pop() for _ in range(take)]
            return stolen

    def steal_one(self) -> Optional[T]:
        """Thief: remove a single task from the tail (ablation variant)."""
        with self._lock:
            if not self._items:
                return None
            return self._items.pop()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def snapshot_size(self) -> int:
        """Racy size read without taking the lock (victim selection)."""
        return len(self._items)
