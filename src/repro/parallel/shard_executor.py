"""The multiprocess executor: one worker process per store shard.

This is the execution engine that escapes the GIL for real: the
partitioned store is split along its row spaces
(:class:`repro.hypergraph.sharding.StoreShard`), each worker process
builds and owns exactly one shard (~``1/num_shards`` of the index), and
enumeration proceeds level-synchronously over the paper's task tree:

1. the parent broadcasts the current frontier of partial embeddings
   (self-contained edge-id tuples, Definition VI.1) to every shard;
2. each shard runs Algorithm 4 + Algorithm 5 for every partial against
   *its rows only* — candidate generation distributes over the
   row-disjoint split (see :mod:`repro.hypergraph.sharding`), and each
   surviving candidate is validated in exactly the one shard that owns
   its row, so no expansion work is duplicated across processes;
3. survivors come back as compact wire payloads
   (:meth:`repro.core.candidates.CandidateSet.to_bytes` in global row
   coordinates — row bitmasks or roaring-style chunk maps, never
   decoded edge-id lists), and the parent composes the per-shard sets
   with the container-pairwise ``|`` algebra
   (:func:`repro.core.candidates.compose_candidate_sets`) before
   extending the frontier.

The per-shard duplication is limited to the *query-side* anchor-image
filtering (a scan of the previous images' vertices, independent of
partition size); all data-side work — posting algebra, validation —
splits across shards.  ``MatchCounters`` come back per worker with
their ``work_model`` tags and are merged by the parent
(:meth:`~repro.core.counters.MatchCounters.merge` surfaces model
mixtures instead of silently adding incomparable units), and per-shard
:class:`~repro.parallel.tasks.WorkerStats` record the payload bytes
that actually crossed each process boundary.

Workers are spawn-safe: the worker entry point is a module-level
function, every message crosses a :class:`multiprocessing.Pipe` as
picklable data, and no global state is assumed — ``start_method`` may
be ``"fork"``, ``"spawn"`` or ``"forkserver"``.  The pool persists
across queries (shards are built once per data graph) and worker
processes are daemonic, so an exiting parent never leaks them.
"""

from __future__ import annotations

import pickle
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from typing import Sequence

from ..core.candidates import AnchorUnionMemo, VertexStepState
from ..core.counters import WORK_UNIT_MODELS, MatchCounters
from ..core.plan import build_execution_plan
from ..errors import SchedulerError
from ..hypergraph import Hypergraph
from ..hypergraph.sharding import StoreShard
from ..hypergraph.storage import resolve_index_backend
from .executor import ParallelResult
from .level_sync import MASK_BACKENDS, expand_level
from .tasks import WorkerStats, default_seed


# ----------------------------------------------------------------------
# Worker side (runs in the shard's own process)
# ----------------------------------------------------------------------


def _shard_worker_main(
    conn,
    graph: Hypergraph,
    shard_id: int,
    num_shards: int,
    index_backend: str,
) -> None:
    """Worker entry point: build the shard once, then serve jobs.

    Message protocol (all tuples, first element is the kind):
    ``("job", query, order)`` resets per-job state; ``("level", step,
    frontier)`` answers with the level reply; ``("collect",)`` returns
    ``(counters, stats)``; ``("stop",)`` exits.  Any worker-side
    exception is reported as ``("error", traceback)`` — the parent
    raises it as a :class:`SchedulerError`.
    """
    try:
        shard = StoreShard.build(graph, shard_id, num_shards, index_backend)
        memo = AnchorUnionMemo()
        mask_validation = index_backend in MASK_BACKENDS
        plan = None
        state: "VertexStepState | None" = None
        counters = MatchCounters()
        stats = WorkerStats(worker_id=shard_id)
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "level":
                _, step, frontier = message
                reply = expand_level(
                    graph, shard, plan, step, frontier, state,
                    counters, stats, memo, mask_validation,
                )
                if step == plan.num_steps - 1:
                    # Piggyback the job accounting on the final level:
                    # saves the parent a whole collect round trip.
                    reply = reply + (counters, stats)
                conn.send(reply)
            elif kind == "job":
                _, query, order = message
                plan = build_execution_plan(
                    query, order, index_backend=index_backend
                )
                counters = MatchCounters()
                counters.note_work_model(
                    WORK_UNIT_MODELS.get(index_backend, "")
                )
                stats = WorkerStats(worker_id=shard_id)
                state = VertexStepState(graph)
            elif kind == "collect":
                conn.send((counters, stats))
            elif kind == "stop":
                return
            else:  # pragma: no cover - protocol misuse
                raise SchedulerError(f"unknown worker message {kind!r}")
    except (EOFError, KeyboardInterrupt):  # parent went away
        return
    except BaseException:  # report, then die visibly
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):  # pragma: no cover - pipe gone
            pass


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class ProcessShardExecutor:
    """Run matching jobs on ``num_shards`` worker processes.

    Parameters
    ----------
    num_shards:
        Worker-process count; each worker owns one contiguous row-range
        shard of every signature partition.
    index_backend:
        Posting-list representation the shards build (``None`` defers
        to ``REPRO_INDEX_BACKEND``/``"merge"``); must match the
        engine's backend so payloads decode into the parent's store.
    start_method:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/
        ``"forkserver"``); ``None`` uses the platform default.  The
        worker protocol is spawn-safe.
    seed:
        Scheduler seed recorded for the job (``None`` resolves to
        ``REPRO_SEED``); the level-synchronous protocol is fully
        deterministic, so this only namespaces future stochastic
        policies.
    """

    def __init__(
        self,
        num_shards: int,
        index_backend: "str | None" = None,
        start_method: "str | None" = None,
        seed: "int | None" = None,
    ) -> None:
        if num_shards < 1:
            raise SchedulerError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.index_backend = resolve_index_backend(index_backend)
        self.start_method = start_method
        self.seed = default_seed() if seed is None else seed
        self._graph: "Hypergraph | None" = None
        self._processes: list = []
        self._conns: list = []

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self, engine) -> None:
        if engine.index_backend != self.index_backend:
            raise SchedulerError(
                f"engine backend {engine.index_backend!r} does not match "
                f"executor backend {self.index_backend!r}"
            )
        if self._graph is engine.data and self._processes:
            return
        self.close()
        context = (
            get_context(self.start_method)
            if self.start_method is not None
            else get_context()
        )
        for shard_id in range(self.num_shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(
                    child_conn,
                    engine.data,
                    shard_id,
                    self.num_shards,
                    self.index_backend,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._conns.append(parent_conn)
        self._graph = engine.data

    def close(self) -> None:
        """Stop the worker pool (idempotent)."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        self._processes = []
        self._conns = []
        self._graph = None

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- messaging ------------------------------------------------------

    def _broadcast(self, message) -> None:
        # Pickle once, write the same bytes to every pipe (the frontier
        # is the big payload; Connection.send would re-pickle per shard).
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        for shard_id, conn in enumerate(self._conns):
            try:
                conn.send_bytes(payload)
            except (BrokenPipeError, OSError):
                # A worker died between jobs; tear down so the next run
                # rebuilds a healthy pool.
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} is gone; pool torn down"
                ) from None

    def _gather(self) -> list:
        replies = [None] * self.num_shards
        pending = {conn: i for i, conn in enumerate(self._conns)}
        while pending:
            for conn in _connection_wait(list(pending)):
                shard_id = pending.pop(conn)
                try:
                    reply = conn.recv()
                except EOFError:
                    # Tear the pool down: the dead worker can't serve the
                    # next job, and the survivors hold stale replies.
                    self.close()
                    raise SchedulerError(
                        f"shard worker {shard_id} died mid-job"
                    ) from None
                if (
                    isinstance(reply, tuple)
                    and reply
                    and reply[0] == "error"
                ):
                    message = reply[1]
                    self.close()
                    raise SchedulerError(
                        f"shard worker {shard_id} failed:\n{message}"
                    )
                replies[shard_id] = reply
        return replies

    # -- execution ------------------------------------------------------

    def run(
        self,
        engine,
        query: Hypergraph,
        order: "Sequence[int] | None" = None,
        time_budget: "float | None" = None,
    ) -> ParallelResult:
        """Execute one matching job across the shard pool.

        Delegates to the transport-agnostic level-synchronous protocol
        (:func:`repro.parallel.level_sync.run_level_synchronous`) — the
        same loop the socket executor runs, so the two transports
        cannot drift apart.  Counts are bit-identical to the sequential
        engine; ``time_budget`` is enforced at level granularity.
        """
        from .level_sync import run_level_synchronous  # lazy: avoid cycle

        return run_level_synchronous(
            self, engine, query, order=order, time_budget=time_budget
        )
