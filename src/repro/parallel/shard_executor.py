"""The multiprocess executor: one worker process per store shard.

This is the execution engine that escapes the GIL for real: the
partitioned store is split along its row spaces
(:class:`repro.hypergraph.sharding.StoreShard`), each worker process
builds and owns exactly one shard (~``1/num_shards`` of the index), and
enumeration proceeds level-synchronously over the paper's task tree:

1. the parent broadcasts the current frontier of partial embeddings
   (self-contained edge-id tuples, Definition VI.1) to every shard;
2. each shard runs Algorithm 4 + Algorithm 5 for every partial against
   *its rows only* — candidate generation distributes over the
   row-disjoint split (see :mod:`repro.hypergraph.sharding`), and each
   surviving candidate is validated in exactly the one shard that owns
   its row, so no expansion work is duplicated across processes;
3. survivors come back as compact wire payloads
   (:meth:`repro.core.candidates.CandidateSet.to_bytes` in global row
   coordinates — row bitmasks or roaring-style chunk maps, never
   decoded edge-id lists), and the parent composes the per-shard sets
   with the container-pairwise ``|`` algebra
   (:func:`repro.core.candidates.compose_candidate_sets`) before
   extending the frontier.

The per-shard duplication is limited to the *query-side* anchor-image
filtering (a scan of the previous images' vertices, independent of
partition size); all data-side work — posting algebra, validation —
splits across shards.  ``MatchCounters`` come back per worker with
their ``work_model`` tags and are merged by the parent
(:meth:`~repro.core.counters.MatchCounters.merge` surfaces model
mixtures instead of silently adding incomparable units), and per-shard
:class:`~repro.parallel.tasks.WorkerStats` record the payload bytes
that actually crossed each process boundary.

Workers are spawn-safe: the worker entry point is a module-level
function, every message crosses a :class:`multiprocessing.Pipe` as
picklable data, and no global state is assumed — ``start_method`` may
be ``"fork"``, ``"spawn"`` or ``"forkserver"``.  The pool persists
across queries (shards are built once per data graph) and worker
processes are daemonic, so an exiting parent never leaks them.
"""

from __future__ import annotations

import pickle
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from typing import Sequence

from ..core.candidates import AnchorUnionMemo, VertexStepState
from ..core.counters import WORK_UNIT_MODELS, MatchCounters
from ..core.plan import build_execution_plan
from ..errors import SchedulerError
from ..hypergraph import Hypergraph
from ..hypergraph.dynamic import DynamicHypergraph
from ..hypergraph.sharding import (
    StoreShard,
    mutate_range_table,
    resolve_sharding,
    shard_grouping,
)
from ..hypergraph.storage import resolve_index_backend
from .executor import ParallelResult
from .level_sync import MASK_BACKENDS, expand_level, plan_pool_rebalance
from .tasks import WorkerStats, default_seed, join_or_kill


# ----------------------------------------------------------------------
# Worker side (runs in the shard's own process)
# ----------------------------------------------------------------------


def _shard_worker_main(
    conn,
    graph: Hypergraph,
    shard_id: int,
    num_shards: int,
    index_backend: str,
    sharding: str = "uniform",
) -> None:
    """Worker entry point: build the shard once, then serve jobs.

    Message protocol (all tuples, first element is the kind):
    ``("job", query, order)`` resets per-job state; ``("level", step,
    frontier)`` answers with the level reply; ``("collect",)`` returns
    ``(counters, stats)``; ``("rebalance", label, ranges)`` rebuilds
    the shard from an explicit range slice (between jobs) and answers
    ``("rebalanced", label)``; ``("mutate", batch)`` applies one
    committed mutation batch to the worker's own graph copy and shard
    (between jobs) and answers ``("mutated", version, edges,
    vertices)``; ``("stop",)`` exits.  Any worker-side exception is
    reported as ``("error", traceback)`` — the parent raises it as a
    :class:`SchedulerError`.
    """
    try:
        shard = StoreShard.build(
            graph, shard_id, num_shards, index_backend, sharding
        )
        memo = AnchorUnionMemo()
        mask_validation = index_backend in MASK_BACKENDS
        plan = None
        state: "VertexStepState | None" = None
        counters = MatchCounters()
        stats = WorkerStats(worker_id=shard_id)
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "level":
                _, step, frontier = message
                reply = expand_level(
                    graph, shard, plan, step, frontier, state,
                    counters, stats, memo, mask_validation,
                )
                if step == plan.num_steps - 1:
                    # Piggyback the job accounting on the final level:
                    # saves the parent a whole collect round trip.
                    reply = reply + (counters, stats)
                conn.send(reply)
            elif kind == "job":
                _, query, order = message
                plan = build_execution_plan(
                    query, order, index_backend=index_backend
                )
                counters = MatchCounters()
                counters.note_work_model(
                    WORK_UNIT_MODELS.get(index_backend, "")
                )
                stats = WorkerStats(worker_id=shard_id)
                state = VertexStepState(graph)
            elif kind == "collect":
                conn.send((counters, stats))
            elif kind == "rebalance":
                _, label, ranges = message
                if ranges == shard.ranges():
                    # Boundaries didn't touch this shard: adopt the new
                    # placement label, keep the warm indices.
                    shard.sharding = label
                else:
                    shard = StoreShard.from_ranges(
                        graph, shard_grouping(graph), shard_id,
                        num_shards, index_backend, ranges, sharding=label,
                    )
                    # Cached anchor unions are masks over the *old*
                    # shard's rows; clearing is mandatory, not an
                    # optimisation.
                    memo.clear()
                conn.send(("rebalanced", label))
            elif kind == "mutate":
                _, batch = message
                if not isinstance(graph, DynamicHypergraph):
                    # First mutation promotes the worker's pickled copy;
                    # edge ids and row layouts are preserved, so the
                    # shard needs no rebuild.
                    graph = DynamicHypergraph.from_hypergraph(graph)
                result = graph.apply(batch)
                shard.apply_mutation_result(graph, result)
                # Cached anchor unions cover the pre-mutation rows;
                # clearing is mandatory, not an optimisation.  Job
                # state is likewise pre-mutation — drop it so a stray
                # "level" cannot run against the new rows.
                memo.clear()
                plan = None
                state = None
                conn.send((
                    "mutated", result.version,
                    graph.num_edges, graph.num_vertices,
                ))
            elif kind == "stop":
                return
            else:  # pragma: no cover - protocol misuse
                raise SchedulerError(f"unknown worker message {kind!r}")
    except (EOFError, KeyboardInterrupt):  # parent went away
        return
    except BaseException:  # report, then die visibly
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):  # pragma: no cover - pipe gone
            pass


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class ProcessShardExecutor:
    """Run matching jobs on ``num_shards`` worker processes.

    Parameters
    ----------
    num_shards:
        Worker-process count; each worker owns one contiguous row-range
        shard of every signature partition.
    index_backend:
        Posting-list representation the shards build (``None`` defers
        to ``REPRO_INDEX_BACKEND``/``"merge"``); must match the
        engine's backend so payloads decode into the parent's store.
    sharding:
        Shard placement mode (``"uniform"`` row counts or ``"balanced"``
        posting mass; ``None`` means uniform) — see
        :mod:`repro.hypergraph.sharding`.  On top of either mode,
        :meth:`rebalance` recuts the live pool's ranges from observed
        per-shard load between jobs.
    start_method:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/
        ``"forkserver"``); ``None`` uses the platform default.  The
        worker protocol is spawn-safe.
    seed:
        Scheduler seed recorded for the job (``None`` resolves to
        ``REPRO_SEED``); the level-synchronous protocol is fully
        deterministic, so this only namespaces future stochastic
        policies.
    """

    def __init__(
        self,
        num_shards: int,
        index_backend: "str | None" = None,
        sharding: "str | None" = None,
        start_method: "str | None" = None,
        seed: "int | None" = None,
    ) -> None:
        if num_shards < 1:
            raise SchedulerError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.index_backend = resolve_index_backend(index_backend)
        self.sharding = resolve_sharding(sharding)
        self.start_method = start_method
        self.seed = default_seed() if seed is None else seed
        self._graph: "Hypergraph | None" = None
        self._processes: list = []
        self._conns: list = []
        #: Current placement of the live pool: None until a rebalance
        #: materialises a table (the build modes are pure functions of
        #: the graph, so nothing needs to be stored for them).
        self._range_table = None
        self._sharding_label = self.sharding

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self, engine) -> None:
        if engine.index_backend != self.index_backend:
            raise SchedulerError(
                f"engine backend {engine.index_backend!r} does not match "
                f"executor backend {self.index_backend!r}"
            )
        if self._graph is engine.data and self._processes:
            return
        self.close()
        context = (
            get_context(self.start_method)
            if self.start_method is not None
            else get_context()
        )
        for shard_id in range(self.num_shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(
                    child_conn,
                    engine.data,
                    shard_id,
                    self.num_shards,
                    self.index_backend,
                    self.sharding,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._conns.append(parent_conn)
        self._graph = engine.data

    def close(self) -> None:
        """Stop the worker pool (idempotent)."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for index, process in enumerate(self._processes):
            join_or_kill(process, timeout=2.0, label=f"shard worker #{index}")
        self._processes = []
        self._conns = []
        self._graph = None
        # A rebalanced layout lives exactly as long as the pool that
        # observed the load; a fresh pool starts from the build mode.
        self._range_table = None
        self._sharding_label = self.sharding

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- messaging ------------------------------------------------------

    def _broadcast(self, message) -> None:
        # Pickle once, write the same bytes to every pipe (the frontier
        # is the big payload; Connection.send would re-pickle per shard).
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        for shard_id, conn in enumerate(self._conns):
            try:
                conn.send_bytes(payload)
            except (BrokenPipeError, OSError):
                # A worker died between jobs; tear down so the next run
                # rebuilds a healthy pool.
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} is gone; pool torn down"
                ) from None

    def _gather_iter(self):
        """As-completed level replies: ``(shard_id, reply)`` pairs in
        arrival order (the streaming-compose hook of
        :func:`repro.parallel.level_sync.run_level_synchronous`)."""
        pending = {conn: i for i, conn in enumerate(self._conns)}
        while pending:
            for conn in _connection_wait(list(pending)):
                shard_id = pending.pop(conn)
                try:
                    reply = conn.recv()
                except EOFError:
                    # Tear the pool down: the dead worker can't serve the
                    # next job, and the survivors hold stale replies.
                    self.close()
                    raise SchedulerError(
                        f"shard worker {shard_id} died mid-job"
                    ) from None
                if (
                    isinstance(reply, tuple)
                    and reply
                    and reply[0] == "error"
                ):
                    message = reply[1]
                    self.close()
                    raise SchedulerError(
                        f"shard worker {shard_id} failed:\n{message}"
                    )
                yield shard_id, reply

    def _gather(self) -> list:
        replies = [None] * self.num_shards
        for shard_id, reply in self._gather_iter():
            replies[shard_id] = reply
        return replies

    # -- adaptive placement ----------------------------------------------

    def rebalance(self, worker_stats) -> int:
        """Recut the live pool's ranges from observed per-shard load.

        ``worker_stats`` is a completed run's
        :attr:`~repro.parallel.executor.ParallelResult.worker_stats`;
        the recut (see :func:`repro.hypergraph.sharding.
        rebalance_range_table`) shifts partition boundaries toward the
        underloaded shards while keeping every shard's position along
        the row axis, then ships *every* shard its slice of the new
        table — workers whose ranges didn't move merely adopt the new
        placement label (keeping their warm indices), so the pool
        always agrees on one label while the rebuild cost stays
        proportional to how wrong the old cut was.  Runs strictly
        between jobs.  Returns the number of shards rebuilt (0 when
        the observed load was already balanced).
        """
        if not self._conns or self._graph is None:
            raise SchedulerError(
                "no live pool to rebalance; run a job first"
            )
        plan = plan_pool_rebalance(self, worker_stats)
        if plan is None:
            return 0
        table, label, slices, moved = plan
        for shard_id in range(self.num_shards):
            try:
                self._conns[shard_id].send(
                    ("rebalance", label, slices[shard_id])
                )
            except (BrokenPipeError, OSError):
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} is gone; pool torn down"
                ) from None
        for shard_id in range(self.num_shards):
            try:
                ack = self._conns[shard_id].recv()
            except EOFError:
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} died during rebalance"
                ) from None
            if ack != ("rebalanced", label):
                message = ack[1] if ack and ack[0] == "error" else ack
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} failed to rebalance:\n"
                    f"{message}"
                )
        self._range_table = table
        self._sharding_label = label
        return len(moved)

    # -- mutation --------------------------------------------------------

    def mutate(self, engine, batch, result) -> int:
        """Propagate one committed mutation batch to the live pool.

        The engine has already applied ``batch`` locally (``result`` is
        its :class:`~repro.hypergraph.dynamic.MutationResult`); each
        worker applies the same batch to its own graph copy and
        incrementally maintains its shard, then acks with its new graph
        version — determinism of
        :meth:`~repro.hypergraph.dynamic.DynamicHypergraph.apply` makes
        every worker's result identical to the engine's, which the ack
        check enforces.  Runs strictly between jobs.  A pool that is
        not running needs nothing: its next ``_ensure_pool`` builds
        workers from the already-mutated graph.  Returns the number of
        workers that applied the batch.
        """
        if not self._processes:
            return 0
        expected = (
            "mutated", result.version,
            engine.data.num_edges, engine.data.num_vertices,
        )
        self._broadcast(("mutate", batch))
        for shard_id in range(self.num_shards):
            try:
                ack = self._conns[shard_id].recv()
            except EOFError:
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} died during mutate"
                ) from None
            if ack != expected:
                message = ack[1] if ack and ack[0] == "error" else ack
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} diverged on mutate "
                    f"(expected {expected!r}):\n{message}"
                )
        if self._range_table is not None:
            self._range_table = mutate_range_table(
                self._range_table, result, self.num_shards
            )
        # The first mutation promotes engine.data to a dynamic graph (a
        # new object); re-point the identity check so the warm pool —
        # which just applied the same batch — is reused, not rebuilt.
        self._graph = engine.data
        return self.num_shards

    # -- execution ------------------------------------------------------

    def run(
        self,
        engine,
        query: Hypergraph,
        order: "Sequence[int] | None" = None,
        time_budget: "float | None" = None,
        stream: bool = True,
    ) -> ParallelResult:
        """Execute one matching job across the shard pool.

        Delegates to the transport-agnostic level-synchronous protocol
        (:func:`repro.parallel.level_sync.run_level_synchronous`) — the
        same loop the socket executor runs, so the two transports
        cannot drift apart.  Counts are bit-identical to the sequential
        engine; ``time_budget`` is enforced at level granularity;
        ``stream=False`` forces the barrier gather (the benchmarks'
        baseline for the streaming-compose comparison).
        """
        from .level_sync import run_level_synchronous  # lazy: avoid cycle

        return run_level_synchronous(
            self, engine, query, order=order, time_budget=time_budget,
            stream=stream,
        )
