"""The multiprocess executor: one worker process per store shard.

This is the execution engine that escapes the GIL for real: the
partitioned store is split along its row spaces
(:class:`repro.hypergraph.sharding.StoreShard`), each worker process
builds and owns exactly one shard (~``1/num_shards`` of the index), and
enumeration proceeds level-synchronously over the paper's task tree:

1. the parent broadcasts the current frontier of partial embeddings
   (self-contained edge-id tuples, Definition VI.1) to every shard;
2. each shard runs Algorithm 4 + Algorithm 5 for every partial against
   *its rows only* — candidate generation distributes over the
   row-disjoint split (see :mod:`repro.hypergraph.sharding`), and each
   surviving candidate is validated in exactly the one shard that owns
   its row, so no expansion work is duplicated across processes;
3. survivors come back as compact wire payloads
   (:meth:`repro.core.candidates.CandidateSet.to_bytes` in global row
   coordinates — row bitmasks or roaring-style chunk maps, never
   decoded edge-id lists), and the parent composes the per-shard sets
   with the container-pairwise ``|`` algebra
   (:func:`repro.core.candidates.compose_candidate_sets`) before
   extending the frontier.

The per-shard duplication is limited to the *query-side* anchor-image
filtering (a scan of the previous images' vertices, independent of
partition size); all data-side work — posting algebra, validation —
splits across shards.  ``MatchCounters`` come back per worker with
their ``work_model`` tags and are merged by the parent
(:meth:`~repro.core.counters.MatchCounters.merge` surfaces model
mixtures instead of silently adding incomparable units), and per-shard
:class:`~repro.parallel.tasks.WorkerStats` record the payload bytes
that actually crossed each process boundary.

Workers are spawn-safe: the worker entry point is a module-level
function, every message crosses a :class:`multiprocessing.Pipe` as
picklable data, and no global state is assumed — ``start_method`` may
be ``"fork"``, ``"spawn"`` or ``"forkserver"``.  The pool persists
across queries (shards are built once per data graph) and worker
processes are daemonic, so an exiting parent never leaks them.
"""

from __future__ import annotations

import pickle
import time
from bisect import bisect_left
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from typing import List, Optional, Sequence, Tuple

from ..core.candidates import (
    AnchorUnionMemo,
    ChunkCandidates,
    MaskCandidates,
    VertexStepState,
    candidate_set_from_bytes,
    compose_candidate_sets,
    encode_chunks_payload,
    encode_mask_payload,
    encode_tuple_payload,
    generate_candidate_set,
)
from ..core.counters import WORK_UNIT_MODELS, MatchCounters
from ..core.plan import build_execution_plan
from ..core.validation import is_valid_expansion
from ..errors import SchedulerError, TimeoutExceeded
from ..hypergraph import Hypergraph
from ..hypergraph.index import chunks_from_rows
from ..hypergraph.sharding import StoreShard
from ..hypergraph.storage import resolve_index_backend
from .executor import ParallelResult
from .tasks import ROOT_TASK, PartialEmbedding, WorkerStats, default_seed

#: Backends whose survivors ship as row payloads (mask / chunk map);
#: the merge backend's native representation is the edge-id tuple.
_MASK_BACKENDS = ("bitset", "adaptive")


# ----------------------------------------------------------------------
# Worker side (runs in the shard's own process)
# ----------------------------------------------------------------------


def _encode_survivors(
    backend: str,
    rows: List[int],
    edges: List[int],
    row_base: int,
    index,
) -> "bytes | None":
    """Serialise one partial's accepted candidates in the backend's
    native wire representation, shifted into global row coordinates."""
    if backend == "bitset":
        if not rows:
            return None
        mask = 0
        for row in rows:
            mask |= 1 << row
        # Local mask + decode offset: payload bytes track the shard's
        # survivor span, not its global row base.
        return encode_mask_payload(mask, row_base)
    if backend == "adaptive":
        if not rows:
            return None
        chunks = chunks_from_rows(
            [row + row_base for row in rows], index.chunk_bits, index.array_max
        )
        # Sparse survivor sets often encode smaller as a bare mask (the
        # chunk framing costs 9 bytes per dense chunk / 7 + 4·n per
        # array); both sizes are closed-form, so pick the winner before
        # serialising anything.  The reader re-chunks either form.
        chunk_size = 5
        for container in chunks.values():
            if isinstance(container, int):
                chunk_size += 9 + (container.bit_length() + 7) // 8
            else:
                chunk_size += 7 + 4 * len(container)
        mask_size = 5 + (rows[-1] + 8) // 8  # rows ascending; span bytes
        if mask_size < chunk_size:
            mask = 0
            for row in rows:
                mask |= 1 << row
            return encode_mask_payload(mask, row_base)
        return encode_chunks_payload(chunks)
    if not edges:
        return None
    return encode_tuple_payload(edges)


def _expand_level(
    graph: Hypergraph,
    shard: StoreShard,
    plan,
    step: int,
    frontier: Sequence[PartialEmbedding],
    state: VertexStepState,
    counters: MatchCounters,
    stats: WorkerStats,
    memo: AnchorUnionMemo,
    mask_validation: bool,
) -> Tuple[str, "List[Optional[bytes]] | None", int]:
    """Expand every frontier partial against the shard's rows.

    Returns ``("level", payloads, embeddings)``: one payload (or None)
    per partial on intermediate steps, survivor *counts* on the final
    step (complete embeddings are consumed on the spot, like the other
    executors' implicit TSINK handling).
    """
    step_plan = plan.steps[step]
    final = step == plan.num_steps - 1
    partition = shard.partition(step_plan.signature)
    if partition is None:
        # The shard owns no rows of this signature; nothing to report.
        return ("level", None, 0)
    started = time.perf_counter()
    backend = shard.index_backend
    index = partition.index
    row_base = shard.row_base(step_plan.signature)
    edge_ids = partition.edge_ids
    step_tuples = state.step_tuples
    step_masks = state.step_masks if mask_validation else None
    payloads: "List[Optional[bytes]] | None" = None if final else []
    embeddings = 0
    for partial in frontier:
        vmap = state.advance(partial)
        candidates = generate_candidate_set(
            graph, partition, step_plan, partial, vmap, counters, memo=memo
        )
        if final:
            counters.final_candidates += len(candidates)
        partial_num_vertices = len(vmap)
        rows: List[int] = []
        edges: List[int] = []
        accepted = 0
        if type(candidates) is MaskCandidates:
            # Rows fall out of the bit scan for free.
            mask = candidates.mask
            row_to_edge = candidates.row_to_edge
            while mask:
                low = mask & -mask
                mask ^= low
                row = low.bit_length() - 1
                if is_valid_expansion(
                    graph, step_plan, vmap, partial_num_vertices,
                    row_to_edge[row], counters, final_step=final,
                    step_tuples=step_tuples, step_masks=step_masks,
                ):
                    accepted += 1
                    if not final:
                        rows.append(row)
        elif type(candidates) is ChunkCandidates:
            chunk_bits = index.chunk_bits
            row_to_edge = index.row_to_edge
            chunks = candidates.chunks
            for chunk in sorted(chunks):
                base = chunk << chunk_bits
                container = chunks[chunk]
                if isinstance(container, int):
                    while container:
                        low = container & -container
                        container ^= low
                        row = base + low.bit_length() - 1
                        if is_valid_expansion(
                            graph, step_plan, vmap, partial_num_vertices,
                            row_to_edge[row], counters, final_step=final,
                            step_tuples=step_tuples, step_masks=step_masks,
                        ):
                            accepted += 1
                            if not final:
                                rows.append(row)
                else:
                    for offset in container:
                        row = base + offset
                        if is_valid_expansion(
                            graph, step_plan, vmap, partial_num_vertices,
                            row_to_edge[row], counters, final_step=final,
                            step_tuples=step_tuples, step_masks=step_masks,
                        ):
                            accepted += 1
                            if not final:
                                rows.append(row)
        else:
            # Tuple candidates: the merge backend's native output, or a
            # mask backend's no-anchor scan / tiny array-container
            # result.  Rows (needed only for mask payloads) come from a
            # bisect into the ascending edge-id table.
            need_rows = not final and backend != "merge"
            for edge in candidates:
                if is_valid_expansion(
                    graph, step_plan, vmap, partial_num_vertices, edge,
                    counters, final_step=final,
                    step_tuples=step_tuples, step_masks=step_masks,
                ):
                    accepted += 1
                    if not final:
                        if need_rows:
                            rows.append(bisect_left(edge_ids, edge))
                        else:
                            edges.append(edge)
        stats.tasks_executed += 1
        if final:
            embeddings += accepted
            stats.embeddings += accepted
        else:
            payload = _encode_survivors(backend, rows, edges, row_base, index)
            if payload is not None:
                stats.payload_bytes += len(payload)
            payloads.append(payload)
    stats.busy_time += time.perf_counter() - started
    return ("level", payloads, embeddings)


def _shard_worker_main(
    conn,
    graph: Hypergraph,
    shard_id: int,
    num_shards: int,
    index_backend: str,
) -> None:
    """Worker entry point: build the shard once, then serve jobs.

    Message protocol (all tuples, first element is the kind):
    ``("job", query, order)`` resets per-job state; ``("level", step,
    frontier)`` answers with the level reply; ``("collect",)`` returns
    ``(counters, stats)``; ``("stop",)`` exits.  Any worker-side
    exception is reported as ``("error", traceback)`` — the parent
    raises it as a :class:`SchedulerError`.
    """
    try:
        shard = StoreShard.build(graph, shard_id, num_shards, index_backend)
        memo = AnchorUnionMemo()
        mask_validation = index_backend in _MASK_BACKENDS
        plan = None
        state: "VertexStepState | None" = None
        counters = MatchCounters()
        stats = WorkerStats(worker_id=shard_id)
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "level":
                _, step, frontier = message
                reply = _expand_level(
                    graph, shard, plan, step, frontier, state,
                    counters, stats, memo, mask_validation,
                )
                if step == plan.num_steps - 1:
                    # Piggyback the job accounting on the final level:
                    # saves the parent a whole collect round trip.
                    reply = reply + (counters, stats)
                conn.send(reply)
            elif kind == "job":
                _, query, order = message
                plan = build_execution_plan(
                    query, order, index_backend=index_backend
                )
                counters = MatchCounters()
                counters.note_work_model(
                    WORK_UNIT_MODELS.get(index_backend, "")
                )
                stats = WorkerStats(worker_id=shard_id)
                state = VertexStepState(graph)
            elif kind == "collect":
                conn.send((counters, stats))
            elif kind == "stop":
                return
            else:  # pragma: no cover - protocol misuse
                raise SchedulerError(f"unknown worker message {kind!r}")
    except (EOFError, KeyboardInterrupt):  # parent went away
        return
    except BaseException:  # report, then die visibly
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):  # pragma: no cover - pipe gone
            pass


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class ProcessShardExecutor:
    """Run matching jobs on ``num_shards`` worker processes.

    Parameters
    ----------
    num_shards:
        Worker-process count; each worker owns one contiguous row-range
        shard of every signature partition.
    index_backend:
        Posting-list representation the shards build (``None`` defers
        to ``REPRO_INDEX_BACKEND``/``"merge"``); must match the
        engine's backend so payloads decode into the parent's store.
    start_method:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/
        ``"forkserver"``); ``None`` uses the platform default.  The
        worker protocol is spawn-safe.
    seed:
        Scheduler seed recorded for the job (``None`` resolves to
        ``REPRO_SEED``); the level-synchronous protocol is fully
        deterministic, so this only namespaces future stochastic
        policies.
    """

    def __init__(
        self,
        num_shards: int,
        index_backend: "str | None" = None,
        start_method: "str | None" = None,
        seed: "int | None" = None,
    ) -> None:
        if num_shards < 1:
            raise SchedulerError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.index_backend = resolve_index_backend(index_backend)
        self.start_method = start_method
        self.seed = default_seed() if seed is None else seed
        self._graph: "Hypergraph | None" = None
        self._processes: list = []
        self._conns: list = []

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self, engine) -> None:
        if engine.index_backend != self.index_backend:
            raise SchedulerError(
                f"engine backend {engine.index_backend!r} does not match "
                f"executor backend {self.index_backend!r}"
            )
        if self._graph is engine.data and self._processes:
            return
        self.close()
        context = (
            get_context(self.start_method)
            if self.start_method is not None
            else get_context()
        )
        for shard_id in range(self.num_shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(
                    child_conn,
                    engine.data,
                    shard_id,
                    self.num_shards,
                    self.index_backend,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._conns.append(parent_conn)
        self._graph = engine.data

    def close(self) -> None:
        """Stop the worker pool (idempotent)."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        self._processes = []
        self._conns = []
        self._graph = None

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- messaging ------------------------------------------------------

    def _broadcast(self, message) -> None:
        # Pickle once, write the same bytes to every pipe (the frontier
        # is the big payload; Connection.send would re-pickle per shard).
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        for shard_id, conn in enumerate(self._conns):
            try:
                conn.send_bytes(payload)
            except (BrokenPipeError, OSError):
                # A worker died between jobs; tear down so the next run
                # rebuilds a healthy pool.
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} is gone; pool torn down"
                ) from None

    def _gather(self) -> list:
        replies = [None] * self.num_shards
        pending = {conn: i for i, conn in enumerate(self._conns)}
        while pending:
            for conn in _connection_wait(list(pending)):
                shard_id = pending.pop(conn)
                try:
                    reply = conn.recv()
                except EOFError:
                    # Tear the pool down: the dead worker can't serve the
                    # next job, and the survivors hold stale replies.
                    self.close()
                    raise SchedulerError(
                        f"shard worker {shard_id} died mid-job"
                    ) from None
                if (
                    isinstance(reply, tuple)
                    and reply
                    and reply[0] == "error"
                ):
                    message = reply[1]
                    self.close()
                    raise SchedulerError(
                        f"shard worker {shard_id} failed:\n{message}"
                    )
                replies[shard_id] = reply
        return replies

    # -- execution ------------------------------------------------------

    def run(
        self,
        engine,
        query: Hypergraph,
        order: "Sequence[int] | None" = None,
        time_budget: "float | None" = None,
    ) -> ParallelResult:
        """Execute one matching job across the shard pool.

        Counts are bit-identical to the sequential engine: shards
        partition every partition's rows disjointly, each candidate is
        generated and validated in exactly one shard, and the composed
        per-level frontiers equal the sequential BFS frontiers as sets.
        ``time_budget`` is enforced at level granularity (levels are the
        executor's natural barriers).
        """
        plan = engine.plan(query, order)
        self._ensure_pool(engine)
        deadline = (
            None if time_budget is None else time.monotonic() + time_budget
        )
        started = time.monotonic()
        self._broadcast(("job", query, plan.order))
        num_steps = plan.num_steps
        frontier: List[PartialEmbedding] = [ROOT_TASK]
        embeddings = 0
        logical_tasks = 0
        peak_retained = 0
        collected = None
        for step in range(num_steps):
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutExceeded(
                    time.monotonic() - (deadline - time_budget), time_budget
                )
            self._broadcast(("level", step, frontier))
            logical_tasks += len(frontier)
            replies = self._gather()
            if step == num_steps - 1:
                embeddings += sum(reply[2] for reply in replies)
                # Final replies carry the job accounting (see worker).
                collected = [reply[3:5] for reply in replies]
                break
            partition = engine.store.partition(plan.steps[step].signature)
            index = None if partition is None else partition.index
            next_frontier: List[PartialEmbedding] = []
            for position, partial in enumerate(frontier):
                shard_sets = []
                for reply in replies:
                    payloads = reply[1]
                    if payloads is None:
                        continue
                    payload = payloads[position]
                    if payload is not None:
                        shard_sets.append(
                            candidate_set_from_bytes(payload, index)
                        )
                if not shard_sets:
                    continue
                composed = compose_candidate_sets(shard_sets)
                for edge in composed:
                    next_frontier.append(partial + (edge,))
            frontier = next_frontier
            peak_retained = max(peak_retained, len(frontier))
            if not frontier:
                break
        elapsed = time.monotonic() - started

        if collected is None:
            # The frontier drained before the final level; the workers
            # never piggybacked their accounting, so ask for it.
            self._broadcast(("collect",))
            collected = self._gather()
        merged = MatchCounters()
        worker_stats: List[WorkerStats] = []
        for counters, stats in collected:
            merged.merge(counters)
            worker_stats.append(stats)
        # Logical task/embedding accounting lives parent-side: each
        # frontier entry is one task of the paper's tree (a shard's
        # per-partial probes are recorded in its WorkerStats instead).
        merged.tasks = logical_tasks
        merged.embeddings = embeddings
        merged.peak_retained = peak_retained
        return ParallelResult(
            embeddings=embeddings,
            elapsed=elapsed,
            counters=merged,
            worker_stats=worker_stats,
        )
