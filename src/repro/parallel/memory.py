"""Memory accounting for the scheduling experiment (Exp-5, Fig. 11).

The paper compares the task-based LIFO scheduler against BFS-style
(level-synchronous) execution: BFS materialises every intermediate
result of a level at once, so its memory grows with the result count,
while the LIFO scheduler's retained set is bounded by
``O(a_q × |E(q)|² × |E(H)|)`` (Theorem VI.1) regardless of how many
embeddings the query has.

Memory here is measured in *retained partial-embedding entries*: every
live partial embedding costs one vertex-id slot per vertex of each of
its matched hyperedges (the paper's unit in the Theorem VI.1 proof).
:func:`measure_memory` converts the engine/scheduler peak-retained
counters into those units, and :func:`theoretical_memory_bound`
evaluates the bound itself for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.counters import MatchCounters
from ..core.engine import HGMatch
from ..hypergraph import Hypergraph


@dataclass(frozen=True)
class MemoryMeasurement:
    """Peak retained memory of one execution strategy for one query."""

    strategy: str
    embeddings: int
    peak_partial_embeddings: int
    peak_entry_units: int

    def as_row(self) -> dict:
        return {
            "strategy": self.strategy,
            "embeddings": self.embeddings,
            "peak_partials": self.peak_partial_embeddings,
            "peak_units": self.peak_entry_units,
        }


def entry_units_per_partial(query: Hypergraph) -> int:
    """Vertex-id slots needed by one (worst-case full-length) partial
    embedding: the sum of the query hyperedge arities, ≈ a_q × |E(q)|."""
    return sum(len(edge) for edge in query.edges)


def measure_memory(
    engine: HGMatch,
    query: Hypergraph,
    strategy: str,
    workers: int = 1,
) -> MemoryMeasurement:
    """Run ``query`` under ``strategy`` ("task" or "bfs") and report peaks."""
    counters = MatchCounters()
    if strategy == "bfs":
        embeddings = engine.count_bfs(query, counters=counters)
    elif strategy == "task":
        if workers > 1:
            from .executor import ThreadedExecutor

            result = ThreadedExecutor(num_workers=workers).run(engine, query)
            counters = result.counters
            embeddings = result.embeddings
        else:
            embeddings = engine.count(query, counters=counters)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    units = entry_units_per_partial(query)
    return MemoryMeasurement(
        strategy=strategy,
        embeddings=embeddings,
        peak_partial_embeddings=counters.peak_retained,
        peak_entry_units=counters.peak_retained * units,
    )


def theoretical_memory_bound(
    query: Hypergraph, data: Hypergraph, workers: int = 1
) -> int:
    """Evaluate the Theorem VI.1 bound in entry units.

    ``O(a_q × |E(q)|² × |E(H)|)`` per task queue, times ``p`` queues.
    """
    average_arity = query.average_arity()
    return int(
        average_arity * (query.num_edges**2) * data.num_edges * max(workers, 1)
    )
