"""The level-synchronous shard protocol, transport-agnostic.

Both halves of the protocol live here, shared by every transport:

* the **worker-side kernel** — :func:`expand_level` expands a frontier
  against one :class:`~repro.hypergraph.sharding.StoreShard` and
  :func:`encode_survivors` serialises the accepted candidates in the
  backend's native wire representation;
* the **coordinator loop** — :func:`run_level_synchronous` broadcasts
  the job, then for each plan step broadcasts the frontier, gathers
  one reply per shard and composes the surviving candidate sets with
  :func:`repro.core.candidates.compose_candidate_sets`.

:class:`~repro.parallel.shard_executor.ProcessShardExecutor` (pipes to
local worker processes) and :class:`~repro.parallel.net_executor.
NetShardExecutor` (framed TCP to shard servers, possibly on other
hosts) differ only in how bytes move.  Keeping both halves in one
place is what guarantees the transports cannot drift — a socket
cluster and a process pool produce bit-identical counts because they
literally execute these functions.

An executor plugs in by providing:

``num_shards``
    How many shard replies to expect per gather.
``_ensure_pool(engine)``
    Make the shard peers ready for ``engine`` (spawn processes /
    connect sockets, verify the backend matches).
``_broadcast(message)``
    Deliver one protocol tuple — ``("job", query, order)``,
    ``("level", step, frontier)`` or ``("collect",)`` — to every shard.
``_gather()``
    Collect one reply per shard, **in shard order**: level replies as
    ``("level", payloads, embeddings)`` (with ``(counters, stats)``
    appended on the final level) and collect replies as
    ``(counters, stats)``.  ``payloads`` holds one raw
    :meth:`~repro.core.candidates.CandidateSet.to_bytes` payload (or
    None) per frontier partial — any transport-level version byte is
    already stripped and validated by the transport's gather.
``_gather_iter()`` (optional)
    As-completed variant of ``_gather`` for level replies: yields
    ``(shard_id, reply)`` pairs the moment each shard answers, in
    arrival order.  When present, the coordinator streams composition
    through it (shard union is commutative, so counts cannot depend on
    arrival order); without it the barrier ``_gather`` is used.  Both
    shard executors provide it.

Failure policy is the transport's: both executors tear their pool down
and raise :class:`~repro.errors.SchedulerError` when a shard dies
mid-job, so this loop only ever sees complete, ordered replies.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

from ..core.candidates import (
    AnchorUnionMemo,
    CandidateAccumulator,
    ChunkCandidates,
    MaskCandidates,
    VertexStepState,
    candidate_set_from_bytes,
    encode_chunks_payload,
    encode_mask_payload,
    encode_tuple_payload,
    generate_candidate_set,
)
from ..core.counters import MatchCounters
from ..core.validation import is_valid_expansion
from ..errors import QueryCancelled, SchedulerError, TimeoutExceeded
from ..hypergraph import Hypergraph
from ..hypergraph.index import chunks_from_rows
from ..hypergraph.sharding import (
    StoreShard,
    build_range_table,
    plan_rebalance,
    shard_grouping,
)
from .executor import ParallelResult
from .tasks import ROOT_TASK, PartialEmbedding, WorkerStats, worker_loads

#: Backends whose survivors ship as row payloads (mask / chunk map);
#: the merge backend's native representation is the edge-id tuple.
MASK_BACKENDS = ("bitset", "adaptive")


# ----------------------------------------------------------------------
# Worker-side kernel (runs in a shard's process, local or remote)
# ----------------------------------------------------------------------


def encode_survivors(
    backend: str,
    rows: List[int],
    edges: List[int],
    row_base: int,
    index,
) -> "bytes | None":
    """Serialise one partial's accepted candidates in the backend's
    native wire representation, shifted into global row coordinates."""
    if backend == "bitset":
        if not rows:
            return None
        mask = 0
        for row in rows:
            mask |= 1 << row
        # Local mask + decode offset: payload bytes track the shard's
        # survivor span, not its global row base.
        return encode_mask_payload(mask, row_base)
    if backend == "adaptive":
        if not rows:
            return None
        chunks = chunks_from_rows(
            [row + row_base for row in rows], index.chunk_bits, index.array_max
        )
        # Sparse survivor sets often encode smaller as a bare mask (the
        # chunk framing costs 9 bytes per dense chunk / 7 + 4·n per
        # array); both sizes are closed-form, so pick the winner before
        # serialising anything.  The reader re-chunks either form.
        chunk_size = 5
        for container in chunks.values():
            if isinstance(container, int):
                chunk_size += 9 + (container.bit_length() + 7) // 8
            else:
                chunk_size += 7 + 4 * len(container)
        mask_size = 5 + (rows[-1] + 8) // 8  # rows ascending; span bytes
        if mask_size < chunk_size:
            mask = 0
            for row in rows:
                mask |= 1 << row
            return encode_mask_payload(mask, row_base)
        return encode_chunks_payload(chunks)
    if not edges:
        return None
    return encode_tuple_payload(edges)


def expand_level(
    graph: Hypergraph,
    shard: StoreShard,
    plan,
    step: int,
    frontier: Sequence[PartialEmbedding],
    state: VertexStepState,
    counters: MatchCounters,
    stats: WorkerStats,
    memo: AnchorUnionMemo,
    mask_validation: bool,
) -> Tuple[str, "List[Optional[bytes]] | None", int]:
    """Expand every frontier partial against the shard's rows.

    Returns ``("level", payloads, embeddings)``: one payload (or None)
    per partial on intermediate steps, survivor *counts* on the final
    step (complete embeddings are consumed on the spot, like the other
    executors' implicit TSINK handling).
    """
    step_plan = plan.steps[step]
    final = step == plan.num_steps - 1
    partition = shard.partition(step_plan.signature)
    if partition is None:
        # The shard owns no rows of this signature; nothing to report.
        return ("level", None, 0)
    started = time.perf_counter()
    started_cpu = time.thread_time()
    backend = shard.index_backend
    index = partition.index
    row_base = shard.row_base(step_plan.signature)
    # Row coordinates are positions in the partition's *row layout*
    # (all slots, tombstones included) — under mutation this diverges
    # from the live edge-id table, so masks must bisect row_ids.
    row_ids = partition.row_ids
    step_tuples = state.step_tuples
    step_masks = state.step_masks if mask_validation else None
    payloads: "List[Optional[bytes]] | None" = None if final else []
    embeddings = 0
    for partial in frontier:
        vmap = state.advance(partial)
        candidates = generate_candidate_set(
            graph, partition, step_plan, partial, vmap, counters, memo=memo
        )
        if final:
            counters.final_candidates += len(candidates)
        partial_num_vertices = len(vmap)
        rows: List[int] = []
        edges: List[int] = []
        accepted = 0
        if type(candidates) is MaskCandidates:
            # Rows fall out of the bit scan for free.
            mask = candidates.mask
            row_to_edge = candidates.row_to_edge
            while mask:
                low = mask & -mask
                mask ^= low
                row = low.bit_length() - 1
                if is_valid_expansion(
                    graph, step_plan, vmap, partial_num_vertices,
                    row_to_edge[row], counters, final_step=final,
                    step_tuples=step_tuples, step_masks=step_masks,
                ):
                    accepted += 1
                    if not final:
                        rows.append(row)
        elif type(candidates) is ChunkCandidates:
            chunk_bits = index.chunk_bits
            row_to_edge = index.row_to_edge
            chunks = candidates.chunks
            for chunk in sorted(chunks):
                base = chunk << chunk_bits
                container = chunks[chunk]
                if isinstance(container, int):
                    while container:
                        low = container & -container
                        container ^= low
                        row = base + low.bit_length() - 1
                        if is_valid_expansion(
                            graph, step_plan, vmap, partial_num_vertices,
                            row_to_edge[row], counters, final_step=final,
                            step_tuples=step_tuples, step_masks=step_masks,
                        ):
                            accepted += 1
                            if not final:
                                rows.append(row)
                else:
                    for offset in container:
                        row = base + offset
                        if is_valid_expansion(
                            graph, step_plan, vmap, partial_num_vertices,
                            row_to_edge[row], counters, final_step=final,
                            step_tuples=step_tuples, step_masks=step_masks,
                        ):
                            accepted += 1
                            if not final:
                                rows.append(row)
        else:
            # Tuple candidates: the merge backend's native output, or a
            # mask backend's no-anchor scan / tiny array-container
            # result.  Rows (needed only for mask payloads) come from a
            # bisect into the ascending row layout.
            need_rows = not final and backend != "merge"
            for edge in candidates:
                if is_valid_expansion(
                    graph, step_plan, vmap, partial_num_vertices, edge,
                    counters, final_step=final,
                    step_tuples=step_tuples, step_masks=step_masks,
                ):
                    accepted += 1
                    if not final:
                        if need_rows:
                            rows.append(bisect_left(row_ids, edge))
                        else:
                            edges.append(edge)
        stats.tasks_executed += 1
        if final:
            embeddings += accepted
            stats.embeddings += accepted
        else:
            payload = encode_survivors(backend, rows, edges, row_base, index)
            if payload is not None:
                stats.payload_bytes += len(payload)
            payloads.append(payload)
    stats.busy_time += time.perf_counter() - started
    stats.cpu_time += time.thread_time() - started_cpu
    return ("level", payloads, embeddings)


# ----------------------------------------------------------------------
# Coordinator loop
# ----------------------------------------------------------------------


def plan_pool_rebalance(executor, worker_stats):
    """Recut planning for a live shard pool, shared by both transports
    (like the coordinator loop itself — one implementation is what
    keeps the executors from drifting).

    Validates the stats against the pool, resolves the pool's current
    table (build mode until a rebalance materialised one) and delegates
    to :func:`repro.hypergraph.sharding.plan_rebalance`.  Returns
    ``None`` when no boundary would move, else ``(table, label,
    slices, moved)``; the caller ships every shard its slice over its
    own transport.
    """
    if len(worker_stats) != executor.num_shards:
        raise SchedulerError(
            f"{len(worker_stats)} worker stats for "
            f"{executor.num_shards} shards"
        )
    grouped = shard_grouping(executor._graph)
    current = executor._range_table
    if current is None:
        current = build_range_table(
            grouped, executor.num_shards, executor.sharding
        )
    return plan_rebalance(
        grouped, executor.num_shards, current, worker_loads(worker_stats)
    )


def _iter_replies(executor, stream: bool):
    """Level replies as ``(shard_id, reply)`` pairs.

    Streaming transports expose ``_gather_iter`` — an as-completed
    iterator that yields each shard's reply the moment it lands — so
    the coordinator folds survivors while stragglers still compute.
    Transports without it (and explicit ``stream=False`` runs, which
    the benchmarks use as the barrier baseline) fall back to the
    ordered barrier gather.
    """
    if stream and hasattr(executor, "_gather_iter"):
        return executor._gather_iter()
    return enumerate(executor._gather())


def run_level_synchronous(
    executor,
    engine,
    query,
    order=None,
    time_budget: "float | None" = None,
    stream: bool = True,
    cancelled=None,
) -> ParallelResult:
    """Execute one matching job over ``executor``'s shard peers.

    Counts are bit-identical to the sequential engine: shards partition
    every partition's rows disjointly, each candidate is generated and
    validated in exactly one shard, and the composed per-level
    frontiers equal the sequential BFS frontiers as sets.  Composition
    itself is *streaming* (``stream=True``, the default): per-shard
    survivor payloads are folded through an incremental
    :class:`~repro.core.candidates.CandidateAccumulator` as replies
    arrive, so the coordinator's decode + union work overlaps the
    slowest shard's compute instead of waiting behind the full barrier
    — the union is commutative, so arrival order cannot change the
    composed frontier.  ``time_budget`` is enforced at level
    granularity (levels are the protocol's natural barriers), and so is
    ``cancelled`` — a zero-argument callable polled at the same
    barriers; when it reports True the loop raises
    :class:`~repro.errors.QueryCancelled` instead of dispatching the
    next level (the match service's cancel path; the executor's own
    gather may additionally interrupt a level in flight).
    """
    plan = engine.plan(query, order)
    executor._ensure_pool(engine)
    deadline = None if time_budget is None else time.monotonic() + time_budget
    started = time.monotonic()
    executor._broadcast(("job", query, plan.order))
    num_steps = plan.num_steps
    frontier: List[PartialEmbedding] = [ROOT_TASK]
    embeddings = 0
    logical_tasks = 0
    peak_retained = 0
    collected = None
    for step in range(num_steps):
        if cancelled is not None and cancelled():
            raise QueryCancelled(
                f"query cancelled before level {step} dispatch"
            )
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutExceeded(
                time.monotonic() - (deadline - time_budget), time_budget
            )
        executor._broadcast(("level", step, frontier))
        logical_tasks += len(frontier)
        if step == num_steps - 1:
            # Final replies carry the job accounting (workers piggyback
            # it on the last level, saving a collect round trip).
            collected = [None] * executor.num_shards
            for shard_id, reply in _iter_replies(executor, stream):
                embeddings += reply[2]
                collected[shard_id] = reply[3:5]
            break
        partition = engine.store.partition(plan.steps[step].signature)
        index = None if partition is None else partition.index
        accumulators: "List[Optional[CandidateAccumulator]]" = (
            [None] * len(frontier)
        )
        for _shard_id, reply in _iter_replies(executor, stream):
            payloads = reply[1]
            if payloads is None:
                continue
            for position, payload in enumerate(payloads):
                if payload is None:
                    continue
                accumulator = accumulators[position]
                if accumulator is None:
                    accumulator = CandidateAccumulator()
                    accumulators[position] = accumulator
                # key= makes the fold exactly-once per shard: a
                # speculative duplicate reply (two replicas answering
                # the same level) is discarded, not re-unioned.
                accumulator.add(
                    candidate_set_from_bytes(payload, index),
                    key=_shard_id,
                )
        next_frontier: List[PartialEmbedding] = []
        for partial, accumulator in zip(frontier, accumulators):
            if accumulator is None:
                continue
            for edge in accumulator.result():
                next_frontier.append(partial + (edge,))
        frontier = next_frontier
        peak_retained = max(peak_retained, len(frontier))
        if not frontier:
            break
    elapsed = time.monotonic() - started

    if collected is None:
        # The frontier drained before the final level; the workers never
        # piggybacked their accounting, so ask for it.
        executor._broadcast(("collect",))
        collected = executor._gather()
    merged = MatchCounters()
    worker_stats: List[WorkerStats] = []
    for entry in collected:
        if entry is None:
            # A retired shard (elastically drained; its rows were recut
            # onto the survivors) never answers — the survivors' rows
            # cover its range, so skipping the slot loses nothing.
            continue
        counters, stats = entry
        merged.merge(counters)
        worker_stats.append(stats)
    # Logical task/embedding accounting lives coordinator-side: each
    # frontier entry is one task of the paper's tree (a shard's
    # per-partial probes are recorded in its WorkerStats instead).
    merged.tasks = logical_tasks
    merged.embeddings = embeddings
    merged.peak_retained = peak_retained
    return ParallelResult(
        embeddings=embeddings,
        elapsed=elapsed,
        counters=merged,
        worker_stats=worker_stats,
    )
