"""Deterministic fault injection for the socket shard runtime.

Testing failover honestly requires faults that happen at *exactly* the
same protocol position on every run — a sleep-and-kill race reproduces
one failure in ten runs and a different one in the other nine.  This
module pins faults to **frame counts** instead of wall-clock time: a
:class:`FaultPlan` lists faults like "sever shard 1's connection when
the coordinator sends its 3rd frame" or "delay shard 0 replica 0's 2nd
reply by 300 ms", and a :class:`ChaosSocket` wrapper applies them as
the frames cross.  Because the level-synchronous protocol is itself
deterministic (same job → same frame sequence), a seeded plan produces
the same fault at the same LEVEL on every run, which is what lets the
chaos tests and ``benchmarks/bench_chaos.py`` assert *bit-identical
counts under faults* rather than merely "it didn't crash".

Where the wrapper sits
----------------------
Every frame the transport moves crosses exactly one ``sendall`` call
(:func:`repro.parallel.transport.send_frame` and the coordinator's
broadcast both encode a whole frame, then write it once).  The wrapper
therefore intercepts only the **send** path and counts frames per
connection; the receive path is a transparent proxy.  All five fault
kinds are expressible as send-side events on one endpoint or the other:

=========  ========  ====================================================
fault      endpoint  effect at frame ``N`` of that connection
=========  ========  ====================================================
sever      either    close the connection instead of sending
garble     either    flip the frame's version byte, then send (the peer
                     must reject the frame and drop the session)
kill       coord.    send the frame, then invoke the armed killer for
                     the target worker (terminate its process)
delay      worker    sleep ``seconds`` before sending (a slow replica —
                     the straggler that speculation exists for)
drop       worker    swallow the frame (a reply that never arrives —
                     the wedged peer that timeouts exist for)
=========  ========  ====================================================

The coordinator wraps each worker connection it opens; a
:class:`~repro.parallel.net_executor.ShardWorker` built with a plan
wraps each session it serves.  Faults are matched by the endpoint role
plus the worker's ``(shard_id, replica_id)`` identity, so one plan can
be handed to both sides (it pickles into ``spawn_local_cluster``
workers; armed killer callables are deliberately dropped from the
pickle — killing is the coordinator side's job).

Every fault fires **once** and is then consumed; plans are single-use
per endpoint process, like the jobs they disturb.
"""

from __future__ import annotations

import random
import time
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .transport import QUERY_KINDS

#: Endpoint roles a fault can bind to.  ``announcer`` is the worker's
#: registry connection (frame 1 is the ANNOUNCE, frames 2+ are
#: HEARTBEATs), so discovery and liveness can be fault-injected with
#: the same frame-count determinism as the data path.
ROLE_COORDINATOR = "coordinator"
ROLE_WORKER = "worker"
ROLE_ANNOUNCER = "announcer"
_ROLES = (ROLE_COORDINATOR, ROLE_WORKER, ROLE_ANNOUNCER)

#: Offset of the protocol-version byte inside an encoded frame
#: (after the little-endian u32 length) — the byte ``garble`` flips,
#: chosen because every reader validates it before trusting anything
#: else in the frame.
_VERSION_BYTE_OFFSET = 4

#: Offsets of the kind byte and (for §2.8 multiplexed kinds) the u64
#: query-id tag inside an encoded frame — how a query-pinned fault
#: recognises which query a frame belongs to without decoding it.
_KIND_BYTE_OFFSET = 5
_QUERY_ID_OFFSET = 6
_QUERY_ID_END = _QUERY_ID_OFFSET + 8


def _frame_query_id(data) -> Optional[int]:
    """The query id a wire frame is tagged with, or None.

    Reads the §2.8 tag straight out of the encoded bytes (kind byte at
    offset 5, little-endian u64 at offsets 6..14) so the chaos layer
    stays a pure byte-stream observer — no transport decode, no state.
    """
    if len(data) < _QUERY_ID_END:
        return None
    if data[_KIND_BYTE_OFFSET] not in QUERY_KINDS:
        return None
    return struct.unpack_from("<Q", data, _QUERY_ID_OFFSET)[0]


@dataclass
class Fault:
    """One planned fault, pinned to a protocol position.

    ``after_frames`` is 1-based and counts frames *sent* by the bound
    endpoint on one connection: the fault fires when that endpoint is
    about to send its ``after_frames``-th frame.  For a coordinator
    connection frame 1 is the JOB (the handshake is received, not
    sent); for a worker session frame 1 is the HELLO.

    ``query_id`` pins the fault to one multiplexed query's frames:
    ``after_frames`` then counts only the frames tagged with that
    query id (§2.8 kinds), so a fault disturbs exactly one query of a
    multiplexed session no matter how its frames interleave with
    other queries' — the determinism the isolation tests rely on.
    """

    kind: str  # "sever" | "garble" | "kill" | "delay" | "drop"
    role: str
    shard_id: int
    replica_id: int
    after_frames: int
    seconds: float = 0.0
    query_id: Optional[int] = None
    consumed: bool = field(default=False, compare=False)

    def matches(
        self,
        role: str,
        shard_id: int,
        replica_id: int,
        frame: int,
        query_id: Optional[int] = None,
        query_frame: int = 0,
    ) -> bool:
        if (
            self.consumed
            or self.role != role
            or self.shard_id != shard_id
            or self.replica_id != replica_id
        ):
            return False
        if self.query_id is not None:
            return query_id == self.query_id and (
                self.after_frames == query_frame
            )
        return self.after_frames == frame


class ChaosSeveredError(OSError):
    """Raised when a planned ``sever`` closes the connection — an
    :class:`OSError` so every existing peer-gone handler (broadcast
    failover, transport wrapping) treats it exactly like a real
    network failure."""


class FaultPlan:
    """A seeded, deterministic schedule of transport faults.

    Build one with the fault constructors, arm killers if any ``kill``
    faults need a process to terminate, and hand it to both sides::

        plan = FaultPlan(seed=7)
        plan.kill_worker(shard_id=1, after_frames=2)   # mid-LEVEL kill
        plan.slow_reply(0, replica_id=0, after_frames=2, seconds=0.4)
        plan.arm_killer(1, 0, lambda: cluster.kill_member(1, 0))
        executor = NetShardExecutor(addresses=..., num_replicas=2,
                                    chaos=plan)

    ``seed`` drives the plan's :attr:`rng` (used by stochastic fault
    extensions and available to harness code for jittered schedules);
    the built-in faults are fully position-determined and ignore it.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.faults: List[Fault] = []
        self._killers: Dict[Tuple[int, int], Callable[[], None]] = {}

    # -- fault constructors ---------------------------------------------

    def _add(self, fault: Fault) -> Fault:
        if fault.role not in _ROLES:
            raise ValueError(f"unknown chaos role {fault.role!r}")
        if fault.after_frames < 1:
            raise ValueError("after_frames is 1-based; must be >= 1")
        self.faults.append(fault)
        return fault

    def sever(
        self,
        shard_id: int,
        replica_id: int = 0,
        *,
        after_frames: int,
        role: str = ROLE_COORDINATOR,
        query_id: Optional[int] = None,
    ) -> Fault:
        """Close the connection instead of sending frame ``N`` — the
        mid-level disconnect (the worker process survives).  With
        ``query_id``, ``N`` counts that query's frames alone."""
        return self._add(
            Fault(
                "sever", role, shard_id, replica_id, after_frames,
                query_id=query_id,
            )
        )

    def garble(
        self,
        shard_id: int,
        replica_id: int = 0,
        *,
        after_frames: int,
        role: str = ROLE_COORDINATOR,
        query_id: Optional[int] = None,
    ) -> Fault:
        """Corrupt frame ``N``'s version byte before sending — the peer
        must reject it and end the session (never guess).  With
        ``query_id``, ``N`` counts that query's frames alone."""
        return self._add(
            Fault(
                "garble", role, shard_id, replica_id, after_frames,
                query_id=query_id,
            )
        )

    def kill_worker(
        self, shard_id: int, replica_id: int = 0, *, after_frames: int
    ) -> Fault:
        """Terminate the worker's process right after the coordinator
        sends it frame ``N`` (arm the actual terminator with
        :meth:`arm_killer`; unarmed kills degrade to a sever)."""
        return self._add(
            Fault(
                "kill", ROLE_COORDINATOR, shard_id, replica_id, after_frames
            )
        )

    def slow_reply(
        self,
        shard_id: int,
        replica_id: int = 0,
        *,
        after_frames: int,
        seconds: float,
        query_id: Optional[int] = None,
    ) -> Fault:
        """Delay the worker's frame ``N`` by ``seconds`` — a straggling
        replica (the speculation trigger).  With ``query_id``, ``N``
        counts that query's frames alone."""
        return self._add(
            Fault(
                "delay", ROLE_WORKER, shard_id, replica_id, after_frames,
                seconds=seconds, query_id=query_id,
            )
        )

    def drop_reply(
        self,
        shard_id: int,
        replica_id: int = 0,
        *,
        after_frames: int,
        query_id: Optional[int] = None,
    ) -> Fault:
        """Swallow the worker's frame ``N`` — a reply that never
        arrives (the coordinator's per-frame deadline must notice).
        With ``query_id``, ``N`` counts that query's frames alone."""
        return self._add(
            Fault(
                "drop", ROLE_WORKER, shard_id, replica_id, after_frames,
                query_id=query_id,
            )
        )

    def drop_heartbeats(
        self,
        shard_id: int,
        replica_id: int = 0,
        *,
        after_frames: int,
        count: int = 1,
    ) -> "List[Fault]":
        """Swallow ``count`` consecutive announcer frames starting at
        frame ``N`` — missed heartbeats (the registry's eviction
        deadline must notice).  Announcer frame 1 is the ANNOUNCE, so
        ``after_frames=2`` drops the first heartbeat."""
        return [
            self._add(
                Fault(
                    "drop", ROLE_ANNOUNCER, shard_id, replica_id,
                    after_frames + offset,
                )
            )
            for offset in range(count)
        ]

    def garble_announce(
        self, shard_id: int, replica_id: int = 0, *, after_frames: int = 1
    ) -> Fault:
        """Corrupt the announcer's frame ``N`` (default: the ANNOUNCE
        itself) — the registry must reject the session, never record a
        worker it could not validate."""
        return self._add(
            Fault(
                "garble", ROLE_ANNOUNCER, shard_id, replica_id, after_frames
            )
        )

    # -- killers ---------------------------------------------------------

    def arm_killer(
        self, shard_id: int, replica_id: int, killer: Callable[[], None]
    ) -> None:
        """Attach the callable a ``kill`` fault on ``(shard_id,
        replica_id)`` invokes — typically ``cluster.kill_member(...)``.
        Killers never pickle (see :meth:`__getstate__`)."""
        self._killers[(shard_id, replica_id)] = killer

    def _kill(self, shard_id: int, replica_id: int) -> bool:
        killer = self._killers.get((shard_id, replica_id))
        if killer is None:
            return False
        killer()
        return True

    # -- wrapping --------------------------------------------------------

    def wrap(
        self,
        sock,
        role: str,
        shard_id: "int | None" = None,
        replica_id: "int | None" = None,
    ) -> "ChaosSocket":
        """Wrap one endpoint of a connection.  Identity may be bound
        later (the coordinator learns a worker's identity from its
        HELLO) via :meth:`ChaosSocket.bind_endpoint`; unbound sockets
        pass frames through untouched."""
        if role not in _ROLES:
            raise ValueError(f"unknown chaos role {role!r}")
        return ChaosSocket(sock, self, role, shard_id, replica_id)

    def __getstate__(self):
        # Killers close over process handles; the worker side of a
        # pickled plan must never hold (or invoke) them.
        state = self.__dict__.copy()
        state["_killers"] = {}
        return state

    def __repr__(self) -> str:
        pending = sum(1 for fault in self.faults if not fault.consumed)
        return (
            f"FaultPlan(seed={self.seed}, faults={len(self.faults)}, "
            f"pending={pending})"
        )


class ChaosSocket:
    """A socket proxy that applies planned faults on the send path.

    Counts whole frames (one ``sendall`` call each — the transport's
    invariant) and consults the plan before every send; everything
    else (``recv``, timeouts, ``fileno`` for selectors, close) proxies
    to the wrapped socket, so the executor and the worker treat a
    chaos-wrapped connection exactly like a bare one.
    """

    __slots__ = ("_sock", "_plan", "_role", "_shard_id", "_replica_id",
                 "_sent", "_query_sent")

    def __init__(self, sock, plan, role, shard_id, replica_id) -> None:
        self._sock = sock
        self._plan = plan
        self._role = role
        self._shard_id = shard_id
        self._replica_id = replica_id
        self._sent = 0
        # Per-query frame counters for §2.8 multiplexed frames, so a
        # query-pinned fault keeps its protocol position no matter how
        # the session interleaves queries.
        self._query_sent: Dict[int, int] = {}

    def bind_endpoint(self, shard_id: int, replica_id: int) -> None:
        """Attach the worker identity this connection talks to (or as);
        frame counting starts at the *next* send, so handshake frames
        received before binding never shift fault positions."""
        self._shard_id = shard_id
        self._replica_id = replica_id

    @property
    def frames_sent(self) -> int:
        return self._sent

    def _next_fault(
        self, query_id: Optional[int], query_frame: int
    ) -> "Optional[Fault]":
        if self._shard_id is None or self._replica_id is None:
            return None
        for fault in self._plan.faults:
            if fault.matches(
                self._role, self._shard_id, self._replica_id, self._sent,
                query_id, query_frame,
            ):
                fault.consumed = True
                return fault
        return None

    def sendall(self, data) -> None:
        self._sent += 1
        query_id = _frame_query_id(data)
        query_frame = 0
        if query_id is not None:
            query_frame = self._query_sent.get(query_id, 0) + 1
            self._query_sent[query_id] = query_frame
        fault = self._next_fault(query_id, query_frame)
        if fault is None:
            self._sock.sendall(data)
            return
        if fault.kind == "sever":
            self.close()
            raise ChaosSeveredError(
                f"chaos: severed shard {self._shard_id} replica "
                f"{self._replica_id} at frame {self._sent}"
            )
        if fault.kind == "garble":
            garbled = bytearray(data)
            if len(garbled) > _VERSION_BYTE_OFFSET:
                garbled[_VERSION_BYTE_OFFSET] ^= 0xFF
            self._sock.sendall(bytes(garbled))
            return
        if fault.kind == "kill":
            self._sock.sendall(data)
            if not self._plan._kill(self._shard_id, self._replica_id):
                # No armed killer (e.g. remote worker): the closest
                # observable effect is losing the connection.
                self.close()
                raise ChaosSeveredError(
                    f"chaos: unarmed kill severed shard {self._shard_id} "
                    f"replica {self._replica_id} at frame {self._sent}"
                )
            return
        if fault.kind == "delay":
            time.sleep(fault.seconds)
            self._sock.sendall(data)
            return
        if fault.kind == "drop":
            return  # the frame vanishes
        raise ValueError(f"unknown fault kind {fault.kind!r}")

    # -- transparent proxies --------------------------------------------

    def recv(self, bufsize: int) -> bytes:
        return self._sock.recv(bufsize)

    def settimeout(self, timeout) -> None:
        self._sock.settimeout(timeout)

    def setsockopt(self, *args) -> None:
        self._sock.setsockopt(*args)

    def fileno(self) -> int:
        return self._sock.fileno()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def __repr__(self) -> str:
        return (
            f"ChaosSocket({self._role}, shard={self._shard_id}, "
            f"replica={self._replica_id}, sent={self._sent})"
        )
