"""HGMatch's parallel execution engine (Section VI).

Two executors share the same task semantics (self-contained partial
embeddings, LIFO deques, steal-half-from-tail):

* :class:`ThreadedExecutor` — real threads; demonstrates correctness,
  bounded memory and load-balance accounting under CPython.
* :class:`SimulatedExecutor` — discrete-event simulation in virtual
  time with a set-operation cost model; backs the scalability and
  load-balancing experiments (see DESIGN.md, substitution 2).
"""

from .deque import WorkStealingDeque
from .executor import ParallelResult, ThreadedExecutor
from .memory import (
    MemoryMeasurement,
    entry_units_per_partial,
    measure_memory,
    theoretical_memory_bound,
)
from .simulation import (
    CostModel,
    SimulatedExecutor,
    SimulationResult,
    simulate_speedups,
)
from .tasks import ROOT_TASK, PartialEmbedding, WorkerStats, task_kind

__all__ = [
    "WorkStealingDeque",
    "ThreadedExecutor",
    "ParallelResult",
    "SimulatedExecutor",
    "SimulationResult",
    "CostModel",
    "simulate_speedups",
    "MemoryMeasurement",
    "measure_memory",
    "entry_units_per_partial",
    "theoretical_memory_bound",
    "WorkerStats",
    "PartialEmbedding",
    "ROOT_TASK",
    "task_kind",
]
