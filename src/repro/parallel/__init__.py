"""HGMatch's parallel execution engine (Section VI).

Three executors share the same task semantics (self-contained partial
embeddings):

* :class:`ThreadedExecutor` — real threads, LIFO deques,
  steal-half-from-tail; demonstrates correctness, bounded memory and
  load-balance accounting under CPython (GIL-serialised).
* :class:`ProcessShardExecutor` — one worker process per store shard;
  level-synchronous enumeration over the mask-native seam (candidate
  payloads cross process boundaries as compact masks), real multi-core
  wall clock.
* :class:`NetShardExecutor` — the same level-synchronous protocol over
  framed TCP (:mod:`repro.parallel.transport`): shard workers are
  :class:`ShardWorker` servers, on this machine
  (:func:`spawn_local_cluster`) or on other hosts; candidate payloads
  cross machine boundaries in the versioned wire format (see
  ``docs/WIRE_FORMAT.md``).
* :class:`SimulatedExecutor` — discrete-event simulation in virtual
  time with a set-operation cost model; backs the scalability and
  load-balancing experiments (see DESIGN.md, substitution 2).
"""

from .chaos import ChaosSocket, FaultPlan
from .deque import WorkStealingDeque
from .executor import ParallelResult, ThreadedExecutor
from .net_executor import (
    LocalCluster,
    NetShardExecutor,
    ShardWorker,
    default_io_timeout,
    default_retry_policy,
    shutdown_worker,
    spawn_local_cluster,
)
from .registry import Announcer, WorkerRecord, WorkerRegistry
from .shard_executor import ProcessShardExecutor
from .supervisor import SlotStatus, WorkerSupervisor
from .memory import (
    MemoryMeasurement,
    entry_units_per_partial,
    measure_memory,
    theoretical_memory_bound,
)
from .simulation import (
    CostModel,
    SimulatedExecutor,
    SimulationResult,
    simulate_speedups,
)
from .tasks import (
    ROOT_TASK,
    PartialEmbedding,
    RetryPolicy,
    WorkerStats,
    default_seed,
    join_or_kill,
    load_imbalance,
    task_kind,
    worker_loads,
)

__all__ = [
    "WorkStealingDeque",
    "ThreadedExecutor",
    "ProcessShardExecutor",
    "NetShardExecutor",
    "ShardWorker",
    "LocalCluster",
    "spawn_local_cluster",
    "shutdown_worker",
    "RetryPolicy",
    "default_io_timeout",
    "default_retry_policy",
    "WorkerRegistry",
    "WorkerRecord",
    "Announcer",
    "WorkerSupervisor",
    "SlotStatus",
    "FaultPlan",
    "ChaosSocket",
    "join_or_kill",
    "ParallelResult",
    "default_seed",
    "SimulatedExecutor",
    "SimulationResult",
    "CostModel",
    "simulate_speedups",
    "MemoryMeasurement",
    "measure_memory",
    "entry_units_per_partial",
    "theoretical_memory_bound",
    "WorkerStats",
    "PartialEmbedding",
    "ROOT_TASK",
    "task_kind",
    "worker_loads",
    "load_imbalance",
]
