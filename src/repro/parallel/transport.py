"""The socket transport: framed messages for multi-host sharding.

The multiprocess executor already proved the seam: candidate survivors
cross the shard boundary as compact :class:`~repro.core.candidates.
CandidateSet` payloads (tags ``T``/``M``/``C``) and the parent composes
them with the container-pairwise ``|`` algebra.  Those payloads are
host-neutral — nothing in them references process-local state — so the
remaining step to multi-host execution is purely a transport: replace
the parent/child pipes with TCP connections and give the byte stream
enough structure to survive version skew and partial failure.

This module defines that structure.  It deliberately contains **no
enumeration logic** (that stays in :mod:`repro.parallel.net_executor`)
and no I/O policy beyond "read exactly one frame": everything here is a
pure function of bytes in, bytes out, which is what makes the format
testable byte-for-byte and documentable (see ``docs/WIRE_FORMAT.md``
for the normative spec with worked examples).

Framing
-------
Every message is one frame::

    u32 length | u8 version | u8 kind | body

``length`` (little-endian, like every integer in the format) counts the
``version`` byte, the ``kind`` byte and the body.  ``version`` is
:data:`PROTOCOL_VERSION`; a reader that sees any other value must close
the connection (the peer speaks a format this build cannot interpret —
guessing would silently corrupt counts).  ``kind`` selects the message
type below.  ``length`` is bounded by :data:`MAX_FRAME_BYTES` so a
corrupt or hostile length prefix fails fast instead of triggering a
multi-gigabyte allocation.

Message kinds
-------------
======  =======  ===========================================================
byte    name     body
======  =======  ===========================================================
``H``   HELLO    pickled handshake dict (worker -> coordinator on accept)
``J``   JOB      pickled ``(query, order)``
``L``   LEVEL    pickled ``(step, frontier)``
``R``   REPLY    binary level reply (see :func:`encode_level_reply`)
``C``   COLLECT  empty — request ``(counters, stats)``
``c``   ACCOUNT  pickled ``(counters, stats)``
``B``   REBALANCE pickled ``(label, ranges)`` — rebuild the shard from
        an explicit range slice; the worker answers with a fresh HELLO
        whose descriptor echoes ``label`` as its sharding
``S``   STOP     empty — end this session (connection), keep serving
``Q``   QUIT     empty — shut the worker server down
``E``   ERROR    pickled traceback string (worker-side failure)
``A``   ANNOUNCE pickled registration dict (worker -> registry: the
        worker's serving address plus its handshake descriptor/seed)
``h``   HEARTBEAT empty — worker -> registry liveness tick; identity is
        the connection's preceding ANNOUNCE
``j``   QJOB     ``u64 query_id`` + pickled ``(query, order)`` — the
        multiplexed JOB: the worker opens a per-query session
``l``   QLEVEL   ``u64 query_id`` + pickled ``(step, frontier)``
``r``   QREPLY   ``u64 query_id`` + binary level reply
``q``   QCOLLECT ``u64 query_id`` only — request the query's
        accounting; answered with a payload-free QREPLY
``e``   QERROR   ``u64 query_id`` + pickled traceback string — fails
        that query alone; the session keeps serving other queries
``X``   CANCEL   ``u64 query_id`` only — drop the query's session
        state; fire-and-forget (no reply)
``M``   MUTATE   pickled ``MutationBatch`` — apply one committed edge
        insert/delete batch to the worker's graph and shard, in place
``D``   DELTA    pickled mutation ack dict (``graph_version``,
        ``graph_edges``, ``graph_vertices``) — the worker's state
        after applying a MUTATE
``U``   CATCHUP  pickled catch-up payload: either the ``(version,
        MutationBatch)`` suffix a stale worker missed, or a full graph
        snapshot when the suffix is no longer retained
``u``   CATCHUP_REPLY  handshake body (like HELLO) — the worker's
        descriptor/seed *after* applying the catch-up payload, which
        the coordinator re-validates in full
======  =======  ===========================================================

Control messages carry pickles — the coordinator and its workers are
mutually trusted members of one deployment, exactly like the process
executor's pipes (do **not** expose a worker port to untrusted input).
The performance-relevant payloads inside a ``REPLY`` are *not* pickles:
each surviving candidate set is the compact
:meth:`~repro.core.candidates.CandidateSet.to_bytes` encoding prefixed
with the candidate wire version byte
(:data:`repro.core.candidates.WIRE_VERSION`), so the bytes crossing
machine boundaries are the same mask/container representations the
in-process algebra uses, independently versioned from the framing.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import List, Optional, Sequence, Tuple

from ..errors import TransportError

#: Version byte of the *framing* protocol (handshake, message kinds,
#: level-reply layout).  Independent from the candidate-payload
#: ``WIRE_VERSION``: a framing change does not invalidate archived
#: payloads, and a payload change is caught per-payload.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame's ``length`` field.  Frontiers are the
#: largest message in practice and stream level by level, so anything
#: near this bound indicates a corrupt length prefix, not real data.
MAX_FRAME_BYTES = 1 << 30

MSG_HELLO = 0x48  # b"H"
MSG_JOB = 0x4A  # b"J"
MSG_LEVEL = 0x4C  # b"L"
MSG_LEVEL_REPLY = 0x52  # b"R"
MSG_COLLECT = 0x43  # b"C"
MSG_ACCOUNTING = 0x63  # b"c"
MSG_REBALANCE = 0x42  # b"B"
MSG_STOP = 0x53  # b"S"
MSG_SHUTDOWN = 0x51  # b"Q"
MSG_ERROR = 0x45  # b"E"
MSG_ANNOUNCE = 0x41  # b"A"
MSG_HEARTBEAT = 0x68  # b"h"

# Multiplexed-query revisions (WIRE_FORMAT.md §2.8): the lowercase
# letter of the legacy kind it revises, carrying a u64 query_id prefix
# so one worker session can hold many in-flight jobs.  CANCEL is new.
MSG_QJOB = 0x6A  # b"j"
MSG_QLEVEL = 0x6C  # b"l"
MSG_QREPLY = 0x72  # b"r"
MSG_QCOLLECT = 0x71  # b"q"
MSG_QERROR = 0x65  # b"e"
MSG_CANCEL = 0x58  # b"X"

# Dynamic-graph revisions (WIRE_FORMAT.md §2.9): a coordinator commits
# an edge insert/delete batch pool-wide with MUTATE; each worker
# applies it incrementally and acks with DELTA so the coordinator can
# verify the whole pool agrees on the new graph version before
# admitting further queries.
MSG_MUTATE = 0x4D  # b"M"
MSG_DELTA = 0x44  # b"D"

# Catch-up recovery (WIRE_FORMAT.md §2.10): a worker whose HELLO
# announces a stale graph_version is streamed the mutation suffix it
# missed (or a full snapshot when the suffix is no longer retained)
# instead of being refused; it replies with a CATCHUP_REPLY carrying a
# fresh handshake body, which the coordinator re-validates in full.
MSG_CATCHUP = 0x55  # b"U"
MSG_CATCHUP_REPLY = 0x75  # b"u"

_KNOWN_KINDS = frozenset({
    MSG_HELLO, MSG_JOB, MSG_LEVEL, MSG_LEVEL_REPLY, MSG_COLLECT,
    MSG_ACCOUNTING, MSG_REBALANCE, MSG_STOP, MSG_SHUTDOWN, MSG_ERROR,
    MSG_ANNOUNCE, MSG_HEARTBEAT,
    MSG_QJOB, MSG_QLEVEL, MSG_QREPLY, MSG_QCOLLECT, MSG_QERROR,
    MSG_CANCEL, MSG_MUTATE, MSG_DELTA,
    MSG_CATCHUP, MSG_CATCHUP_REPLY,
})

#: The kinds whose body starts with a ``u64 query_id`` tag (§2.8).
QUERY_KINDS = frozenset({
    MSG_QJOB, MSG_QLEVEL, MSG_QREPLY, MSG_QCOLLECT, MSG_QERROR,
    MSG_CANCEL,
})

_QUERY_ID = struct.Struct("<Q")

_HEADER = struct.Struct("<IBB")


# ----------------------------------------------------------------------
# Frame encoding / decoding (pure bytes, no sockets)
# ----------------------------------------------------------------------


def encode_frame(kind: int, body: bytes = b"") -> bytes:
    """Serialise one frame: length prefix, version byte, kind, body."""
    if kind not in _KNOWN_KINDS:
        raise TransportError(f"unknown frame kind {kind:#x}")
    if len(body) + 2 > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame body of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _HEADER.pack(len(body) + 2, PROTOCOL_VERSION, kind) + body


def _validate_header(length: int, version: int, kind: int) -> None:
    """Reject an untrustworthy frame header.

    The single source of truth for header legality: both the byte-level
    :func:`decode_frame` and the socket-level :func:`recv_frame` call
    this on the 6 header bytes, so a garbled length, version or kind is
    rejected with the *same* error on either path — and on the socket
    path it is rejected before any body bytes are read.
    """
    if length < 2 or length > MAX_FRAME_BYTES:
        raise TransportError(f"implausible frame length {length}")
    if version != PROTOCOL_VERSION:
        raise TransportError(
            f"unsupported protocol version {version}; this build speaks "
            f"version {PROTOCOL_VERSION}"
        )
    if kind not in _KNOWN_KINDS:
        raise TransportError(f"unknown frame kind {kind:#x}")


def decode_frame(data: bytes) -> Tuple[int, bytes]:
    """Decode one complete frame; returns ``(kind, body)``.

    Raises :class:`TransportError` on truncation, a length/buffer
    mismatch, an unknown protocol version or an unknown kind — every
    way a byte stream can stop being trustworthy.
    """
    if len(data) < _HEADER.size:
        raise TransportError(
            f"truncated frame: {len(data)} bytes, header needs "
            f"{_HEADER.size}"
        )
    length, version, kind = _HEADER.unpack_from(data)
    if length < 2 or length > MAX_FRAME_BYTES:
        raise TransportError(f"implausible frame length {length}")
    if len(data) != 4 + length:
        raise TransportError(
            f"frame length {length} does not match buffer of "
            f"{len(data)} bytes"
        )
    _validate_header(length, version, kind)
    return kind, data[_HEADER.size:]


# ----------------------------------------------------------------------
# Multiplexed-query bodies (WIRE_FORMAT.md §2.8)
# ----------------------------------------------------------------------


def encode_query_body(query_id: int, body: bytes = b"") -> bytes:
    """Prefix ``body`` with the ``u64 query_id`` tag of a §2.8 frame.

    Each multiplexed kind (QJOB/QLEVEL/QREPLY/QCOLLECT/QERROR/CANCEL)
    carries the tag followed by the *unchanged* legacy body of the kind
    it revises, so the payload encoders are reused verbatim; CANCEL and
    QCOLLECT carry the tag alone.
    """
    if not isinstance(query_id, int) or query_id < 0 or query_id > (1 << 64) - 1:
        raise TransportError(f"query id {query_id!r} does not fit u64")
    return _QUERY_ID.pack(query_id) + body


def split_query_body(body: bytes) -> Tuple[int, bytes]:
    """Inverse of :func:`encode_query_body`: ``(query_id, rest)``."""
    if len(body) < _QUERY_ID.size:
        raise TransportError(
            f"query frame body of {len(body)} bytes is shorter than its "
            f"{_QUERY_ID.size}-byte query id tag"
        )
    (query_id,) = _QUERY_ID.unpack_from(body)
    return query_id, body[_QUERY_ID.size:]


# ----------------------------------------------------------------------
# Socket helpers
# ----------------------------------------------------------------------


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`TransportError`.

    A clean EOF (peer closed between frames) and a mid-frame EOF both
    surface as :class:`TransportError`; callers that want to treat the
    clean case specially can check :attr:`TransportError.args` — but in
    this protocol a peer never closes while the other side expects a
    frame, so both are failures.
    """
    parts: List[bytes] = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as exc:  # pragma: no cover - host-dependent
            raise TransportError(
                f"timed out waiting for {remaining} of {count} bytes"
            ) from exc
        except OSError as exc:
            raise TransportError(f"socket read failed: {exc}") from exc
        if not chunk:
            received = count - remaining
            raise TransportError(
                f"connection closed after {received} of {count} bytes "
                f"(truncated frame)" if received else
                "connection closed by peer"
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def send_frame(sock: socket.socket, kind: int, body: bytes = b"") -> None:
    """Write one frame to ``sock`` (blocking, whole frame or error)."""
    try:
        sock.sendall(encode_frame(kind, body))
    except OSError as exc:
        raise TransportError(f"socket write failed: {exc}") from exc


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one frame from ``sock``; returns ``(kind, body)``.

    The header is validated through the same :func:`_validate_header`
    as :func:`decode_frame` *before* the body is read: a garbled
    version or kind byte is rejected identically on both paths, and on
    this one without first pulling (up to a gigabyte of) body bytes
    off a stream that is already known to be untrustworthy.
    """
    header = _recv_exact(sock, _HEADER.size)
    length, version, kind = _HEADER.unpack(header)
    _validate_header(length, version, kind)
    rest = _recv_exact(sock, length - 2)
    return kind, rest


def send_pickle_frame(sock: socket.socket, kind: int, payload) -> None:
    """Pickle ``payload`` and send it as a frame of ``kind``."""
    send_frame(
        sock, kind, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    )


def decode_pickle_body(body: bytes):
    """Unpickle a control-frame body, normalising failures."""
    try:
        return pickle.loads(body)
    except Exception as exc:
        raise TransportError(f"undecodable control payload: {exc}") from exc


# ----------------------------------------------------------------------
# Level replies (the hot reply: candidate payloads stay raw bytes)
# ----------------------------------------------------------------------
#
# REPLY body layout::
#
#     u64 embeddings          accepted complete embeddings (final level)
#     u8  has_accounting      1 when the pickled (counters, stats) tail
#                             is present (workers piggyback it on the
#                             final level, saving a COLLECT round trip)
#     u32 num_payloads        one slot per frontier partial (0 on the
#                             final level — survivors are consumed)
#     per payload:
#         u32 size            0 = no survivors for that partial
#         size bytes          versioned candidate payload
#                             (WIRE_VERSION byte + CandidateSet bytes)
#     pickled accounting tail (to end of body, iff has_accounting)


def encode_level_reply(
    payloads: "Sequence[Optional[bytes]] | None",
    embeddings: int,
    accounting: "bytes | None" = None,
) -> bytes:
    """Binary body of a ``REPLY`` frame.

    ``payloads`` holds one *versioned* candidate payload (or None) per
    frontier partial; pass None on the final level.
    """
    parts = [struct.pack(
        "<QBI",
        embeddings,
        0 if accounting is None else 1,
        0 if payloads is None else len(payloads),
    )]
    if payloads is not None:
        for payload in payloads:
            if payload is None:
                parts.append(b"\x00\x00\x00\x00")
            else:
                parts.append(struct.pack("<I", len(payload)))
                parts.append(payload)
    if accounting is not None:
        parts.append(accounting)
    return b"".join(parts)


def decode_level_reply(
    body: bytes,
) -> Tuple["List[Optional[bytes]] | None", int, "bytes | None"]:
    """Inverse of :func:`encode_level_reply`.

    Returns ``(payloads, embeddings, accounting)`` with ``payloads``
    None when the reply carried no payload slots (final level).
    """
    try:
        embeddings, has_accounting, num_payloads = struct.unpack_from(
            "<QBI", body
        )
    except struct.error as exc:
        raise TransportError(f"truncated level reply: {exc}") from None
    offset = 13
    payloads: "List[Optional[bytes]] | None" = None
    if num_payloads:
        payloads = []
        for _ in range(num_payloads):
            if offset + 4 > len(body):
                raise TransportError("truncated level reply payload table")
            (size,) = struct.unpack_from("<I", body, offset)
            offset += 4
            if size == 0:
                payloads.append(None)
                continue
            if offset + size > len(body):
                raise TransportError(
                    f"level reply payload of {size} bytes overruns body"
                )
            payloads.append(body[offset:offset + size])
            offset += size
    accounting = body[offset:] if has_accounting else None
    if has_accounting and not accounting:
        raise TransportError("level reply promised accounting but had none")
    return payloads, embeddings, accounting


# ----------------------------------------------------------------------
# Handshake
# ----------------------------------------------------------------------


def encode_handshake(descriptor_dict: dict, seed: int) -> bytes:
    """HELLO body: the shard's handoff descriptor plus the job seed."""
    return pickle.dumps(
        {
            "protocol": PROTOCOL_VERSION,
            "seed": seed,
            "descriptor": dict(descriptor_dict),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def decode_handshake(body: bytes) -> Tuple[dict, int]:
    """Inverse of :func:`encode_handshake`: ``(descriptor_dict, seed)``.

    Also validates the embedded ``protocol`` field.  The per-frame
    version byte already rejects framing skew before this body is ever
    parsed; the embedded field guards the *handshake schema* itself, so
    the redundancy is checked rather than silently ignored.
    """
    message = decode_pickle_body(body)
    if not isinstance(message, dict) or "descriptor" not in message:
        raise TransportError("malformed handshake body")
    protocol = message.get("protocol")
    if protocol != PROTOCOL_VERSION:
        raise TransportError(
            f"handshake announces protocol {protocol!r}; this build "
            f"speaks version {PROTOCOL_VERSION}"
        )
    return message["descriptor"], message.get("seed", 0)


def encode_announce(
    address: Tuple[str, int], descriptor_dict: dict, seed: int
) -> bytes:
    """ANNOUNCE body: where the worker serves, plus its handshake.

    The descriptor/seed are the same fields a HELLO would carry, so a
    registry can pre-validate identity and placement without opening a
    second connection to the worker.
    """
    host, port = address
    return pickle.dumps(
        {
            "protocol": PROTOCOL_VERSION,
            "seed": seed,
            "descriptor": dict(descriptor_dict),
            "address": (str(host), int(port)),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def decode_announce(body: bytes) -> Tuple[Tuple[str, int], dict, int]:
    """Inverse of :func:`encode_announce`.

    Returns ``(address, descriptor_dict, seed)`` and validates the
    embedded ``protocol`` field exactly like :func:`decode_handshake`.
    """
    message = decode_pickle_body(body)
    if (
        not isinstance(message, dict)
        or "descriptor" not in message
        or "address" not in message
    ):
        raise TransportError("malformed announce body")
    protocol = message.get("protocol")
    if protocol != PROTOCOL_VERSION:
        raise TransportError(
            f"announce declares protocol {protocol!r}; this build "
            f"speaks version {PROTOCOL_VERSION}"
        )
    address = message["address"]
    if (
        not isinstance(address, tuple)
        or len(address) != 2
        or not isinstance(address[0], str)
        or not isinstance(address[1], int)
    ):
        raise TransportError(
            f"announce carries malformed address {address!r}"
        )
    return address, message["descriptor"], message.get("seed", 0)


def parse_address(text: str) -> Tuple[str, int]:
    """Parse ``host:port`` (the CLI's ``--hosts`` entries)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise TransportError(
            f"worker address {text!r} is not of the form host:port"
        )
    try:
        return host, int(port)
    except ValueError:
        raise TransportError(
            f"worker address {text!r} has a non-numeric port"
        ) from None
