"""Discrete-event simulation of the parallel execution engine.

CPython's GIL prevents real threads from showing wall-clock speedup on
the intersection-heavy inner loop (the paper's engine is Rust).  To
reproduce the *scalability* (Exp-4, Fig. 10) and *load balancing*
(Exp-6, Fig. 12) experiments we therefore simulate the scheduler in
virtual time over the exact same task tree:

* every worker owns a LIFO deque, exactly like the threaded executor;
* executing a task costs its measured work units (posting entries
  touched by candidate generation plus validation work) — i.e. the cost
  model charges precisely the set-operation work the paper's engine
  performs;
* an idle worker steals half a random victim's tasks from the tail,
  paying a small constant overhead;
* workers past the physical-core count run at reduced efficiency, which
  reproduces the NUMA / hyper-threading knee the paper observes beyond
  20 threads on its 2-socket machine.

The simulation executes each task exactly once (candidates and
validation actually run, results are exact); only *time* is virtual.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.counters import MatchCounters
from ..core.engine import HGMatch
from ..errors import SchedulerError
from ..hypergraph import Hypergraph
from .tasks import ROOT_TASK, PartialEmbedding, WorkerStats, default_seed


@dataclass(frozen=True)
class CostModel:
    """Virtual-time cost model for the simulated executor.

    ``task_overhead`` is the fixed cost of scheduling one task (the paper
    stresses tasks are lightweight, so this is small relative to typical
    expansion work); ``steal_overhead`` is charged per steal attempt;
    workers with id ≥ ``physical_cores`` have their task costs divided by
    ``numa_efficiency`` (< 1), and ids ≥ ``2 × physical_cores`` by
    ``smt_efficiency``, mirroring the paper's 2×20-core, 80-hardware-
    thread host.
    """

    task_overhead: float = 2.0
    steal_overhead: float = 1.0
    physical_cores: int = 20
    numa_efficiency: float = 0.80
    smt_efficiency: float = 0.50

    def efficiency(self, worker_id: int) -> float:
        if worker_id < self.physical_cores:
            return 1.0
        if worker_id < 2 * self.physical_cores:
            return self.numa_efficiency
        return self.smt_efficiency


@dataclass
class SimulationResult:
    """Outcome of one simulated run."""

    embeddings: int
    makespan: float
    counters: MatchCounters
    worker_stats: List[WorkerStats] = field(default_factory=list)
    total_steals: int = 0

    def busy_times(self) -> List[float]:
        return [stats.busy_time for stats in self.worker_stats]

    def load_imbalance(self) -> float:
        """Max/mean per-worker busy time (1.0 = perfect balance)."""
        times = self.busy_times()
        if not times:
            return 1.0
        mean = sum(times) / len(times)
        return max(times) / mean if mean > 0 else 1.0


class SimulatedExecutor:
    """Simulate ``num_workers`` workers over the real task tree.

    Parameters mirror :class:`repro.parallel.executor.ThreadedExecutor`
    (``stealing`` / ``steal_mode`` feed the load-balancing ablation), plus
    a :class:`CostModel`.
    """

    def __init__(
        self,
        num_workers: int,
        cost_model: "CostModel | None" = None,
        stealing: bool = True,
        steal_mode: str = "half",
        seed: "int | None" = None,
    ) -> None:
        if num_workers < 1:
            raise SchedulerError("num_workers must be >= 1")
        if steal_mode not in ("half", "one"):
            raise SchedulerError(f"unknown steal mode {steal_mode!r}")
        self.num_workers = num_workers
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.stealing = stealing
        self.steal_mode = steal_mode
        # None resolves to REPRO_SEED (tasks.default_seed); the victim
        # RNG below is seeded per job from this value alone.
        self.seed = default_seed() if seed is None else seed

    def run(
        self,
        engine: HGMatch,
        query: Hypergraph,
        order: "Sequence[int] | None" = None,
    ) -> SimulationResult:
        plan = engine.plan(query, order)
        num_steps = plan.num_steps
        rng = random.Random(self.seed)
        model = self.cost_model

        counters = MatchCounters()
        first_level = engine.expand(plan, ROOT_TASK, counters)
        counters.tasks += 1
        embeddings = 0
        if num_steps == 1:
            embeddings = len(first_level)
            first_level = []

        deques: List[List[PartialEmbedding]] = [[] for _ in range(self.num_workers)]
        for position, task in enumerate(first_level):
            # Round-robin static distribution; head of list = LIFO head.
            deques[position % self.num_workers].append(task)
        clocks = [0.0] * self.num_workers
        stats = [WorkerStats(worker_id=i) for i in range(self.num_workers)]
        total_steals = 0
        outstanding = len(first_level)

        while outstanding > 0:
            # Advance the worker whose virtual clock is smallest and can
            # make progress (has a task or can steal one).
            worker_id = self._next_runnable(deques, clocks)
            if worker_id is None:
                break
            own = deques[worker_id]
            if not own:
                stolen = self._simulate_steal(worker_id, deques, stats, rng)
                clocks[worker_id] += model.steal_overhead / model.efficiency(worker_id)
                if not stolen:
                    continue
                total_steals += 1
                # Fall through: the thief immediately runs one stolen task
                # (otherwise an idle peer would re-steal it — livelock).
            task = own.pop()  # LIFO: most recently pushed
            work_before = counters.work_units
            children = engine.expand(plan, task, counters)
            counters.tasks += 1
            spawned = 0
            for child in children:
                if len(child) == num_steps:
                    embeddings += 1
                    stats[worker_id].embeddings += 1
                else:
                    own.append(child)
                    spawned += 1
            outstanding += spawned - 1
            cost = model.task_overhead + (counters.work_units - work_before)
            cost /= model.efficiency(worker_id)
            clocks[worker_id] += cost
            stats[worker_id].tasks_executed += 1
            stats[worker_id].busy_time += cost
            if len(own) > stats[worker_id].peak_queue:
                stats[worker_id].peak_queue = len(own)

        counters.embeddings = embeddings
        counters.peak_retained = max(
            (stats[i].peak_queue for i in range(self.num_workers)), default=0
        )
        return SimulationResult(
            embeddings=embeddings,
            makespan=max(clocks) if clocks else 0.0,
            counters=counters,
            worker_stats=stats,
            total_steals=total_steals,
        )

    # ------------------------------------------------------------------
    def _next_runnable(
        self, deques: List[List[PartialEmbedding]], clocks: List[float]
    ) -> Optional[int]:
        """Smallest-clock worker that has a task, or can steal one."""
        any_nonempty = any(deques)
        candidates: List[int] = []
        for worker_id in range(self.num_workers):
            if deques[worker_id]:
                candidates.append(worker_id)
            elif self.stealing and any_nonempty:
                candidates.append(worker_id)
        if not candidates:
            return None
        return min(candidates, key=lambda w: (clocks[w], w))

    def _simulate_steal(
        self,
        worker_id: int,
        deques: List[List[PartialEmbedding]],
        stats: List[WorkerStats],
        rng: random.Random,
    ) -> bool:
        victims = [
            vid
            for vid in range(self.num_workers)
            if vid != worker_id and deques[vid]
        ]
        stats[worker_id].steal_attempts += 1
        if not victims:
            return False
        victim = rng.choice(victims)
        queue = deques[victim]
        if self.steal_mode == "half":
            take = max(1, len(queue) // 2)
        else:
            take = 1
        # Steal from the tail: the oldest entries sit at the front of the
        # list (index 0) because owners append/pop at the back.
        stolen = queue[:take]
        del queue[:take]
        deques[worker_id].extend(stolen)
        stats[worker_id].steals_succeeded += 1
        stats[worker_id].tasks_stolen += len(stolen)
        return True


def simulate_speedups(
    engine: HGMatch,
    query: Hypergraph,
    thread_counts: Sequence[int],
    cost_model: "CostModel | None" = None,
    seed: int = 0,
) -> List[dict]:
    """Run the Exp-4 sweep: simulated makespan and speedup per thread count.

    Returns one row per entry of ``thread_counts`` with keys
    ``threads``, ``makespan``, ``speedup`` and ``embeddings``; the
    speedup baseline is the single-worker makespan.
    """
    baseline: "float | None" = None
    rows: List[dict] = []
    for threads in thread_counts:
        executor = SimulatedExecutor(threads, cost_model=cost_model, seed=seed)
        result = executor.run(engine, query)
        if baseline is None:
            solo = (
                result.makespan
                if threads == 1
                else SimulatedExecutor(1, cost_model=cost_model, seed=seed)
                .run(engine, query)
                .makespan
            )
            baseline = solo
        rows.append(
            {
                "threads": threads,
                "makespan": result.makespan,
                "speedup": baseline / result.makespan if result.makespan else 0.0,
                "embeddings": result.embeddings,
            }
        )
    return rows
