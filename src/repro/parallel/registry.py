"""Worker discovery: the ANNOUNCE/HEARTBEAT registry.

The replicated socket runtime (PR 6) survives the loss of hosts it was
*given*; this module is the half that lets it run on hosts that *show
up*.  A :class:`WorkerRegistry` is a tiny TCP server that shard
workers register with: each ``serve-shard --announce host:port`` worker
opens one long-lived connection, sends a single ANNOUNCE frame (its
serving address plus the same descriptor/seed its HELLO would carry)
and then a HEARTBEAT frame every interval.  The registry turns that
stream into a live membership table:

* a worker is **live** while its heartbeats arrive;
* a worker that misses ``miss_budget`` consecutive intervals — or
  whose connection drops, or that sends a frame the transport rejects —
  is **evicted**, and the eviction is recorded so a coordinator
  polling the registry can fail over *before* its own (much longer)
  per-frame I/O deadline expires;
* a fresh ANNOUNCE for an identity that is already live supersedes the
  old record (**latest wins**): a restarted worker must not be held
  hostage by its dead predecessor's half-open connection.

Membership is exposed in the same shape the executor already consumes:
:meth:`WorkerRegistry.membership` builds one
:class:`~repro.hypergraph.sharding.ReplicaSet` per shard range (missed
heartbeats feed replica liveness directly), and
:meth:`WorkerRegistry.addresses` flattens the table into the
shard-major ``addresses`` list :class:`~repro.parallel.net_executor.
NetShardExecutor` takes.

The worker side is :class:`Announcer`: a daemon thread owned by
:class:`~repro.parallel.net_executor.ShardWorker` that connects,
announces, heartbeats, and reconnects under
:class:`~repro.parallel.tasks.RetryPolicy` backoff whenever the
registry link fails.  The announcer never gives up — discovery is a
liveness daemon, not a job — and it is fault-injectable: a
:class:`~repro.parallel.chaos.FaultPlan` wraps the registry connection
under the ``announcer`` role (frame 1 = ANNOUNCE, frames 2+ =
HEARTBEATs), so dropped heartbeats and garbled announcements are as
deterministic as every other chaos fault.

Registry traffic is one-way: the registry never replies.  That keeps
the worker's serving loop and its announcing loop fully independent —
a slow registry cannot stall enumeration — and makes the protocol
trivially extensible (new frame kinds are ignored-by-close, exactly
like the data path).
"""

from __future__ import annotations

import logging
import random
import selectors
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SchedulerError, TransportError
from ..hypergraph.sharding import ReplicaSet, ShardDescriptor
from . import transport
from .chaos import ROLE_ANNOUNCER
from .tasks import RetryPolicy

logger = logging.getLogger("repro.parallel")

#: Default seconds between worker heartbeats.  Short relative to the
#: per-frame I/O deadline (``REPRO_NET_TIMEOUT``, default 600 s) — the
#: whole point of heartbeat eviction is to notice a wedged worker long
#: before the data path's deadline would.
DEFAULT_HEARTBEAT_INTERVAL = 0.5

#: Consecutive missed intervals before eviction.  One lost packet or a
#: GC pause must not flap membership; three straight silences means the
#: worker is gone or wedged.
DEFAULT_MISS_BUDGET = 3


@dataclass
class WorkerRecord:
    """One live worker as the registry sees it."""

    shard_id: int
    replica_id: int
    address: Tuple[str, int]
    descriptor: ShardDescriptor
    seed: int
    announced_at: float
    last_seen: float

    @property
    def identity(self) -> Tuple[int, int]:
        return (self.shard_id, self.replica_id)


@dataclass
class EvictionRecord:
    """One eviction, kept so coordinators can react after the fact."""

    shard_id: int
    replica_id: int
    reason: str
    at: float = field(default_factory=time.monotonic)

    @property
    def identity(self) -> Tuple[int, int]:
        return (self.shard_id, self.replica_id)


class WorkerRegistry:
    """The discovery server: live membership from announce/heartbeat.

    Bind-and-start is explicit (``registry.start()``) so tests can
    inspect the bound address before any worker connects::

        registry = WorkerRegistry()
        registry.start()
        cluster = spawn_local_cluster(graph, 2, announce=registry.address)
        addresses = registry.wait_for(num_shards=2)

    All read APIs are thread-safe (the server loop runs in a daemon
    thread); mutation happens only inside that loop.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: "float | None" = None,
        miss_budget: int = DEFAULT_MISS_BUDGET,
    ) -> None:
        if heartbeat_interval is None:
            heartbeat_interval = DEFAULT_HEARTBEAT_INTERVAL
        if heartbeat_interval <= 0:
            raise SchedulerError(
                f"heartbeat_interval must be positive, got "
                f"{heartbeat_interval!r}"
            )
        if miss_budget < 1:
            raise SchedulerError(
                f"miss_budget must be >= 1, got {miss_budget!r}"
            )
        self.heartbeat_interval = float(heartbeat_interval)
        self.miss_budget = miss_budget
        self._host = host
        self._port = port
        self._listener: "socket.socket | None" = None
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._records: Dict[Tuple[int, int], WorkerRecord] = {}
        self._evictions: List[EvictionRecord] = []
        self._generation = 0
        #: connection -> (buffer, identity-or-None); loop-thread only.
        self._conns: Dict[socket.socket, "_Conn"] = {}

    # -- lifecycle ------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise SchedulerError("registry is not started")
        return self._listener.getsockname()[:2]

    @property
    def eviction_deadline(self) -> float:
        """Seconds of silence after which a worker is evicted."""
        return self.heartbeat_interval * self.miss_budget

    def start(self) -> Tuple[str, int]:
        """Bind the listener and start the server thread; returns the
        bound ``(host, port)``."""
        if self._thread is not None:
            raise SchedulerError("registry is already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(128)
        listener.setblocking(False)
        self._listener = listener
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._serve, name="repro-registry", daemon=True
        )
        self._thread.start()
        return self.address

    def close(self) -> None:
        """Stop the server thread and drop every connection."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - best effort
                pass
            self._listener = None

    def __enter__(self) -> "WorkerRegistry":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- read API (any thread) ------------------------------------------

    @property
    def generation(self) -> int:
        """Bumped on every membership change — a cheap staleness check
        for pollers."""
        with self._lock:
            return self._generation

    def snapshot(self) -> List[WorkerRecord]:
        """Every live record, ordered (shard_id, replica_id)."""
        with self._lock:
            return sorted(
                self._records.values(),
                key=lambda record: record.identity,
            )

    def record(
        self, shard_id: int, replica_id: int = 0
    ) -> Optional[WorkerRecord]:
        with self._lock:
            return self._records.get((shard_id, replica_id))

    def is_live(self, shard_id: int, replica_id: int = 0) -> bool:
        with self._lock:
            return (shard_id, replica_id) in self._records

    def evictions_since(
        self, cursor: int
    ) -> Tuple[int, List[EvictionRecord]]:
        """Evictions recorded after ``cursor``; returns the new cursor
        plus the records (coordinators poll this to fail over ahead of
        their own I/O deadlines)."""
        with self._lock:
            return len(self._evictions), self._evictions[cursor:]

    @property
    def evictions(self) -> List[EvictionRecord]:
        with self._lock:
            return list(self._evictions)

    def membership(
        self, num_shards: int, num_replicas: "int | None" = None
    ) -> List[ReplicaSet]:
        """Live membership as one :class:`ReplicaSet` per shard range —
        missed-heartbeat eviction lands here as an absent member.

        ``num_replicas`` defaults to the widest replica arithmetic any
        live worker announced (1 when nothing is live).
        """
        with self._lock:
            records = list(self._records.values())
        if num_replicas is None:
            num_replicas = max(
                (record.descriptor.num_replicas for record in records),
                default=1,
            )
        grid = [
            ReplicaSet(shard_id, num_replicas)
            for shard_id in range(num_shards)
        ]
        for record in records:
            if not 0 <= record.shard_id < num_shards:
                continue
            if not 0 <= record.replica_id < num_replicas:
                continue
            grid[record.shard_id].place(record.replica_id, record)
        return grid

    def addresses(
        self, num_shards: int, num_replicas: int = 1
    ) -> List[Tuple[str, int]]:
        """The shard-major flat address list the executor consumes
        (``shard_id * num_replicas + replica_id``); raises
        :class:`SchedulerError` when any slot has no live worker."""
        missing: List[Tuple[int, int]] = []
        flat: List[Tuple[str, int]] = []
        with self._lock:
            for shard_id in range(num_shards):
                for replica_id in range(num_replicas):
                    record = self._records.get((shard_id, replica_id))
                    if record is None:
                        missing.append((shard_id, replica_id))
                    else:
                        flat.append(record.address)
        if missing:
            raise SchedulerError(
                f"registry has no live worker for "
                f"{len(missing)} of {num_shards * num_replicas} slots: "
                f"{missing[:8]}"
            )
        return flat

    def wait_for(
        self,
        num_shards: int,
        num_replicas: int = 1,
        timeout: float = 30.0,
    ) -> List[Tuple[str, int]]:
        """Block until every ``(shard, replica)`` slot has announced (or
        ``timeout`` elapses), then return :meth:`addresses`."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.addresses(num_shards, num_replicas)
            except SchedulerError:
                if time.monotonic() >= deadline:
                    raise SchedulerError(
                        f"registry did not discover "
                        f"{num_shards}x{num_replicas} workers within "
                        f"{timeout:.1f}s; live: "
                        f"{[r.identity for r in self.snapshot()]}"
                    ) from None
                time.sleep(min(0.01, self.heartbeat_interval / 4))

    # -- server loop (daemon thread) ------------------------------------

    def _serve(self) -> None:
        selector = selectors.DefaultSelector()
        selector.register(self._listener, selectors.EVENT_READ, None)
        try:
            while not self._stop.is_set():
                tick = min(self.heartbeat_interval / 2, 0.2)
                for key, _ in selector.select(timeout=tick):
                    if key.data is None:
                        self._accept(selector)
                    else:
                        self._service(selector, key.fileobj, key.data)
                self._scan_deadlines(selector)
        finally:
            for sock in list(self._conns):
                self._close_conn(selector, sock)
            selector.close()

    def _accept(self, selector) -> None:
        try:
            sock, _ = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        conn = _Conn(sock)
        self._conns[sock] = conn
        selector.register(sock, selectors.EVENT_READ, conn)

    def _service(self, selector, sock, conn: "_Conn") -> None:
        try:
            chunk = sock.recv(1 << 16)
        except BlockingIOError:  # pragma: no cover - spurious wakeup
            return
        except OSError:
            self._drop_conn(selector, sock, conn, "connection error")
            return
        if not chunk:
            self._drop_conn(selector, sock, conn, "connection closed")
            return
        conn.buffer.extend(chunk)
        try:
            for kind, body in conn.drain_frames():
                self._dispatch(conn, kind, body)
        except TransportError as exc:
            self._drop_conn(selector, sock, conn, f"protocol error: {exc}")

    def _dispatch(self, conn: "_Conn", kind: int, body: bytes) -> None:
        now = time.monotonic()
        if kind == transport.MSG_ANNOUNCE:
            address, descriptor_dict, seed = transport.decode_announce(body)
            try:
                descriptor = ShardDescriptor.from_dict(descriptor_dict)
            except Exception as exc:
                raise TransportError(
                    f"announce carries undecodable descriptor: {exc}"
                ) from exc
            identity = (descriptor.shard_id, descriptor.replica_id)
            record = WorkerRecord(
                shard_id=descriptor.shard_id,
                replica_id=descriptor.replica_id,
                address=address,
                descriptor=descriptor,
                seed=seed,
                announced_at=now,
                last_seen=now,
            )
            with self._lock:
                superseded = (
                    identity in self._records
                    and self._identity_conn(identity) is not conn
                )
                self._records[identity] = record
                self._generation += 1
            if superseded:
                # Latest wins: unhook the stale connection so its
                # eventual death cannot evict the new worker.
                stale = self._identity_conn(identity, exclude=conn)
                if stale is not None:
                    stale.identity = None
            conn.identity = identity
            conn.last_seen = now
            logger.debug(
                "registry: announce shard %d replica %d at %s",
                identity[0], identity[1], address,
            )
        elif kind == transport.MSG_HEARTBEAT:
            if conn.identity is None:
                raise TransportError("heartbeat before announce")
            conn.last_seen = now
            with self._lock:
                record = self._records.get(conn.identity)
                if record is not None:
                    record.last_seen = now
        else:
            raise TransportError(
                f"registry received unexpected frame kind {kind:#x}"
            )

    def _identity_conn(
        self,
        identity: Tuple[int, int],
        exclude: "Optional[_Conn]" = None,
    ) -> "Optional[_Conn]":
        for conn in self._conns.values():
            if conn is not exclude and conn.identity == identity:
                return conn
        return None

    def _scan_deadlines(self, selector) -> None:
        deadline = self.eviction_deadline
        now = time.monotonic()
        for sock, conn in list(self._conns.items()):
            if conn.identity is None:
                continue
            if now - conn.last_seen > deadline:
                self._drop_conn(
                    selector, sock, conn,
                    f"missed {self.miss_budget} heartbeats "
                    f"({deadline:.1f}s silent)",
                )

    def _drop_conn(self, selector, sock, conn: "_Conn", reason: str) -> None:
        identity = conn.identity
        self._close_conn(selector, sock)
        if identity is None:
            return
        with self._lock:
            if identity in self._records:
                del self._records[identity]
                self._evictions.append(
                    EvictionRecord(identity[0], identity[1], reason)
                )
                self._generation += 1
        logger.info(
            "registry: evicted shard %d replica %d (%s)",
            identity[0], identity[1], reason,
        )

    def _close_conn(self, selector, sock) -> None:
        self._conns.pop(sock, None)
        try:
            selector.unregister(sock)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        try:
            sock.close()
        except OSError:  # pragma: no cover - best effort
            pass


class _Conn:
    """Per-connection framing state inside the registry loop."""

    __slots__ = ("sock", "buffer", "identity", "last_seen")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buffer = bytearray()
        self.identity: "Optional[Tuple[int, int]]" = None
        self.last_seen = time.monotonic()

    def drain_frames(self):
        """Yield every complete ``(kind, body)`` in the buffer,
        validating headers through the transport's one checker."""
        header_size = transport._HEADER.size
        while len(self.buffer) >= header_size:
            length, version, kind = transport._HEADER.unpack_from(
                self.buffer
            )
            transport._validate_header(length, version, kind)
            total = 4 + length
            if len(self.buffer) < total:
                return
            body = bytes(self.buffer[header_size:total])
            del self.buffer[:total]
            yield kind, body


# ----------------------------------------------------------------------
# Worker side: the announcer daemon
# ----------------------------------------------------------------------


class Announcer:
    """The worker's registry link: announce once, heartbeat forever.

    ``hello`` is a callable returning ``(address, descriptor_dict,
    seed)`` — evaluated at every (re)connect so a worker whose
    descriptor changed (a REBALANCE relabel) re-announces its current
    identity, not a stale snapshot.

    The announcer reconnects under :class:`RetryPolicy` jittered
    backoff without an attempt bound (capped delay, unbounded tries): a
    registry restart must not permanently orphan a healthy worker.  It
    is a daemon thread and never raises into the worker's serving loop.
    """

    def __init__(
        self,
        registry_address: Tuple[str, int],
        hello: Callable[[], Tuple[Tuple[str, int], dict, int]],
        interval: "float | None" = None,
        retry: "RetryPolicy | None" = None,
        chaos=None,
        rng: "random.Random | None" = None,
    ) -> None:
        self.registry_address = tuple(registry_address)
        self.hello = hello
        self.interval = (
            DEFAULT_HEARTBEAT_INTERVAL if interval is None else interval
        )
        if self.interval <= 0:
            raise SchedulerError(
                f"heartbeat interval must be positive, got "
                f"{self.interval!r}"
            )
        self.retry = RetryPolicy() if retry is None else retry
        self.chaos = chaos
        self._rng = rng if rng is not None else random.Random(0)
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        #: Registration round-trips completed (announce frames sent);
        #: observable so tests can await the first announce.
        self.announced = threading.Event()

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-announcer", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None

    def _connect(self):
        sock = socket.create_connection(self.registry_address, timeout=5.0)
        sock.settimeout(5.0)
        if self.chaos is not None:
            address, descriptor_dict, _ = self.hello()
            sock = self.chaos.wrap(
                sock,
                ROLE_ANNOUNCER,
                descriptor_dict.get("shard_id"),
                descriptor_dict.get("replica_id"),
            )
        return sock

    def _run(self) -> None:
        attempt = 0
        while not self._stop.is_set():
            try:
                sock = self._connect()
            except OSError:
                self._stop.wait(
                    self.retry.delay(
                        min(attempt, self.retry.attempts - 1), self._rng
                    )
                )
                attempt += 1
                continue
            try:
                address, descriptor_dict, seed = self.hello()
                transport.send_frame(
                    sock,
                    transport.MSG_ANNOUNCE,
                    transport.encode_announce(
                        address, descriptor_dict, seed
                    ),
                )
                self.announced.set()
                attempt = 0
                while not self._stop.wait(self.interval):
                    transport.send_frame(sock, transport.MSG_HEARTBEAT)
            except (TransportError, OSError):
                # Lost the registry (or a chaos sever): back off and
                # re-announce on a fresh connection.
                attempt += 1
                self._stop.wait(
                    self.retry.delay(
                        min(attempt, self.retry.attempts - 1), self._rng
                    )
                )
            finally:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - best effort
                    pass
