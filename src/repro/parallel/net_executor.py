"""Socket-sharded execution: shard servers + the network coordinator.

The last transport rung below multi-host deployment.  The pieces:

* :class:`ShardWorker` — a TCP server process that builds and owns one
  :class:`~repro.hypergraph.sharding.StoreShard` and answers the
  level-synchronous protocol over framed messages
  (:mod:`repro.parallel.transport`).  Run it on any host that can load
  the data hypergraph (``python -m repro serve-shard`` is the CLI
  wrapper).
* :class:`NetShardExecutor` — the coordinator: connects to the shard
  workers, validates their handshakes (backend, shard arithmetic,
  replica arithmetic, data fingerprint, scheduler seed), and runs the
  exact same level-synchronous composition loop as the multiprocess
  executor (:func:`repro.parallel.level_sync.run_level_synchronous`),
  so counts are bit-identical across pipes, sockets and the sequential
  engine.
* :func:`spawn_local_cluster` — boots ``num_shards × num_replicas``
  shard workers as local subprocesses on ephemeral loopback ports.
  Tests, the CLI's ``--executor sockets`` and the benchmarks use it to
  exercise the full network path on one machine; multi-host
  deployments start the workers themselves and hand the coordinator
  their addresses.

Replication and failover
------------------------
Each shard range may be served by ``K`` replicas (``num_replicas``).
Because shard construction is a pure function of ``(graph, shard_id,
num_shards, backend, placement)``, every replica of a range holds an
identical shard, and :func:`~repro.parallel.level_sync.expand_level`
is a pure function of ``(plan, step, frontier, shard)`` — so any
replica can answer any LEVEL of a job it has seen the JOB for, and two
replicas' answers to the same LEVEL are bit-identical.  The
coordinator exploits this three ways:

* **membership** — compose is refused only when a range has *zero*
  live replicas; a connect or handshake failure on one address merely
  drops that replica when ``K > 1``;
* **mid-job failover** — a replica that dies or exceeds its per-frame
  deadline mid-level has the in-flight LEVEL re-dispatched to a live
  replica of the same range (and local clusters can additionally
  respawn the lost process — PR 5's restart-with-requeue, now one case
  of the general policy);
* **speculation** — with ``speculate_after`` set, a straggling level
  is speculatively re-sent to an idle replica; whichever reply arrives
  first wins, and the loser's duplicate is discarded *before* it
  reaches the composition loop (per-member request tokens), so
  duplicates are provably harmless and counts stay bit-identical.

What crosses the wire is what crossed the pipes: the frontier of
self-contained partial embeddings outbound, and compact
:class:`~repro.core.candidates.CandidateSet` payloads (row bitmasks /
chunk maps / edge-id tuples, each prefixed with the candidate wire
version byte) inbound — never decoded edge-id lists for the mask
backends.  ``docs/WIRE_FORMAT.md`` specifies every byte;
``docs/ARCHITECTURE.md`` places this layer in the system (see its
"Replication & failover" section for the failover sequence).
"""

from __future__ import annotations

import logging
import os
import pickle
import random
import socket
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Dict, List, Optional, Sequence, Tuple

import selectors

from ..core.candidates import (
    AnchorUnionMemo,
    VertexStepState,
    decode_versioned,
    encode_versioned,
)
from ..core.counters import WORK_UNIT_MODELS, MatchCounters
from ..core.plan import build_execution_plan
from ..errors import SchedulerError, TransportError
from ..hypergraph import Hypergraph
from ..hypergraph.dynamic import DynamicHypergraph
from ..hypergraph.sharding import (
    ReplicaSet,
    SHARDING_MODES,
    ShardDescriptor,
    StoreShard,
    build_range_table,
    mutate_range_table,
    range_table_label,
    range_table_slices,
    resolve_sharding,
    retire_shard_ranges,
    shard_grouping,
)
from ..hypergraph.storage import resolve_index_backend
from . import transport
from .executor import ParallelResult
from .level_sync import MASK_BACKENDS, expand_level, plan_pool_rebalance
from .tasks import RetryPolicy, WorkerStats, default_seed, join_or_kill

logger = logging.getLogger("repro.parallel")

#: How long the coordinator waits for a TCP connect + handshake.
CONNECT_TIMEOUT = 10.0

#: Default per-frame I/O timeout on established connections — the
#: fallback when neither the ``REPRO_NET_TIMEOUT`` environment variable
#: nor the ``io_timeout`` kwarg names one.  Generous — level replies
#: can take as long as the shard's share of the enumeration — but
#: finite, so a wedged peer surfaces as failover (or an error) instead
#: of a hang.
DEFAULT_IO_TIMEOUT = 600.0


def default_io_timeout() -> float:
    """The per-frame I/O timeout: ``REPRO_NET_TIMEOUT`` seconds or
    :data:`DEFAULT_IO_TIMEOUT`.

    Resolved at call time (like ``REPRO_SEED``) so a test session or a
    deployment can tighten the failover deadline without touching call
    sites; both the coordinator and ``serve-shard`` workers read it.
    """
    value = os.environ.get("REPRO_NET_TIMEOUT")
    if not value:
        return DEFAULT_IO_TIMEOUT
    try:
        timeout = float(value)
    except ValueError:
        raise TransportError(
            f"REPRO_NET_TIMEOUT must be a number of seconds, got {value!r}"
        ) from None
    if timeout <= 0:
        raise TransportError(
            f"REPRO_NET_TIMEOUT must be positive, got {value!r}"
        )
    return timeout


def default_retry_policy() -> RetryPolicy:
    """The coordinator's connect/restart policy, from the environment.

    ``REPRO_NET_RETRIES`` (a positive integer) overrides the attempt
    budget and ``REPRO_NET_BACKOFF`` (a positive number of seconds)
    overrides the base backoff delay; unset, both fall back to
    :class:`~repro.parallel.tasks.RetryPolicy`'s defaults (4 attempts,
    0.05 s base).  Resolved at call time, like ``REPRO_NET_TIMEOUT`` in
    :func:`default_io_timeout`, so a deployment can harden or tighten
    retry behaviour without touching call sites.
    """
    kwargs = {}
    value = os.environ.get("REPRO_NET_RETRIES")
    if value:
        try:
            attempts = int(value)
        except ValueError:
            raise TransportError(
                f"REPRO_NET_RETRIES must be an integer attempt count, "
                f"got {value!r}"
            ) from None
        if attempts < 1:
            raise TransportError(
                f"REPRO_NET_RETRIES must be >= 1, got {value!r}"
            )
        kwargs["attempts"] = attempts
    value = os.environ.get("REPRO_NET_BACKOFF")
    if value:
        try:
            base_delay = float(value)
        except ValueError:
            raise TransportError(
                f"REPRO_NET_BACKOFF must be a number of seconds, "
                f"got {value!r}"
            ) from None
        if base_delay <= 0:
            raise TransportError(
                f"REPRO_NET_BACKOFF must be positive, got {value!r}"
            )
        kwargs["base_delay"] = base_delay
        kwargs["max_delay"] = max(
            base_delay, RetryPolicy.max_delay
        )
    return RetryPolicy(**kwargs)


#: Default policy for coordinator → worker TCP connects (the static
#: fallback; executors resolve :func:`default_retry_policy` at
#: construction so the environment knobs are honoured).
CONNECT_RETRY = RetryPolicy()

#: Default policy for polling a spawned worker's ready report (short
#: first probes — workers are usually up in milliseconds — backing off
#: while a slow shard build holds the pipe quiet).
READY_POLL = RetryPolicy(attempts=64, base_delay=0.005, max_delay=0.25)


def _disable_nagle(sock) -> None:
    """Request/response protocols want small frames out *now*: Nagle
    coalescing only adds latency to the level barrier."""
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except (OSError, AttributeError):  # pragma: no cover - non-TCP peer
        pass


# ----------------------------------------------------------------------
# Worker side: the shard server
# ----------------------------------------------------------------------


@dataclass
class _QuerySession:
    """One multiplexed query's worker-side state (WIRE_FORMAT.md §2.8).

    Exactly the quadruple a legacy session keeps for its single job —
    held per query id so one connection can interleave many jobs, and
    droppable as a unit on CANCEL / completion / per-query error.
    """

    plan: object
    state: object
    counters: MatchCounters
    stats: WorkerStats


class ShardWorker:
    """A TCP server owning one store shard (one replica of one range).

    Builds shard ``shard_id`` of ``num_shards`` from ``graph`` at
    construction (the offline stage), then serves coordinator sessions
    sequentially: each accepted connection gets a HELLO handshake
    carrying the shard's :class:`~repro.hypergraph.sharding.
    ShardDescriptor` (stamped with this worker's ``replica_id`` of
    ``num_replicas``) and the worker's scheduler seed, then answers
    JOB / LEVEL / COLLECT frames until the peer sends STOP (end the
    session) or SHUTDOWN (stop the server).  One session at a time is
    the right concurrency: a shard's store is single-writer state per
    job, and the level-synchronous protocol keeps at most one
    coordinator request in flight per connection.

    Replicas of the same range differ *only* in ``replica_id``: the
    shard they build is byte-for-byte the same pure function of the
    placement, which is the whole failover argument.

    The server never trusts the stream: malformed frames raise
    :class:`~repro.errors.TransportError` and end the session (the
    server keeps accepting), while enumeration errors are reported to
    the peer as ERROR frames — prefixed with the failing shard id,
    replica id and range label so a multi-host failure is attributable
    from the coordinator's traceback alone — before the session ends.
    """

    def __init__(
        self,
        graph: Hypergraph,
        shard_id: int,
        num_shards: int,
        index_backend: "str | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        seed: "int | None" = None,
        sharding: "str | None" = None,
        replica_id: int = 0,
        num_replicas: int = 1,
        io_timeout: "float | None" = None,
        chaos=None,
        announce: "Tuple[str, int] | None" = None,
        heartbeat_interval: "float | None" = None,
    ) -> None:
        if num_replicas < 1:
            raise SchedulerError("num_replicas must be >= 1")
        if not 0 <= replica_id < num_replicas:
            raise SchedulerError(
                f"replica_id {replica_id} outside 0..{num_replicas - 1}"
            )
        self.index_backend = resolve_index_backend(index_backend)
        self.seed = default_seed() if seed is None else seed
        self.replica_id = replica_id
        self.num_replicas = num_replicas
        self.io_timeout = (
            default_io_timeout() if io_timeout is None else io_timeout
        )
        self.chaos = chaos
        self.shard = StoreShard.build(
            graph, shard_id, num_shards, self.index_backend,
            resolve_sharding(sharding),
        )
        self._graph = graph
        self._memo = AnchorUnionMemo()
        self._mask_validation = self.index_backend in MASK_BACKENDS
        self._listener: "socket.socket | None" = None
        self._host = host
        self._port = port
        self._announce = None if announce is None else tuple(announce)
        self._heartbeat_interval = heartbeat_interval
        self._announcer = None

    # -- lifecycle ------------------------------------------------------

    def bind(self) -> Tuple[str, int]:
        """Bind the listener; returns the bound ``(host, port)`` (the
        port is the OS-assigned one when constructed with port 0)."""
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            listener.listen(1)
            self._listener = listener
            self._host, self._port = listener.getsockname()[:2]
            self._start_announcer()
        return self._host, self._port

    def _announce_hello(self):
        """What the announcer registers: the serving address plus the
        same descriptor/seed a HELLO would carry — re-evaluated at each
        (re)connect so a REBALANCE relabel re-announces truthfully."""
        descriptor = self.shard.describe().with_replica(
            self.replica_id, self.num_replicas
        )
        return (self.address, descriptor.as_dict(), self.seed)

    def _start_announcer(self) -> None:
        if self._announce is None or self._announcer is not None:
            return
        from .registry import Announcer  # here to avoid an import cycle

        self._announcer = Announcer(
            self._announce,
            self._announce_hello,
            interval=self._heartbeat_interval,
            chaos=self.chaos,
            rng=random.Random(
                (self.shard.shard_id << 16) ^ self.replica_id ^ self.seed
            ),
        )
        self._announcer.start()

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    def close(self) -> None:
        if self._announcer is not None:
            self._announcer.stop()
            self._announcer = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - best effort
                pass
            self._listener = None

    # -- serving --------------------------------------------------------

    def _hello_body(self) -> bytes:
        """The HELLO payload: the shard descriptor stamped with this
        worker's replica membership, plus the scheduler seed."""
        descriptor = self.shard.describe().with_replica(
            self.replica_id, self.num_replicas
        )
        return transport.encode_handshake(descriptor.as_dict(), self.seed)

    def serve_forever(self, max_sessions: "int | None" = None) -> None:
        """Accept and serve sessions until SHUTDOWN (or ``max_sessions``
        sessions have ended — a testing/CLI convenience)."""
        self.bind()
        sessions = 0
        try:
            while max_sessions is None or sessions < max_sessions:
                try:
                    conn, _peer = self._listener.accept()
                except OSError:  # listener closed under us
                    return
                try:
                    keep_serving = self._serve_session(conn)
                finally:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover - best effort
                        pass
                sessions += 1
                if not keep_serving:
                    return
        finally:
            self.close()

    def _serve_session(self, conn) -> bool:
        """Serve one coordinator connection; False means SHUTDOWN."""
        if self.chaos is not None:
            # The chaos wrapper counts this session's outbound frames
            # (HELLO is frame 1) and applies any worker-role faults.
            conn = self.chaos.wrap(
                conn, "worker", self.shard.shard_id, self.replica_id
            )
        conn.settimeout(self.io_timeout)
        _disable_nagle(conn)
        try:
            transport.send_frame(conn, transport.MSG_HELLO, self._hello_body())
        except (TransportError, OSError):
            return True  # peer vanished before the handshake; next session
        plan = None
        state: "VertexStepState | None" = None
        counters = MatchCounters()
        stats = WorkerStats(worker_id=self.shard.shard_id)
        # Multiplexed (§2.8) jobs, keyed by query id.  Session state is
        # per *connection*: when the coordinator reconnects after a
        # failure it replays every registered QJOB, so dropping the dict
        # with the connection never strands a query.
        sessions: "Dict[int, _QuerySession]" = {}
        while True:
            try:
                kind, body = transport.recv_frame(conn)
            except TransportError:
                # Peer gone or stream garbled; the session is over either
                # way, and the server stays up for the next coordinator.
                return True
            try:
                if kind == transport.MSG_LEVEL:
                    step, frontier = transport.decode_pickle_body(body)
                    reply = expand_level(
                        self._graph, self.shard, plan, step, frontier,
                        state, counters, stats, self._memo,
                        self._mask_validation,
                    )
                    _, payloads, embeddings = reply
                    versioned: "List[Optional[bytes]] | None" = None
                    if payloads is not None:
                        versioned = []
                        for payload in payloads:
                            if payload is None:
                                versioned.append(None)
                            else:
                                versioned.append(encode_versioned(payload))
                                # The version byte ships too; account it.
                                stats.payload_bytes += 1
                    accounting = None
                    if step == plan.num_steps - 1:
                        # Piggyback the job accounting on the final
                        # level: saves a whole COLLECT round trip.
                        accounting = pickle.dumps(
                            (counters, stats),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        )
                    transport.send_frame(
                        conn,
                        transport.MSG_LEVEL_REPLY,
                        transport.encode_level_reply(
                            versioned, embeddings, accounting
                        ),
                    )
                elif kind == transport.MSG_JOB:
                    query, order = transport.decode_pickle_body(body)
                    plan = build_execution_plan(
                        query, order, index_backend=self.index_backend
                    )
                    counters = MatchCounters()
                    counters.note_work_model(
                        WORK_UNIT_MODELS.get(self.index_backend, "")
                    )
                    stats = WorkerStats(worker_id=self.shard.shard_id)
                    state = VertexStepState(self._graph)
                elif kind == transport.MSG_COLLECT:
                    transport.send_frame(
                        conn,
                        transport.MSG_ACCOUNTING,
                        pickle.dumps(
                            (counters, stats),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        ),
                    )
                elif kind == transport.MSG_REBALANCE:
                    label, ranges = transport.decode_pickle_body(body)
                    if ranges == self.shard.ranges():
                        # Boundaries didn't touch this shard: adopt the
                        # new placement label, keep the warm indices.
                        self.shard.sharding = label
                    else:
                        self.shard = StoreShard.from_ranges(
                            self._graph,
                            shard_grouping(self._graph),
                            self.shard.shard_id,
                            self.shard.num_shards,
                            self.index_backend,
                            ranges,
                            sharding=label,
                        )
                        # Cached anchor unions are masks over the old
                        # shard's rows; clearing is mandatory.
                        self._memo.clear()
                    # Answer with a fresh HELLO: the descriptor now
                    # echoes the coordinator-issued label, which is how
                    # the peer verifies the rebuild took effect.
                    transport.send_frame(
                        conn, transport.MSG_HELLO, self._hello_body()
                    )
                elif kind == transport.MSG_MUTATE:
                    batch = transport.decode_pickle_body(body)
                    graph = self._graph
                    if not isinstance(graph, DynamicHypergraph):
                        # First mutation promotes the worker's graph
                        # copy in place; edge ids and row layouts are
                        # preserved, so the shard needs no rebuild.
                        graph = DynamicHypergraph.from_hypergraph(graph)
                        self._graph = graph
                    result = graph.apply(batch)
                    self.shard.apply_mutation_result(graph, result)
                    # Cached anchor unions cover pre-mutation rows —
                    # clearing is mandatory — and every open query
                    # session is pre-mutation state: drop them all (the
                    # coordinator fences queries before mutating, so
                    # nothing live is stranded).
                    self._memo.clear()
                    plan = None
                    state = None
                    sessions.clear()
                    transport.send_pickle_frame(
                        conn,
                        transport.MSG_DELTA,
                        {
                            "graph_version": result.version,
                            "graph_edges": graph.num_edges,
                            "graph_vertices": graph.num_vertices,
                        },
                    )
                elif kind == transport.MSG_CATCHUP:
                    payload = transport.decode_pickle_body(body)
                    if "snapshot" in payload:
                        # The batch suffix aged out: adopt the shipped
                        # graph wholesale and re-cut this shard from it
                        # under the coordinator-named placement mode.
                        graph = payload["snapshot"]
                        self._graph = graph
                        self.shard = StoreShard.build(
                            graph,
                            self.shard.shard_id,
                            self.shard.num_shards,
                            self.index_backend,
                            resolve_sharding(payload["sharding"]),
                        )
                    else:
                        graph = self._graph
                        if not isinstance(graph, DynamicHypergraph):
                            graph = DynamicHypergraph.from_hypergraph(
                                graph
                            )
                            self._graph = graph
                        for version, batch in payload["batches"]:
                            if version != graph.version + 1:
                                raise SchedulerError(
                                    f"catch-up replay gap: batch for "
                                    f"version {version} but the shard "
                                    f"holds {graph.version}"
                                )
                            result = graph.apply(batch)
                            self.shard.apply_mutation_result(
                                graph, result
                            )
                    if (
                        getattr(self._graph, "version", 0)
                        != payload["to_version"]
                    ):
                        raise SchedulerError(
                            f"catch-up fell short: replayed to version "
                            f"{getattr(self._graph, 'version', 0)}, "
                            f"coordinator expects "
                            f"{payload['to_version']}"
                        )
                    # Same invalidation as MUTATE: memoised anchor
                    # unions and open sessions cover pre-catch-up rows.
                    self._memo.clear()
                    plan = None
                    state = None
                    sessions.clear()
                    # Answer with a fresh handshake body: the gate
                    # re-validates the post-replay descriptor in full.
                    transport.send_frame(
                        conn,
                        transport.MSG_CATCHUP_REPLY,
                        self._hello_body(),
                    )
                elif kind in transport.QUERY_KINDS:
                    self._serve_query_frame(conn, kind, body, sessions)
                elif kind == transport.MSG_STOP:
                    return True
                elif kind == transport.MSG_SHUTDOWN:
                    return False
                else:
                    raise TransportError(
                        f"unexpected frame kind {kind:#x} in session"
                    )
            except (TransportError, OSError):
                return True  # write failed (or chaos severed): peer gone
            except Exception:  # report, then end the session visibly
                import traceback

                context = (
                    f"shard {self.shard.shard_id} replica "
                    f"{self.replica_id} ({self.shard.sharding} placement)"
                )
                try:
                    transport.send_pickle_frame(
                        conn,
                        transport.MSG_ERROR,
                        f"[{context}] " + traceback.format_exc(),
                    )
                except (TransportError, OSError):  # pragma: no cover
                    pass
                return True

    def _serve_query_frame(
        self, conn, kind: int, body: bytes,
        sessions: "Dict[int, _QuerySession]",
    ) -> None:
        """Serve one multiplexed (§2.8) frame of a session.

        The isolation seam of the match service: a failure inside one
        query's work goes back as a QERROR tagged with that query id
        and drops only that query's session — the connection, and every
        other query multiplexed on it, keeps serving.  Only transport
        failures propagate (the peer is gone for everyone).
        """
        query_id, rest = transport.split_query_body(body)
        if kind == transport.MSG_CANCEL:
            # Fire-and-forget: drop the query's state, answer nothing —
            # the coordinator stopped listening for this id already, and
            # an unknown id (already completed, or never started here)
            # is exactly as cancelled as a live one.
            sessions.pop(query_id, None)
            return
        try:
            if kind == transport.MSG_QJOB:
                job = transport.decode_pickle_body(rest)
                if len(job) == 3:
                    # Versioned QJOB (§2.9): the coordinator stamps the
                    # graph version its candidate algebra assumes;
                    # composing rows across versions would silently
                    # mis-count, so a stale worker fails the query.
                    query, order, job_version = job
                    have = getattr(self._graph, "version", 0)
                    if job_version != have:
                        raise SchedulerError(
                            f"query assumes graph version {job_version}, "
                            f"worker holds {have} (missed MUTATE?)"
                        )
                else:  # legacy pre-mutation 2-tuple
                    query, order = job
                plan = build_execution_plan(
                    query, order, index_backend=self.index_backend
                )
                counters = MatchCounters()
                counters.note_work_model(
                    WORK_UNIT_MODELS.get(self.index_backend, "")
                )
                # A QJOB for an already-registered id is a coordinator
                # replay (reconnect after a failure): start the query
                # over, exactly like a legacy JOB replay.
                sessions[query_id] = _QuerySession(
                    plan,
                    VertexStepState(self._graph),
                    counters,
                    WorkerStats(worker_id=self.shard.shard_id),
                )
            elif kind == transport.MSG_QLEVEL:
                session = sessions.get(query_id)
                if session is None:
                    raise SchedulerError(
                        f"no open session for query {query_id}: QLEVEL "
                        f"before QJOB (or after cancel/completion)"
                    )
                step, frontier = transport.decode_pickle_body(rest)
                reply = expand_level(
                    self._graph, self.shard, session.plan, step, frontier,
                    session.state, session.counters, session.stats,
                    self._memo, self._mask_validation,
                )
                _, payloads, embeddings = reply
                versioned: "List[Optional[bytes]] | None" = None
                if payloads is not None:
                    versioned = []
                    for payload in payloads:
                        if payload is None:
                            versioned.append(None)
                        else:
                            versioned.append(encode_versioned(payload))
                            session.stats.payload_bytes += 1
                final = step == session.plan.num_steps - 1
                accounting = None
                if final:
                    accounting = pickle.dumps(
                        (session.counters, session.stats),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                transport.send_frame(
                    conn,
                    transport.MSG_QREPLY,
                    transport.encode_query_body(
                        query_id,
                        transport.encode_level_reply(
                            versioned, embeddings, accounting
                        ),
                    ),
                )
                if final:
                    # Answered in full; the state has no further reader.
                    sessions.pop(query_id, None)
            elif kind == transport.MSG_QCOLLECT:
                session = sessions.pop(query_id, None)
                if session is None:
                    raise SchedulerError(
                        f"no open session for query {query_id}: QCOLLECT "
                        f"before QJOB (or after cancel/completion)"
                    )
                # Early-drain termination: a payload-free QREPLY whose
                # accounting tail closes out the query.
                transport.send_frame(
                    conn,
                    transport.MSG_QREPLY,
                    transport.encode_query_body(
                        query_id,
                        transport.encode_level_reply(
                            None,
                            0,
                            pickle.dumps(
                                (session.counters, session.stats),
                                protocol=pickle.HIGHEST_PROTOCOL,
                            ),
                        ),
                    ),
                )
            else:  # QREPLY/QERROR are coordinator-bound, never served
                raise TransportError(
                    f"unexpected query frame kind {kind:#x} in session"
                )
        except (TransportError, OSError):
            raise
        except Exception:
            import traceback

            sessions.pop(query_id, None)
            context = (
                f"shard {self.shard.shard_id} replica "
                f"{self.replica_id} ({self.shard.sharding} placement)"
            )
            transport.send_frame(
                conn,
                transport.MSG_QERROR,
                transport.encode_query_body(
                    query_id,
                    pickle.dumps(
                        f"[{context}] " + traceback.format_exc(),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    ),
                ),
            )


# ----------------------------------------------------------------------
# Local clusters (subprocess workers on loopback ports)
# ----------------------------------------------------------------------


def _cluster_worker_main(
    conn,
    graph: Hypergraph,
    shard_id: int,
    num_shards: int,
    index_backend: str,
    seed: int,
    sharding: str = "uniform",
    replica_id: int = 0,
    num_replicas: int = 1,
    chaos=None,
    announce=None,
    heartbeat_interval=None,
) -> None:
    """Subprocess entry point: build the shard server, report its port
    through the pipe, then serve until SHUTDOWN."""
    try:
        worker = ShardWorker(
            graph, shard_id, num_shards, index_backend, seed=seed,
            sharding=sharding, replica_id=replica_id,
            num_replicas=num_replicas, chaos=chaos, announce=announce,
            heartbeat_interval=heartbeat_interval,
        )
        host, port = worker.bind()
        conn.send(("ready", host, port))
        conn.close()
        worker.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - parent interrupt
        pass


def shutdown_worker(
    address: Tuple[str, int], timeout: float = 5.0
) -> bool:
    """Ask the shard worker at ``address`` to shut its server down.

    Connects, consumes the worker's HELLO and sends the QUIT frame —
    the protocol's graceful stop (``docs/WIRE_FORMAT.md`` §2.1), also
    usable against a remote ``serve-shard`` process.  Returns True when
    the exchange completed, False when the worker was already gone or
    busy past ``timeout`` (callers fall back to killing the process).
    """
    try:
        with socket.create_connection(
            tuple(address), timeout=timeout
        ) as sock:
            sock.settimeout(timeout)
            transport.recv_frame(sock)  # the worker's HELLO
            transport.send_frame(sock, transport.MSG_SHUTDOWN)
        return True
    except (TransportError, OSError):
        return False


def _start_cluster_worker(
    context,
    graph: Hypergraph,
    shard_id: int,
    num_shards: int,
    index_backend: str,
    seed: int,
    sharding: str,
    replica_id: int = 0,
    num_replicas: int = 1,
    chaos=None,
    announce=None,
    heartbeat_interval=None,
):
    """Start one loopback shard-worker subprocess; returns
    ``(process, parent_conn)`` — await its port with
    :func:`_await_worker_ready`."""
    parent_conn, child_conn = context.Pipe()
    process = context.Process(
        target=_cluster_worker_main,
        args=(
            child_conn, graph, shard_id, num_shards, index_backend, seed,
            sharding, replica_id, num_replicas, chaos, announce,
            heartbeat_interval,
        ),
        daemon=True,
    )
    process.start()
    child_conn.close()
    return process, parent_conn


def _await_worker_ready(
    parent_conn,
    shard_id: int,
    ready_timeout: float,
    process=None,
    replica_id: int = 0,
    retry: "RetryPolicy | None" = None,
) -> Tuple[str, int]:
    """Read one worker's ``("ready", host, port)`` report.

    Polls the pipe under jittered exponential backoff (seeded per
    worker identity, so schedules are reproducible) instead of one
    blocking wait: between probes a worker that already *died* —
    import error, bad placement, OOM — is detected immediately via its
    ``process`` handle rather than after the full ``ready_timeout``.
    """
    retry = READY_POLL if retry is None else retry
    rng = random.Random((shard_id << 16) ^ replica_id)
    deadline = time.monotonic() + ready_timeout
    attempt = 0
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise SchedulerError(
                f"shard worker {shard_id} did not report ready within "
                f"{ready_timeout}s"
            )
        if parent_conn.poll(min(remaining, retry.delay(attempt, rng))):
            break
        if process is not None and not process.is_alive():
            raise SchedulerError(
                f"shard worker {shard_id} (replica {replica_id}) died "
                f"before reporting ready (exit code {process.exitcode})"
            )
        attempt += 1
    message = parent_conn.recv()
    if message[0] != "ready":  # pragma: no cover - protocol misuse
        raise SchedulerError(
            f"shard worker {shard_id} sent {message!r} instead of "
            f"its address"
        )
    return message[1], message[2]


class LocalCluster:
    """Handle on a set of locally spawned shard-worker processes.

    With ``num_replicas == K`` the cluster holds ``num_shards × K``
    workers; ``processes``/``addresses`` are flat lists indexed
    ``shard_id * K + replica_id`` (so K=1 keeps the historical
    one-entry-per-shard layout).
    """

    def __init__(
        self,
        processes,
        addresses,
        index_backend,
        seed,
        graph: "Hypergraph | None" = None,
        sharding: str = "uniform",
        start_method: "str | None" = None,
        ready_timeout: float = 30.0,
        num_replicas: int = 1,
        chaos=None,
        shutdown_timeout: float = 5.0,
        announce=None,
        heartbeat_interval=None,
    ) -> None:
        self.processes = processes
        self.addresses: "List[Tuple[str, int]]" = addresses
        self.index_backend = index_backend
        self.seed = seed
        self.sharding = sharding
        self.num_replicas = num_replicas
        self.chaos = chaos
        self.shutdown_timeout = shutdown_timeout
        self.announce = announce
        self.heartbeat_interval = heartbeat_interval
        self._graph = graph
        self._start_method = start_method
        self._ready_timeout = ready_timeout

    @property
    def num_shards(self) -> int:
        return len(self.addresses) // self.num_replicas

    def _index(self, shard_id: int, replica_id: int) -> int:
        index = shard_id * self.num_replicas + replica_id
        if (
            not 0 <= replica_id < self.num_replicas
            or not 0 <= shard_id
            or index >= len(self.processes)
        ):
            raise SchedulerError(f"no shard worker {shard_id} to respawn")
        return index

    def address_of(
        self, shard_id: int, replica_id: int = 0
    ) -> Tuple[str, int]:
        return self.addresses[shard_id * self.num_replicas + replica_id]

    def kill_member(self, shard_id: int, replica_id: int = 0) -> None:
        """Hard-kill one worker process (the chaos harness's armed
        killer; also useful in tests).  Blocks until it is gone."""
        process = self.processes[shard_id * self.num_replicas + replica_id]
        if process.is_alive():
            process.terminate()
        join_or_kill(
            process, timeout=self.shutdown_timeout,
            label=f"shard {shard_id} replica {replica_id} worker",
        )

    def respawn(
        self, shard_id: int, replica_id: int = 0
    ) -> Tuple[str, int]:
        """Replace a dead worker process with a fresh one for the same
        shard slot (built with the cluster's spawn-time placement mode)
        and return its new address — the restart-with-requeue hook the
        coordinator uses on mid-job worker loss."""
        if self._graph is None:
            raise SchedulerError(
                "cluster was not built by spawn_local_cluster; "
                "cannot respawn workers"
            )
        index = self._index(shard_id, replica_id)
        old = self.processes[index]
        if old.is_alive():  # pragma: no cover - caller races the reaper
            old.terminate()
        join_or_kill(
            old, timeout=self.shutdown_timeout,
            label=f"shard {shard_id} replica {replica_id} worker",
        )
        context = (
            get_context(self._start_method)
            if self._start_method is not None
            else get_context()
        )
        process, parent_conn = _start_cluster_worker(
            context, self._graph, shard_id, self.num_shards,
            self.index_backend, self.seed, self.sharding,
            replica_id, self.num_replicas, self.chaos,
            self.announce, self.heartbeat_interval,
        )
        try:
            address = _await_worker_ready(
                parent_conn, shard_id, self._ready_timeout,
                process=process, replica_id=replica_id,
            )
        except BaseException:
            if process.is_alive():
                process.terminate()
            raise
        finally:
            parent_conn.close()
        self.processes[index] = process
        self.addresses[index] = address
        return address

    def close(self) -> None:
        """Stop the worker processes (idempotent): ask each server to
        QUIT, then join with terminate→kill escalation so a stuck
        worker is never silently leaked."""
        for process, address in zip(self.processes, self.addresses):
            if process.is_alive():
                shutdown_worker(address, timeout=self.shutdown_timeout)
        for index, process in enumerate(self.processes):
            join_or_kill(
                process, timeout=self.shutdown_timeout,
                label=f"shard worker #{index}",
            )
        self.processes = []
        self.addresses = []

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def spawn_local_cluster(
    graph: Hypergraph,
    num_shards: int,
    index_backend: "str | None" = None,
    seed: "int | None" = None,
    start_method: "str | None" = None,
    ready_timeout: float = 30.0,
    sharding: "str | None" = None,
    num_replicas: int = 1,
    chaos=None,
    announce: "Tuple[str, int] | None" = None,
    heartbeat_interval: "float | None" = None,
) -> LocalCluster:
    """Boot ``num_shards × num_replicas`` shard workers on loopback.

    Each worker builds its own :class:`~repro.hypergraph.sharding.
    StoreShard` (under the requested placement mode), binds an
    ephemeral 127.0.0.1 port and serves the framed protocol; the
    returned :class:`LocalCluster` lists the addresses to hand a
    :class:`NetShardExecutor`.  Replicas of a shard build identical
    stores — the coordinator treats them as interchangeable failover
    targets.  This is the single-machine path through the *full*
    network stack — the tests' and benchmarks' way of proving the
    multi-host story without a second host.  A ``chaos``
    :class:`~repro.parallel.chaos.FaultPlan` is pickled into every
    worker so worker-role faults (slow/dropped replies) apply there.
    """
    if num_shards < 1:
        raise SchedulerError("num_shards must be >= 1")
    if num_replicas < 1:
        raise SchedulerError("num_replicas must be >= 1")
    index_backend = resolve_index_backend(index_backend)
    sharding = resolve_sharding(sharding)
    seed = default_seed() if seed is None else seed
    context = (
        get_context(start_method)
        if start_method is not None
        else get_context()
    )
    processes = []
    parent_conns = []
    identities = []
    for shard_id in range(num_shards):
        for replica_id in range(num_replicas):
            process, parent_conn = _start_cluster_worker(
                context, graph, shard_id, num_shards, index_backend, seed,
                sharding, replica_id, num_replicas, chaos, announce,
                heartbeat_interval,
            )
            processes.append(process)
            parent_conns.append(parent_conn)
            identities.append((shard_id, replica_id))
    addresses: "List[Tuple[str, int]]" = []
    try:
        for (shard_id, replica_id), process, parent_conn in zip(
            identities, processes, parent_conns
        ):
            addresses.append(
                _await_worker_ready(
                    parent_conn, shard_id, ready_timeout,
                    process=process, replica_id=replica_id,
                )
            )
    except BaseException:
        for process in processes:
            if process.is_alive():
                process.terminate()
        raise
    finally:
        for parent_conn in parent_conns:
            parent_conn.close()
    return LocalCluster(
        processes, addresses, index_backend, seed,
        graph=graph, sharding=sharding, start_method=start_method,
        ready_timeout=ready_timeout, num_replicas=num_replicas,
        chaos=chaos, announce=announce,
        heartbeat_interval=heartbeat_interval,
    )


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


def _catchup_body(graph, stale_version: int, sharding: "str | None"):
    """Build the CATCHUP payload for a worker stuck at ``stale_version``.

    Prefers the cheap path — the contiguous suffix of committed
    :class:`MutationBatch`es the :class:`DynamicHypergraph` retains in
    its in-memory history — and falls back to shipping a snapshot of the
    whole graph when the suffix has aged out.  The snapshot path needs a
    *resolvable* sharding mode label (the worker re-cuts its shard from
    the snapshot; a ``rebalanced-*`` label carries no recipe), so when
    ``sharding`` is ``None`` and no suffix exists the caller must fall
    back to refusal.  Returns the pickled payload bytes, or ``None``
    when no catch-up route exists.
    """
    to_version = getattr(graph, "version", 0)
    batches = None
    if isinstance(graph, DynamicHypergraph):
        batches = graph.batches_since(stale_version)
    if batches is not None:
        return pickle.dumps(
            {"batches": batches, "to_version": to_version},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    if sharding is None or not isinstance(graph, DynamicHypergraph):
        return None
    return pickle.dumps(
        {"snapshot": graph, "to_version": to_version, "sharding": sharding},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _resolvable_sharding(*labels) -> "str | None":
    """First label that names a plain sharding mode, or ``None``."""
    for label in labels:
        if label in SHARDING_MODES:
            return label
    return None


def validate_handshake(
    sock,
    graph,
    *,
    index_backend: str,
    num_shards: int,
    num_replicas: int,
    seed: int,
    sharding_label: str,
    expected_shard: "int | None" = None,
    expected_replica: "int | None" = None,
    expected_sharding: "str | None" = None,
    allow_replica_growth: bool = False,
    any_sharding: bool = False,
    allow_catchup: bool = True,
) -> ShardDescriptor:
    """Receive and validate one worker's HELLO against a pool's view.

    The single handshake gate shared by every coordinator-side pool —
    :class:`NetShardExecutor` and the match service's multiplexing pool
    both call it, so a worker that one would refuse the other refuses
    identically.  ``expected_shard``/``expected_replica`` (worker
    recovery and rebalance echoes) pin the announced identity.
    ``expected_sharding`` overrides the placement label to expect — a
    freshly respawned worker announces the spawn mode even while the
    pool runs a rebalanced layout.  The admission path relaxes two
    checks: ``allow_replica_growth`` accepts a *wider* replica
    arithmetic than the pool's (an elastic K-growth — never a narrower
    one), and ``any_sharding`` defers the placement-label check to the
    caller (which REBALANCE-upgrades label mismatches instead of
    refusing them).

    A worker announcing a *stale* ``graph_version`` (it was restarting
    while MUTATE broadcasts went out, or was spawned from the seed
    graph) is no longer refused outright: when ``allow_catchup`` is on
    the gate sends a CATCHUP frame carrying the missing mutation
    batches — or a graph snapshot when the retained suffix has aged
    out — waits for the worker's CATCHUP-REPLY (a fresh handshake body
    reflecting the post-replay state), and re-validates that in full.
    Only when no catch-up route exists, or the reply is still stale,
    does the version mismatch surface as a refusal.
    """

    def _decode(body) -> "tuple[ShardDescriptor, int]":
        descriptor_dict, worker_seed = transport.decode_handshake(body)
        try:
            descriptor = ShardDescriptor.from_dict(descriptor_dict)
        except (KeyError, TypeError, ValueError) as exc:
            raise SchedulerError(
                f"malformed handshake descriptor (missing/invalid field "
                f"{exc}): not a compatible shard server"
            ) from None
        return descriptor, worker_seed

    sharding = (
        sharding_label if expected_sharding is None else expected_sharding
    )

    def _check_contract(descriptor: ShardDescriptor, worker_seed: int):
        # Everything except graph identity: these mismatches are
        # configuration errors a catch-up replay cannot repair.
        if descriptor.index_backend != index_backend:
            raise SchedulerError(
                f"handshake backend mismatch: worker shard "
                f"{descriptor.shard_id} built {descriptor.index_backend!r}, "
                f"coordinator expects {index_backend!r}"
            )
        if descriptor.num_shards != num_shards:
            raise SchedulerError(
                f"shard arithmetic mismatch: worker believes in "
                f"{descriptor.num_shards} shards, coordinator in "
                f"{num_shards}"
            )
        if descriptor.num_replicas != num_replicas and not (
            allow_replica_growth
            and descriptor.num_replicas > num_replicas
        ):
            raise SchedulerError(
                f"replica arithmetic mismatch: worker shard "
                f"{descriptor.shard_id} believes in "
                f"{descriptor.num_replicas} replicas, coordinator in "
                f"{num_replicas}"
            )
        if not 0 <= descriptor.shard_id < num_shards:
            raise SchedulerError(
                f"worker announced shard id {descriptor.shard_id} outside "
                f"0..{num_shards - 1}"
            )
        if (
            expected_shard is not None
            and descriptor.shard_id != expected_shard
        ):
            raise SchedulerError(
                f"respawned worker announced shard id "
                f"{descriptor.shard_id}, expected {expected_shard}"
            )
        if (
            expected_replica is not None
            and descriptor.replica_id != expected_replica
        ):
            raise SchedulerError(
                f"respawned worker announced replica "
                f"{descriptor.replica_id}, expected {expected_replica}"
            )
        if not any_sharding and descriptor.sharding != sharding:
            raise SchedulerError(
                f"shard placement mismatch: worker shard "
                f"{descriptor.shard_id} was cut under "
                f"{descriptor.sharding!r}, coordinator expects "
                f"{sharding!r} — composing different placements would "
                f"double- or under-count rows"
            )
        if worker_seed != seed:
            raise SchedulerError(
                f"scheduler seed mismatch: worker shard "
                f"{descriptor.shard_id} runs REPRO_SEED={worker_seed}, "
                f"coordinator {seed} — parallel runs would not be "
                f"reproducible"
            )

    kind, body = transport.recv_frame(sock)
    if kind != transport.MSG_HELLO:
        raise SchedulerError(
            f"worker spoke {kind:#x} before HELLO; not a shard server?"
        )
    descriptor, worker_seed = _decode(body)
    _check_contract(descriptor, worker_seed)
    graph_version = getattr(graph, "version", 0)
    if allow_catchup and descriptor.graph_version < graph_version:
        payload = _catchup_body(
            graph,
            descriptor.graph_version,
            _resolvable_sharding(descriptor.sharding, sharding),
        )
        if payload is not None:
            transport.send_frame(sock, transport.MSG_CATCHUP, payload)
            kind, body = transport.recv_frame(sock)
            if kind == transport.MSG_ERROR:
                raise SchedulerError(
                    f"worker shard {descriptor.shard_id} failed "
                    f"catch-up from version {descriptor.graph_version} "
                    f"to {graph_version}:\n"
                    f"{transport.decode_pickle_body(body)}"
                )
            if kind != transport.MSG_CATCHUP_REPLY:
                raise SchedulerError(
                    f"worker shard {descriptor.shard_id} answered "
                    f"CATCHUP with frame kind {kind:#x}, expected "
                    f"CATCHUP-REPLY"
                )
            descriptor, worker_seed = _decode(body)
            _check_contract(descriptor, worker_seed)
    if descriptor.graph_version != graph_version:
        raise SchedulerError(
            f"graph version mismatch: worker shard "
            f"{descriptor.shard_id} reflects mutation version "
            f"{descriptor.graph_version}, the engine holds "
            f"{graph_version} — the worker missed a MUTATE broadcast "
            f"and no catch-up route exists (the retained batch suffix "
            f"aged out and the placement label carries no rebuild "
            f"recipe)"
        )
    if (
        descriptor.graph_edges != graph.num_edges
        or descriptor.graph_vertices != graph.num_vertices
    ):
        raise SchedulerError(
            f"data graph mismatch: worker shard {descriptor.shard_id} "
            f"was built from a graph with {descriptor.graph_edges} "
            f"edges / {descriptor.graph_vertices} vertices, the engine "
            f"holds {graph.num_edges} / "
            f"{graph.num_vertices}"
        )
    return descriptor


class _Member:
    """One live replica connection in the coordinator's pool."""

    __slots__ = (
        "shard_id", "replica_id", "address", "sock",
        "inflight", "dispatched_at", "deadline",
    )

    def __init__(self, shard_id, replica_id, address, sock) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.address = address
        self.sock = sock
        #: Request tokens awaiting replies on this connection, FIFO.
        #: The worker answers strictly in request order, so the token
        #: at the head is the one the next inbound frame answers —
        #: which is how stale (previous-level) and lost-race
        #: (speculation) replies are told apart from the live one.
        self.inflight: "deque[int]" = deque()
        self.dispatched_at: "float | None" = None
        self.deadline: "float | None" = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"_Member(shard={self.shard_id}, replica={self.replica_id}, "
            f"address={self.address!r}, inflight={list(self.inflight)})"
        )


class NetShardExecutor:
    """Run matching jobs over TCP-connected shard workers.

    Two construction modes:

    ``NetShardExecutor(addresses=[("host", port), ...])``
        Connect to externally managed workers (the multi-host mode; the
        CLI's ``--hosts``).  With ``num_replicas == K`` the address
        count must be ``N × K`` and the handshakes must cover every
        shard id ``0..N-1`` — replies are gathered in *shard* order
        regardless of the order the addresses were listed in.  With
        ``K > 1`` a dead address merely loses one replica; the
        coordinator refuses to compose only when some shard has *zero*
        live replicas.

    ``NetShardExecutor(num_shards=N, num_replicas=K)``
        Spawn (and own) a local cluster for the engine's data graph on
        first use — the single-machine ``--executor sockets`` path.

    The handshake is validated against the executor's expectations
    before any job runs: index backend (payloads would mis-decode),
    shard and replica arithmetic (rows would be double- or
    under-counted), the data graph fingerprint (counts would be
    silently wrong) and the scheduler seed (reproducibility).  A
    *contract* mismatch always tears the connections down and raises
    :class:`~repro.errors.SchedulerError`; a *liveness* failure
    (connect refused, peer vanished) is tolerated per-replica when
    ``K > 1``.

    Mid-job, each LEVEL is dispatched to one live replica per shard
    under a per-frame deadline (``io_timeout``; default from
    ``REPRO_NET_TIMEOUT``).  A replica that disconnects or blows the
    deadline is dropped and the level re-dispatched to another replica
    (local clusters can also respawn the lost process, budgeted).  With
    ``speculate_after=S`` seconds, a level still unanswered after ``S``
    is additionally sent to an idle replica and the first reply wins —
    per-member FIFO request tokens make the duplicate provably
    harmless.  Speculation and failover may split a job's per-worker
    counter accounting across replicas (each replica only counts the
    levels it expanded); embedding counts are always exact because the
    coordinator composes exactly one reply per (level, shard).
    """

    def __init__(
        self,
        addresses: "Sequence[Tuple[str, int]] | None" = None,
        num_shards: "int | None" = None,
        index_backend: "str | None" = None,
        sharding: "str | None" = None,
        seed: "int | None" = None,
        start_method: "str | None" = None,
        connect_timeout: float = CONNECT_TIMEOUT,
        io_timeout: "float | None" = None,
        num_replicas: int = 1,
        retry: "RetryPolicy | None" = None,
        speculate_after: "float | None" = None,
        chaos=None,
        registry=None,
    ) -> None:
        if num_replicas < 1:
            raise SchedulerError("num_replicas must be >= 1")
        if addresses is not None:
            addresses = [tuple(address) for address in addresses]
            if len(addresses) % num_replicas != 0:
                raise SchedulerError(
                    f"{len(addresses)} worker addresses do not divide "
                    f"into {num_replicas} replicas per shard"
                )
            implied = len(addresses) // num_replicas
            if num_shards is not None and num_shards != implied:
                raise SchedulerError(
                    f"num_shards={num_shards} contradicts "
                    f"{len(addresses)} worker addresses"
                )
            num_shards = implied
        if num_shards is None:
            raise SchedulerError(
                "NetShardExecutor needs worker addresses or num_shards"
            )
        if num_shards < 1:
            raise SchedulerError("num_shards must be >= 1")
        self.addresses = addresses
        self.num_shards = num_shards
        self.num_replicas = num_replicas
        self.index_backend = resolve_index_backend(index_backend)
        self.sharding = resolve_sharding(sharding)
        self.seed = default_seed() if seed is None else seed
        self.start_method = start_method
        self.connect_timeout = connect_timeout
        self.io_timeout = (
            default_io_timeout() if io_timeout is None else io_timeout
        )
        self.retry = default_retry_policy() if retry is None else retry
        self.speculate_after = speculate_after
        self.chaos = chaos
        self._retry_rng = random.Random(self.seed ^ 0x5EED)
        self._cluster: "LocalCluster | None" = None
        #: The live pool: one ReplicaSet of connected :class:`_Member`
        #: per shard (empty list when no pool is up).
        self._members: "List[ReplicaSet]" = []
        #: shard id → members currently working the in-flight request.
        self._watchers: "Dict[int, List[_Member]]" = {}
        #: Monotonic request token; bumped per LEVEL/COLLECT broadcast.
        self._token = 0
        #: The encoded frame of the in-flight LEVEL/COLLECT — what
        #: failover and speculation re-send.
        self._inflight_frame: "bytes | None" = None
        self._graph: "Hypergraph | None" = None
        #: Placement of the live pool: build-mode label until a
        #: rebalance issues a ``rebalanced-<fp>`` table.
        self._sharding_label = self.sharding
        self._range_table = None
        #: The current JOB message — replayed to restored members so a
        #: spare joining mid-job can answer the in-flight level.
        self._job_message = None
        self._level_message = None
        self._respawn_budget = 0
        #: Optional :class:`~repro.parallel.registry.WorkerRegistry`
        #: whose heartbeat evictions proactively fail over members —
        #: a wedged worker is dropped at the registry's (short)
        #: eviction deadline instead of this executor's (long) per-frame
        #: I/O deadline.
        self.registry = registry
        self._evict_cursor = 0
        #: Shard ids retired by :meth:`drain` — their rows were recut
        #: onto the surviving shards; broadcasts and gathers skip them.
        self._retired: set = set()

    @classmethod
    def from_registry(
        cls,
        registry,
        num_shards: int,
        num_replicas: int = 1,
        wait_timeout: float = 30.0,
        **kwargs,
    ) -> "NetShardExecutor":
        """Build an executor from discovered workers.

        Blocks until the registry has a live worker for every
        ``(shard, replica)`` slot (or ``wait_timeout`` elapses), then
        connects to the announced addresses; the registry stays
        attached, so its missed-heartbeat evictions keep feeding the
        pool's liveness mid-job.
        """
        addresses = registry.wait_for(
            num_shards, num_replicas, timeout=wait_timeout
        )
        return cls(
            addresses=addresses,
            num_replicas=num_replicas,
            registry=registry,
            **kwargs,
        )

    # -- connection lifecycle -------------------------------------------

    def _connect(self, address):
        """TCP connect + chaos wrap under the executor's retry policy.
        Returns a socket with the (short) connect timeout set; raises
        the last ``OSError`` when every attempt failed."""
        host, port = address
        last_exc: "OSError | None" = None
        for attempt in range(max(1, self.retry.attempts)):
            if attempt:
                time.sleep(self.retry.delay(attempt - 1, self._retry_rng))
            try:
                sock = socket.create_connection(
                    (host, port), timeout=self.connect_timeout
                )
            except OSError as exc:
                last_exc = exc
                continue
            _disable_nagle(sock)
            if self.chaos is not None:
                sock = self.chaos.wrap(sock, "coordinator")
            # The handshake runs under the (short) connect timeout: a
            # peer that accepts but never says HELLO — e.g. a busy
            # single-session server — should fail fast, not tie the
            # coordinator up for a whole job timeout.
            sock.settimeout(self.connect_timeout)
            return sock
        raise last_exc  # type: ignore[misc]

    def _close_member_grid(self, grid) -> None:
        for replica_set in grid:
            for _replica_id, member in replica_set.members():
                try:
                    member.sock.close()
                except OSError:  # pragma: no cover - best effort
                    pass

    def _ensure_pool(self, engine) -> None:
        if engine.index_backend != self.index_backend:
            raise SchedulerError(
                f"engine backend {engine.index_backend!r} does not match "
                f"executor backend {self.index_backend!r}"
            )
        self._respawn_budget = self.num_shards * self.num_replicas
        if self._graph is engine.data and self._members:
            # Reused sessions can have gone stale between jobs (the
            # worker ends sessions idle past its I/O timeout; a worker
            # can die).  A COLLECT round trip is a legitimate protocol
            # exchange, so use it as a liveness probe and fall through
            # to a clean rebuild instead of failing the job; a genuine
            # *mid-job* failure still raises (nothing half-composed).
            try:
                self._broadcast(("collect",))
                self._gather()
                return
            except SchedulerError:
                pass  # _broadcast/_gather already tore everything down
        self._close_connections()
        if self.addresses is None:
            # Local mode: own a cluster for this engine's data graph.
            # A fresh cluster builds spawn-mode shards, so any
            # rebalanced layout of the previous pool is gone with it.
            if self._cluster is not None:
                self._cluster.close()
                self._cluster = None
            self._sharding_label = self.sharding
            self._range_table = None
            self._cluster = spawn_local_cluster(
                engine.data,
                self.num_shards,
                self.index_backend,
                seed=self.seed,
                start_method=self.start_method,
                sharding=self.sharding,
                num_replicas=self.num_replicas,
                chaos=self.chaos,
            )
            addresses = self._cluster.addresses
        else:
            addresses = self.addresses
        grid = [
            ReplicaSet(shard_id, self.num_replicas)
            for shard_id in range(self.num_shards)
        ]
        failures: "List[str]" = []
        try:
            for host, port in addresses:
                try:
                    sock = self._connect((host, port))
                except OSError as exc:
                    if self.num_replicas == 1:
                        raise SchedulerError(
                            f"could not connect to shard worker at "
                            f"{host}:{port}: {exc}"
                        ) from exc
                    # K > 1: losing one replica is survivable — note it
                    # and let the zero-replica check decide at the end.
                    failures.append(f"{host}:{port}: {exc}")
                    logger.warning(
                        "could not connect to shard worker at %s:%s: %s",
                        host, port, exc,
                    )
                    continue
                try:
                    descriptor = self._handshake(sock, engine.data)
                except (TransportError, OSError) as exc:
                    try:
                        sock.close()
                    except OSError:
                        pass
                    if self.num_replicas == 1:
                        raise SchedulerError(
                            f"shard worker at {host}:{port} failed the "
                            f"handshake: {exc}"
                        ) from None
                    failures.append(f"{host}:{port}: {exc}")
                    logger.warning(
                        "shard worker at %s:%s failed the handshake: %s",
                        host, port, exc,
                    )
                    continue
                sock.settimeout(self.io_timeout)
                if self.chaos is not None:
                    sock.bind_endpoint(
                        descriptor.shard_id, descriptor.replica_id
                    )
                member = _Member(
                    descriptor.shard_id, descriptor.replica_id,
                    (host, port), sock,
                )
                try:
                    grid[descriptor.shard_id].place(
                        descriptor.replica_id, member
                    )
                except ValueError:
                    try:
                        sock.close()
                    except OSError:
                        pass
                    detail = (
                        f" (replica {descriptor.replica_id})"
                        if self.num_replicas > 1
                        else ""
                    )
                    raise SchedulerError(
                        f"two workers both announced shard id "
                        f"{descriptor.shard_id}{detail}"
                    ) from None
        except BaseException:
            self._close_member_grid(grid)
            raise
        missing = [
            shard_id for shard_id in range(self.num_shards)
            if not grid[shard_id]
        ]
        if missing:
            self._close_member_grid(grid)
            detail = "; ".join(failures) if failures else (
                "no worker announced them"
            )
            raise SchedulerError(
                f"no live replica for shard(s) {missing}: {detail}"
            )
        self._members = grid
        self._graph = engine.data
        # A rebuilt pool covers every shard again; forget retirements
        # and skip registry evictions that predate this membership.
        self._retired = set()
        if self.registry is not None:
            self._evict_cursor = len(self.registry.evictions)

    def _handshake(
        self,
        sock,
        graph,
        expected_shard: "int | None" = None,
        expected_replica: "int | None" = None,
        expected_sharding: "str | None" = None,
        allow_replica_growth: bool = False,
        any_sharding: bool = False,
    ) -> ShardDescriptor:
        """Validate one worker's HELLO; returns its shard descriptor.

        A thin binding of the shared :func:`validate_handshake` gate to
        this executor's view (backend, arithmetic, seed, placement
        label) — see that function for the check-by-check contract.
        """
        return validate_handshake(
            sock,
            graph,
            index_backend=self.index_backend,
            num_shards=self.num_shards,
            num_replicas=self.num_replicas,
            seed=self.seed,
            sharding_label=self._sharding_label,
            expected_shard=expected_shard,
            expected_replica=expected_replica,
            expected_sharding=expected_sharding,
            allow_replica_growth=allow_replica_growth,
            any_sharding=any_sharding,
        )

    def _close_connections(self) -> None:
        for replica_set in self._members:
            for _replica_id, member in replica_set.members():
                try:
                    transport.send_frame(member.sock, transport.MSG_STOP)
                except (TransportError, OSError):
                    pass
                try:
                    member.sock.close()
                except OSError:
                    pass
        self._members = []
        self._watchers = {}
        self._inflight_frame = None
        self._graph = None

    def close(self) -> None:
        """End the sessions; stop the owned local cluster, if any.

        Idempotent and safe at any lifecycle point: after a refused or
        partial handshake, after a previous close, or on an executor
        that never opened a pool.  The owned cluster is released before
        it is stopped, so even an exception out of the session teardown
        can neither leak worker processes nor make a second close
        re-stop them.
        """
        try:
            self._close_connections()
        finally:
            cluster, self._cluster = self._cluster, None
            if cluster is not None:
                cluster.close()

    def __enter__(self) -> "NetShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- pool bookkeeping ------------------------------------------------

    def _active_shards(self) -> "List[int]":
        """Shard ids still carrying rows (everything not retired by
        :meth:`drain`); broadcasts, gathers and failover run over
        exactly this set."""
        return [
            shard_id for shard_id in range(self.num_shards)
            if shard_id not in self._retired
        ]

    def _sync_registry(self, pending=None) -> None:
        """Fold fresh registry evictions into pool liveness.

        A member whose ``(shard, replica)`` identity was evicted for
        missed heartbeats (or a lost registry link) is failed over
        immediately — the whole point of heartbeating is to beat the
        per-frame I/O deadline to the diagnosis.  A member whose
        identity has *re-announced at the member's own address* since
        the eviction is left alone (the eviction described a previous
        incarnation, e.g. an already-readmitted worker).
        """
        if self.registry is None or not self._members:
            return
        self._evict_cursor, evicted = self.registry.evictions_since(
            self._evict_cursor
        )
        for record in evicted:
            if not 0 <= record.shard_id < len(self._members):
                continue
            member = self._members[record.shard_id].get(record.replica_id)
            if member is None:
                continue
            live = self.registry.record(record.shard_id, record.replica_id)
            if live is not None and tuple(live.address) == tuple(
                member.address
            ):
                continue
            self._handle_member_failure(
                member,
                f"registry evicted it ({record.reason})",
                redispatch=(
                    pending is not None and record.shard_id in pending
                ),
            )

    def _drop_member(self, member: _Member, cause: str) -> None:
        """Remove one replica connection from the pool (idempotent)."""
        if self._members:
            replica_set = self._members[member.shard_id]
            if replica_set.get(member.replica_id) is member:
                replica_set.remove(member.replica_id)
        watchers = self._watchers.get(member.shard_id)
        if watchers is not None and member in watchers:
            watchers.remove(member)
        try:
            member.sock.close()
        except OSError:  # pragma: no cover - best effort
            pass
        logger.warning(
            "shard %d replica %d at %s dropped: %s",
            member.shard_id, member.replica_id, member.address, cause,
        )

    def _fail_shard(self, shard_id: int, cause: str) -> None:
        """Out of replicas for ``shard_id``: tear down and raise."""
        label = self._sharding_label
        self.close()
        raise SchedulerError(
            f"shard worker {shard_id} disconnected mid-job: {cause}; "
            f"no live replica remains for shard {shard_id} "
            f"({label} placement)"
        )

    def _handle_member_failure(
        self, member: _Member, cause: str, redispatch: bool = True
    ) -> None:
        """Drop a failed replica; re-dispatch its in-flight request to
        another replica of the range unless one is already working it
        (a speculative duplicate) or the range already answered."""
        shard_id = member.shard_id
        self._drop_member(member, cause)
        if redispatch and not self._watchers.get(shard_id):
            self._dispatch(shard_id, cause=cause)

    def _pick_member(self, shard_id: int) -> "_Member | None":
        """The replica to dispatch to: lowest idle replica id, falling
        back to the lowest busy one (its queue preserves order) —
        never one already watching this request."""
        watching = self._watchers.get(shard_id, ())
        fallback = None
        for _replica_id, member in self._members[shard_id].members():
            if member in watching:
                continue
            if not member.inflight:
                return member
            if fallback is None:
                fallback = member
        return fallback

    def _pick_spare(self, shard_id: int) -> "_Member | None":
        """A strictly idle replica for speculation (never steals one
        that still owes replies)."""
        watching = self._watchers.get(shard_id, ())
        for _replica_id, member in self._members[shard_id].members():
            if member not in watching and not member.inflight:
                return member
        return None

    def _restore_member(self, shard_id: int) -> "_Member | None":
        """Restart-with-requeue for a range that lost a replica mid-job.

        Only executors that *own* their workers can restart them, so
        this applies to local clusters exclusively — with externally
        managed ``addresses`` the coordinator cannot know how to revive
        a remote host and relies on the remaining replicas (K=1 keeps
        the documented clean :class:`SchedulerError`).  The respawned
        worker rebuilds its shard from the spawn-time placement, is
        upgraded to the pool's rebalanced layout if one is live, and is
        then replayed the current JOB — the in-flight LEVEL itself is
        re-sent by :meth:`_dispatch`, exactly like any other failover
        target.  The lost process's earlier per-level counter
        accounting is gone with it (the embedding count is not:
        embeddings are counted from the coordinator's deduplicated
        replies).  Returns the fresh member, or None when recovery is
        impossible (no cluster, budget exhausted, no job in flight,
        respawn failed).
        """
        if self._cluster is None or self._respawn_budget <= 0:
            return None
        if self._job_message is None:
            return None
        replica_set = self._members[shard_id]
        replica_id = next(
            (
                slot for slot in range(self.num_replicas)
                if replica_set.get(slot) is None
            ),
            None,
        )
        if replica_id is None:  # pragma: no cover - full set, nothing lost
            return None
        self._respawn_budget -= 1
        sock = None
        try:
            address = self._cluster.respawn(shard_id, replica_id)
            sock = self._connect(address)
            self._handshake(
                sock,
                self._graph,
                expected_shard=shard_id,
                expected_replica=replica_id,
                expected_sharding=self._cluster.sharding,
            )
            if self._sharding_label != self._cluster.sharding:
                # The pool runs a rebalanced layout; bring the fresh
                # worker onto it before replaying any work.
                transport.send_pickle_frame(
                    sock,
                    transport.MSG_REBALANCE,
                    (
                        self._sharding_label,
                        range_table_slices(
                            self._range_table, self.num_shards
                        )[shard_id],
                    ),
                )
                self._handshake(
                    sock, self._graph,
                    expected_shard=shard_id, expected_replica=replica_id,
                )
            sock.settimeout(self.io_timeout)
            if self.chaos is not None:
                sock.bind_endpoint(shard_id, replica_id)
            transport.send_frame(
                sock,
                transport.MSG_JOB,
                pickle.dumps(
                    self._job_message[1:], protocol=pickle.HIGHEST_PROTOCOL
                ),
            )
        except (SchedulerError, TransportError, OSError):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - best effort
                    pass
            return None
        member = _Member(shard_id, replica_id, address, sock)
        replica_set.place(replica_id, member)
        logger.warning(
            "shard %d replica %d respawned at %s and replayed the job",
            shard_id, replica_id, address,
        )
        return member

    # -- messaging (the level_sync plug-in surface) ---------------------

    def _broadcast(self, message) -> None:
        kind_map = {
            "job": transport.MSG_JOB,
            "level": transport.MSG_LEVEL,
            "collect": transport.MSG_COLLECT,
        }
        kind = kind_map[message[0]]
        # Remember the protocol position *before* any byte moves: a
        # worker recovered mid-gather is replayed the current job (and
        # re-dispatched the in-flight request), so the caches must
        # already reflect this broadcast.
        if kind == transport.MSG_JOB:
            self._job_message = message
            self._level_message = None
        elif kind == transport.MSG_LEVEL:
            self._level_message = message
        body = (
            b""
            if kind == transport.MSG_COLLECT
            else pickle.dumps(
                message[1:], protocol=pickle.HIGHEST_PROTOCOL
            )
        )
        frame = transport.encode_frame(kind, body)
        if kind == transport.MSG_JOB:
            # The JOB goes to *every* live replica — spares must hold
            # the plan to be able to answer a re-dispatched LEVEL.
            for shard_id in self._active_shards():
                replica_set = self._members[shard_id]
                for _replica_id, member in list(replica_set.members()):
                    try:
                        member.sock.sendall(frame)
                    except OSError as exc:
                        self._drop_member(member, f"send failed: {exc}")
                if not replica_set and self._restore_member(shard_id) is None:
                    self._fail_shard(
                        shard_id,
                        "lost every replica while broadcasting the job",
                    )
            return
        # LEVEL / COLLECT: one live replica per shard answers; failover
        # and speculation may re-send the same frame to others.
        self._token += 1
        self._inflight_frame = frame
        self._watchers = {}
        for shard_id in self._active_shards():
            self._dispatch(shard_id)

    def _dispatch(
        self,
        shard_id: int,
        member: "_Member | None" = None,
        cause: "str | None" = None,
    ) -> None:
        """Send the in-flight frame to one replica of ``shard_id``
        (``member`` pins the target — the speculation path), restoring
        or failing the shard when no live replica can take it."""
        if self._inflight_frame is None:  # pragma: no cover - misuse
            self._fail_shard(
                shard_id, cause or "no request in flight to dispatch"
            )
        while True:
            target = member or self._pick_member(shard_id)
            member = None
            if target is None:
                target = self._restore_member(shard_id)
            if target is None:
                self._fail_shard(
                    shard_id, cause or "no live replica left to dispatch to"
                )
            try:
                target.sock.sendall(self._inflight_frame)
            except OSError as exc:
                self._drop_member(target, f"send failed: {exc}")
                continue
            now = time.monotonic()
            target.inflight.append(self._token)
            target.dispatched_at = now
            target.deadline = now + self.io_timeout
            self._watchers.setdefault(shard_id, []).append(target)
            return

    def _decode_reply(self, member: _Member, kind: int, body: bytes):
        """Decode one worker reply frame (level reply or accounting)."""
        shard_id = member.shard_id
        if kind == transport.MSG_ERROR:
            # Enumeration errors are deterministic in (plan, frontier,
            # shard) — every replica would fail identically, so this is
            # not a failover case.
            message = transport.decode_pickle_body(body)
            self.close()
            raise SchedulerError(
                f"shard worker {shard_id} failed (replica "
                f"{member.replica_id}, {self._sharding_label} placement):"
                f"\n{message}"
            )
        try:
            if kind == transport.MSG_LEVEL_REPLY:
                payloads, embeddings, accounting = (
                    transport.decode_level_reply(body)
                )
                if payloads is not None:
                    payloads = [
                        None if payload is None
                        else decode_versioned(payload)
                        for payload in payloads
                    ]
                reply = ("level", payloads, embeddings)
                if accounting is not None:
                    reply = reply + pickle.loads(accounting)
            elif kind == transport.MSG_ACCOUNTING:
                reply = transport.decode_pickle_body(body)
            else:
                raise TransportError(
                    f"unexpected reply kind {kind:#x}"
                )
        except (TransportError, ValueError, pickle.PickleError) as exc:
            self.close()
            raise SchedulerError(
                f"shard worker {shard_id} (replica {member.replica_id}) "
                f"sent an undecodable reply: {exc}"
            ) from None
        return reply

    def _select_timeout(self, pending, now: float) -> float:
        """How long the next ``select`` may sleep: until the earliest
        member deadline or speculation trigger, capped by the I/O
        timeout (already-due triggers with no spare to fire at are
        excluded — they must not busy-spin the loop)."""
        timeout = self.io_timeout
        for shard_id in pending:
            watchers = self._watchers.get(shard_id, ())
            for watcher in watchers:
                if watcher.deadline is not None:
                    timeout = min(timeout, watcher.deadline - now)
            if (
                self.speculate_after is not None
                and len(watchers) == 1
                and watchers[0].dispatched_at is not None
            ):
                trigger = (
                    watchers[0].dispatched_at + self.speculate_after - now
                )
                if trigger > 0:
                    timeout = min(timeout, trigger)
        if self.registry is not None:
            # Wake at heartbeat granularity so registry evictions fail
            # members over long before the per-frame deadline.
            timeout = min(
                timeout, max(self.registry.heartbeat_interval, 0.05)
            )
        return max(0.0, min(timeout, self.io_timeout))

    def _gather_iter(self):
        """As-completed level replies: ``(shard_id, reply)`` pairs in
        arrival order (the streaming-compose hook of
        :func:`repro.parallel.level_sync.run_level_synchronous`).

        This loop *is* the failover/speculation engine: it enforces the
        per-member reply deadline (a wedged replica is dropped and its
        request re-dispatched), fires speculation for straggling
        shards, and guarantees **at most one reply per shard per
        request token** reaches the caller — stale replies (a previous
        level's late answer) and lost speculation races are drained
        and discarded here, which is what makes duplicate REPLYs
        provably harmless to the composition fold above.
        """
        pending = set(self._active_shards())
        while pending:
            self._sync_registry(pending)
            pending &= set(self._active_shards())
            if not pending:
                return
            now = time.monotonic()
            # Deadline enforcement: a watcher past its per-frame
            # deadline is dropped; failover picks a replacement.
            for shard_id in sorted(pending):
                for watcher in list(self._watchers.get(shard_id, ())):
                    if watcher.deadline is not None and (
                        watcher.deadline <= now
                    ):
                        self._handle_member_failure(
                            watcher,
                            f"no reply within {self.io_timeout}s "
                            f"(worker wedged)",
                        )
            # Speculation: a shard still waiting on its only watcher
            # past the trigger gets a duplicate dispatch to an idle
            # spare; first reply wins, the loser is discarded below.
            if self.speculate_after is not None:
                for shard_id in sorted(pending):
                    watchers = self._watchers.get(shard_id, ())
                    if len(watchers) != 1:
                        continue
                    started = watchers[0].dispatched_at
                    if started is None or (
                        started + self.speculate_after > now
                    ):
                        continue
                    spare = self._pick_spare(shard_id)
                    if spare is not None:
                        logger.warning(
                            "shard %d straggling (> %.3fs); speculating "
                            "on replica %d",
                            shard_id, self.speculate_after,
                            spare.replica_id,
                        )
                        self._dispatch(shard_id, member=spare)
            # Wait on every connection that owes a reply — including
            # stale/speculative ones, which must be drained.
            readable: "List[_Member]" = []
            seen = set()
            for replica_set in self._members:
                for _replica_id, candidate in replica_set.members():
                    if candidate.inflight and id(candidate) not in seen:
                        seen.add(id(candidate))
                        readable.append(candidate)
            if not readable:
                self._fail_shard(
                    sorted(pending)[0], "no live replica left to wait on"
                )
            timeout = self._select_timeout(pending, now)
            selector = selectors.DefaultSelector()
            try:
                for candidate in readable:
                    selector.register(
                        candidate.sock, selectors.EVENT_READ, candidate
                    )
                events = selector.select(timeout=timeout)
            finally:
                selector.close()
            for key, _mask in events:
                member: _Member = key.data
                if (
                    self._members[member.shard_id].get(member.replica_id)
                    is not member
                ):
                    continue  # dropped earlier in this event batch
                try:
                    kind, body = transport.recv_frame(member.sock)
                except TransportError as exc:
                    self._handle_member_failure(
                        member, str(exc),
                        redispatch=member.shard_id in pending,
                    )
                    continue
                token = (
                    member.inflight.popleft() if member.inflight else -1
                )
                if not member.inflight:
                    member.dispatched_at = None
                    member.deadline = None
                if token != self._token:
                    continue  # a previous request's late reply; drained
                shard_id = member.shard_id
                if shard_id not in pending:
                    continue  # lost the speculation race; duplicate
                reply = self._decode_reply(member, kind, body)
                pending.discard(shard_id)
                self._watchers[shard_id] = []
                yield shard_id, reply

    def _gather(self) -> list:
        replies = [None] * self.num_shards
        for shard_id, reply in self._gather_iter():
            replies[shard_id] = reply
        return replies

    # -- adaptive placement ----------------------------------------------

    def rebalance(self, worker_stats) -> int:
        """Recut the live pool's ranges from observed per-shard load.

        The socket twin of :meth:`repro.parallel.shard_executor.
        ProcessShardExecutor.rebalance` — one shared planner
        (:func:`repro.parallel.level_sync.plan_pool_rebalance`), two
        transports.  *Every* live replica of every shard receives its
        range's slice of the recut table in a REBALANCE frame (a worker
        whose ranges didn't move merely adopts the new placement label
        and keeps its warm indices — the whole pool must agree on one
        label or the next session handshake would refuse the laggards),
        and each answers with a fresh HELLO that must echo the new
        label.  Works against local clusters and remote ``serve-shard``
        workers alike (the frame is part of the wire protocol); runs
        strictly between jobs.  Returns the number of shards whose
        ranges moved.
        """
        if not self._members or self._graph is None:
            raise SchedulerError(
                "no live pool to rebalance; run a job first"
            )
        plan = plan_pool_rebalance(self, worker_stats)
        if plan is None:
            return 0
        table, label, slices, moved = plan
        self._apply_rebalance(table, label, slices)
        return len(moved)

    # -- mutation --------------------------------------------------------

    def mutate(self, engine, batch, result) -> int:
        """Propagate one committed mutation batch to the live pool.

        The socket twin of :meth:`repro.parallel.shard_executor.
        ProcessShardExecutor.mutate`: *every* live replica of every
        active shard receives the batch in a MUTATE frame (§2.9),
        applies it to its own graph copy and shard, and acks with a
        DELTA frame carrying its post-mutation graph state.
        Determinism of :meth:`~repro.hypergraph.dynamic.
        DynamicHypergraph.apply` makes each worker's state identical to
        the engine's (``result``), which the ack check enforces: a
        diverging or garbled ack is a *contract* failure and tears the
        pool down, while a liveness failure degrades that replica —
        like mid-job failover — as long as its range keeps another
        live member (the degraded worker's next handshake announces a
        stale graph version, which the gate repairs by streaming the
        missed batches in a CATCHUP frame — §2.10 — and re-validating
        the fingerprint; it can never silently rejoin stale).
        Runs strictly between jobs.  Returns the number of workers
        that acked the batch.  A pool that is not running needs
        nothing: its next ``_ensure_pool`` spawns workers from the
        already-mutated graph.
        """
        if not self._members:
            return 0
        expected = {
            "graph_version": result.version,
            "graph_edges": engine.data.num_edges,
            "graph_vertices": engine.data.num_vertices,
        }
        body = pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
        targets: "List[_Member]" = []
        for shard_id in self._active_shards():
            for _replica_id, member in list(
                self._members[shard_id].members()
            ):
                try:
                    transport.send_frame(
                        member.sock, transport.MSG_MUTATE, body
                    )
                except (TransportError, OSError) as exc:
                    self._degrade_or_fail(
                        member, f"mutate send failed: {exc}"
                    )
                    continue
                targets.append(member)
        applied = 0
        for member in targets:
            if (
                self._members[member.shard_id].get(member.replica_id)
                is not member
            ):
                continue  # degraded while later sends were in flight
            try:
                kind, ack_body = transport.recv_frame(member.sock)
            except TransportError as exc:
                self._degrade_or_fail(member, f"mutate ack failed: {exc}")
                continue
            if kind == transport.MSG_ERROR:
                message = transport.decode_pickle_body(ack_body)
                self.close()
                raise SchedulerError(
                    f"shard worker {member.shard_id} (replica "
                    f"{member.replica_id}) failed to mutate:\n{message}"
                )
            if kind != transport.MSG_DELTA:
                self.close()
                raise SchedulerError(
                    f"shard worker {member.shard_id} answered MUTATE "
                    f"with frame kind {kind:#x}, expected DELTA"
                )
            ack = transport.decode_pickle_body(ack_body)
            if ack != expected:
                self.close()
                raise SchedulerError(
                    f"shard worker {member.shard_id} (replica "
                    f"{member.replica_id}) diverged on mutate: acked "
                    f"{ack!r}, engine holds {expected!r}"
                )
            applied += 1
        if self._range_table is not None:
            self._range_table = mutate_range_table(
                self._range_table, result, self.num_shards
            )
        # Pre-mutation job state (replays target the old rows) and the
        # graph identity both roll forward with the commit.
        self._job_message = None
        self._level_message = None
        self._graph = engine.data
        return applied

    def _degrade_or_fail(self, member: _Member, cause: str) -> None:
        """A replica lost mid-rebalance: drop it when the shard keeps
        other live replicas (the pool degrades to reduced K but every
        range stays covered under one label), tear down and raise when
        it was the range's last."""
        shard_id = member.shard_id
        if len(self._members[shard_id]) > 1:
            self._drop_member(member, cause)
            return
        self.close()
        raise SchedulerError(
            f"shard worker {shard_id} is gone ({cause}); no live "
            f"replica remains for shard {shard_id}; connections torn "
            f"down"
        ) from None

    def _apply_rebalance(self, table, label, slices, skip=()) -> None:
        """Ship a recut table to every live member and validate the
        HELLO echoes.

        *Every* live replica of every active shard receives its range's
        slice (a worker whose ranges didn't move merely adopts the new
        label — the whole pool must agree on one label or the next
        session handshake would refuse the laggards) and answers with a
        fresh HELLO echoing the new label.  A *liveness* failure on the
        way (peer gone, stream severed or garbled) degrades that
        replica — exactly like mid-job failover — as long as its range
        keeps another live replica; a *contract* failure (a worker that
        echoes the wrong label) always tears the pool down: composing
        mixed placements would double- or under-count rows.
        """
        for shard_id in self._active_shards():
            for _replica_id, member in list(
                self._members[shard_id].members()
            ):
                if member in skip:
                    continue
                try:
                    transport.send_pickle_frame(
                        member.sock,
                        transport.MSG_REBALANCE,
                        (label, slices[shard_id]),
                    )
                except (TransportError, OSError) as exc:
                    self._degrade_or_fail(
                        member, f"rebalance send failed: {exc}"
                    )
        # Update the expected label before validating the echoes: the
        # workers announce the *new* layout.
        self._range_table = table
        self._sharding_label = label
        for shard_id in self._active_shards():
            for replica_id, member in list(
                self._members[shard_id].members()
            ):
                if member in skip:
                    continue
                try:
                    self._handshake(
                        member.sock,
                        self._graph,
                        expected_shard=shard_id,
                        expected_replica=replica_id,
                    )
                except TransportError as exc:
                    self._degrade_or_fail(
                        member, f"rebalance echo failed: {exc}"
                    )
                except SchedulerError as exc:
                    self.close()
                    raise SchedulerError(
                        f"shard worker {shard_id} failed to rebalance: "
                        f"{exc}"
                    ) from None

    # -- elastic membership ----------------------------------------------

    def admit(self, address: Tuple[str, int]) -> ShardDescriptor:
        """Fold a newcomer worker into the live pool mid-lifetime.

        Connects to ``address``, validates the full handshake contract
        (backend, shard arithmetic, fingerprint, seed), upgrades the
        newcomer to the pool's rebalanced layout when its build label
        differs (via a REBALANCE frame), replays the current JOB if one
        is in flight, and places it in the member grid — from where the
        very next LEVEL (or failover) can dispatch to it.  A newcomer
        announcing a *wider* replica arithmetic than the pool's grows
        every range's slot table to match (K-growth: a K=1 pool becomes
        a K=2 pool the moment the first second-replica worker is
        admitted); a narrower one is refused.  Admission failures leave
        the pool exactly as it was.

        Returns the admitted worker's descriptor.
        """
        if not self._members or self._graph is None:
            raise SchedulerError(
                "no live pool to admit into; run a job first"
            )
        address = tuple(address)
        try:
            sock = self._connect(address)
        except OSError as exc:
            raise SchedulerError(
                f"could not connect to shard worker at "
                f"{address[0]}:{address[1]}: {exc}"
            ) from exc
        try:
            try:
                descriptor = self._handshake(
                    sock, self._graph,
                    allow_replica_growth=True, any_sharding=True,
                )
            except (TransportError, OSError) as exc:
                raise SchedulerError(
                    f"worker at {address[0]}:{address[1]} failed the "
                    f"admission handshake: {exc}"
                ) from None
            shard_id = descriptor.shard_id
            replica_id = descriptor.replica_id
            if shard_id in self._retired:
                raise SchedulerError(
                    f"cannot admit a worker for retired shard "
                    f"{shard_id}: its rows were recut onto the "
                    f"surviving shards"
                )
            if self._members[shard_id].get(replica_id) is not None:
                raise SchedulerError(
                    f"two workers both announced shard id {shard_id} "
                    f"(replica {replica_id}); refusing to admit the "
                    f"newcomer at {address[0]}:{address[1]}"
                )
            if descriptor.sharding != self._sharding_label:
                if self._range_table is None:
                    raise SchedulerError(
                        f"shard placement mismatch: newcomer for shard "
                        f"{shard_id} was cut under "
                        f"{descriptor.sharding!r}, the pool runs "
                        f"{self._sharding_label!r} and no range table "
                        f"is live to upgrade it with"
                    )
                try:
                    transport.send_pickle_frame(
                        sock,
                        transport.MSG_REBALANCE,
                        (
                            self._sharding_label,
                            range_table_slices(
                                self._range_table, self.num_shards
                            )[shard_id],
                        ),
                    )
                    descriptor = self._handshake(
                        sock, self._graph,
                        expected_shard=shard_id,
                        expected_replica=replica_id,
                        allow_replica_growth=True,
                    )
                except (TransportError, OSError) as exc:
                    raise SchedulerError(
                        f"newcomer for shard {shard_id} failed the "
                        f"rebalance upgrade: {exc}"
                    ) from None
            sock.settimeout(self.io_timeout)
            if self.chaos is not None:
                sock.bind_endpoint(shard_id, replica_id)
            if self._job_message is not None:
                # Mid-job admission: replay the JOB so the newcomer can
                # answer a re-dispatched (or speculative) LEVEL.
                try:
                    transport.send_frame(
                        sock,
                        transport.MSG_JOB,
                        pickle.dumps(
                            self._job_message[1:],
                            protocol=pickle.HIGHEST_PROTOCOL,
                        ),
                    )
                except (TransportError, OSError) as exc:
                    raise SchedulerError(
                        f"newcomer for shard {shard_id} lost the JOB "
                        f"replay: {exc}"
                    ) from None
            if descriptor.num_replicas > self.num_replicas:
                for replica_set in self._members:
                    replica_set.grow(descriptor.num_replicas)
                self.num_replicas = descriptor.num_replicas
            member = _Member(shard_id, replica_id, address, sock)
            self._members[shard_id].place(replica_id, member)
        except BaseException:
            try:
                sock.close()
            except OSError:  # pragma: no cover - best effort
                pass
            raise
        logger.info(
            "admitted shard %d replica %d at %s:%s into the pool "
            "(K=%d)",
            shard_id, replica_id, address[0], address[1],
            self.num_replicas,
        )
        return descriptor

    def drain(self, shard_id: int, replica_id: int = 0) -> "str | None":
        """Gracefully decommission one member of the live pool.

        Finishes whatever the member still owes (in-flight level
        replies are read out and discarded — never abandoned mid-frame),
        then removes it.  When other replicas of the range remain live,
        that is the whole story: the range stays covered at reduced K.
        When the member was its range's *last* live replica, the shard
        itself is retired: the pool's range table is recut so the
        retired shard's rows move to its nearest surviving positional
        neighbour, every surviving worker receives the recut via the
        REBALANCE frame (validated by HELLO echoes, exactly like a
        load rebalance), and subsequent jobs broadcast and gather over
        the surviving shards only.  Draining the last live member of
        the whole pool is refused.

        Runs strictly between jobs.  Returns the new placement label
        when a retire-recut happened, None for a plain replica drain.
        """
        if not self._members or self._graph is None:
            raise SchedulerError("no live pool to drain; run a job first")
        if not 0 <= shard_id < self.num_shards:
            raise SchedulerError(
                f"shard id {shard_id} outside 0..{self.num_shards - 1}"
            )
        member = self._members[shard_id].get(replica_id)
        if member is None:
            raise SchedulerError(
                f"shard {shard_id} replica {replica_id} is not a live "
                f"member of the pool"
            )
        # Finish in-flight work: drain every reply this connection
        # still owes (stale or speculative levels included).
        try:
            member.sock.settimeout(self.io_timeout)
            while member.inflight:
                transport.recv_frame(member.sock)
                member.inflight.popleft()
        except (TransportError, OSError):
            member.inflight.clear()  # it died mid-drain; treat as gone
        label: "str | None" = None
        if len(self._members[shard_id]) == 1:
            # Last replica of the range: retire the shard by recutting
            # its rows onto the surviving shards.
            survivors = [
                other for other in self._active_shards()
                if other != shard_id and self._members[other]
            ]
            if not survivors:
                raise SchedulerError(
                    f"refusing to drain shard {shard_id} replica "
                    f"{replica_id}: it is the pool's last live member"
                )
            grouped = shard_grouping(self._graph)
            table = self._range_table
            if table is None:
                table = build_range_table(
                    grouped, self.num_shards, self.sharding
                )
            table = retire_shard_ranges(table, shard_id, survivors)
            new_label = range_table_label(table, grouped)
            slices = range_table_slices(table, self.num_shards)
            self._retired.add(shard_id)
            self._apply_rebalance(table, label=new_label, slices=slices)
            label = new_label
            logger.info(
                "retired shard %d: rows recut onto shards %s (%s)",
                shard_id, survivors, new_label,
            )
        try:
            transport.send_frame(member.sock, transport.MSG_STOP)
        except (TransportError, OSError):
            pass
        try:
            member.sock.close()
        except OSError:  # pragma: no cover - best effort
            pass
        self._members[shard_id].remove(replica_id)
        logger.info(
            "drained shard %d replica %d at %s",
            shard_id, replica_id, member.address,
        )
        return label

    # -- execution ------------------------------------------------------

    def run(
        self,
        engine,
        query: Hypergraph,
        order: "Sequence[int] | None" = None,
        time_budget: "float | None" = None,
        stream: bool = True,
    ) -> ParallelResult:
        """Execute one matching job across the socket shard pool.

        The identical level-synchronous protocol as the multiprocess
        executor (one shared implementation,
        :func:`repro.parallel.level_sync.run_level_synchronous`), so
        counts are bit-identical to it and to the sequential engine —
        including under failover and speculation, which replace *who*
        answers a level but never *what* the answer is.
        ``stream=False`` forces the barrier gather (the benchmarks'
        baseline for the streaming-compose comparison).
        """
        from .level_sync import run_level_synchronous  # lazy: avoid cycle

        try:
            return run_level_synchronous(
                self, engine, query, order=order, time_budget=time_budget,
                stream=stream,
            )
        finally:
            # The recovery caches only matter while a gather is in
            # flight; dropping them here releases the last level's
            # frontier (the job's largest allocation) on executors that
            # stay warm between queries.
            self._job_message = None
            self._level_message = None
            self._inflight_frame = None
            self._watchers = {}
