"""Socket-sharded execution: shard servers + the network coordinator.

The last transport rung below multi-host deployment.  The pieces:

* :class:`ShardWorker` — a TCP server process that builds and owns one
  :class:`~repro.hypergraph.sharding.StoreShard` and answers the
  level-synchronous protocol over framed messages
  (:mod:`repro.parallel.transport`).  Run it on any host that can load
  the data hypergraph (``python -m repro serve-shard`` is the CLI
  wrapper).
* :class:`NetShardExecutor` — the coordinator: connects to ``N`` shard
  workers, validates their handshakes (backend, shard arithmetic, data
  fingerprint, scheduler seed), and runs the exact same
  level-synchronous composition loop as the multiprocess executor
  (:func:`repro.parallel.level_sync.run_level_synchronous`), so counts
  are bit-identical across pipes, sockets and the sequential engine.
* :func:`spawn_local_cluster` — boots ``N`` shard workers as local
  subprocesses on ephemeral loopback ports.  Tests, the CLI's
  ``--executor sockets`` and the benchmarks use it to exercise the
  full network path on one machine; multi-host deployments start the
  workers themselves and hand the coordinator their addresses.

What crosses the wire is what crossed the pipes: the frontier of
self-contained partial embeddings outbound, and compact
:class:`~repro.core.candidates.CandidateSet` payloads (row bitmasks /
chunk maps / edge-id tuples, each prefixed with the candidate wire
version byte) inbound — never decoded edge-id lists for the mask
backends.  ``docs/WIRE_FORMAT.md`` specifies every byte;
``docs/ARCHITECTURE.md`` places this layer in the system.
"""

from __future__ import annotations

import pickle
import socket
import time
from multiprocessing import get_context
from typing import List, Optional, Sequence, Tuple

import selectors

from ..core.candidates import (
    AnchorUnionMemo,
    VertexStepState,
    decode_versioned,
    encode_versioned,
)
from ..core.counters import WORK_UNIT_MODELS, MatchCounters
from ..core.plan import build_execution_plan
from ..errors import SchedulerError, TransportError
from ..hypergraph import Hypergraph
from ..hypergraph.sharding import (
    ShardDescriptor,
    StoreShard,
    range_table_slices,
    resolve_sharding,
)
from ..hypergraph.storage import group_edges_by_signature, resolve_index_backend
from . import transport
from .executor import ParallelResult
from .level_sync import MASK_BACKENDS, expand_level, plan_pool_rebalance
from .tasks import WorkerStats, default_seed

#: How long the coordinator waits for a TCP connect + handshake.
CONNECT_TIMEOUT = 10.0

#: Per-frame I/O timeout on established connections.  Generous — level
#: replies can take as long as the shard's share of the enumeration —
#: but finite, so a wedged peer surfaces as an error instead of a hang.
IO_TIMEOUT = 600.0


def _disable_nagle(sock: socket.socket) -> None:
    """Request/response protocols want small frames out *now*: Nagle
    coalescing only adds latency to the level barrier."""
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except (OSError, AttributeError):  # pragma: no cover - non-TCP peer
        pass


# ----------------------------------------------------------------------
# Worker side: the shard server
# ----------------------------------------------------------------------


class ShardWorker:
    """A TCP server owning one store shard.

    Builds shard ``shard_id`` of ``num_shards`` from ``graph`` at
    construction (the offline stage), then serves coordinator sessions
    sequentially: each accepted connection gets a HELLO handshake
    carrying the shard's :class:`~repro.hypergraph.sharding.
    ShardDescriptor` and the worker's scheduler seed, then answers
    JOB / LEVEL / COLLECT frames until the peer sends STOP (end the
    session) or SHUTDOWN (stop the server).  One session at a time is
    the right concurrency: a shard's store is single-writer state per
    job, and the level-synchronous protocol keeps exactly one request
    in flight.

    The server never trusts the stream: malformed frames raise
    :class:`~repro.errors.TransportError` and end the session (the
    server keeps accepting), while enumeration errors are reported to
    the peer as ERROR frames before the session ends.
    """

    def __init__(
        self,
        graph: Hypergraph,
        shard_id: int,
        num_shards: int,
        index_backend: "str | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        seed: "int | None" = None,
        sharding: "str | None" = None,
    ) -> None:
        self.index_backend = resolve_index_backend(index_backend)
        self.seed = default_seed() if seed is None else seed
        self.shard = StoreShard.build(
            graph, shard_id, num_shards, self.index_backend,
            resolve_sharding(sharding),
        )
        self._graph = graph
        self._memo = AnchorUnionMemo()
        self._mask_validation = self.index_backend in MASK_BACKENDS
        self._listener: "socket.socket | None" = None
        self._host = host
        self._port = port

    # -- lifecycle ------------------------------------------------------

    def bind(self) -> Tuple[str, int]:
        """Bind the listener; returns the bound ``(host, port)`` (the
        port is the OS-assigned one when constructed with port 0)."""
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            listener.listen(1)
            self._listener = listener
            self._host, self._port = listener.getsockname()[:2]
        return self._host, self._port

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    def close(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - best effort
                pass
            self._listener = None

    # -- serving --------------------------------------------------------

    def serve_forever(self, max_sessions: "int | None" = None) -> None:
        """Accept and serve sessions until SHUTDOWN (or ``max_sessions``
        sessions have ended — a testing/CLI convenience)."""
        self.bind()
        sessions = 0
        try:
            while max_sessions is None or sessions < max_sessions:
                try:
                    conn, _peer = self._listener.accept()
                except OSError:  # listener closed under us
                    return
                try:
                    keep_serving = self._serve_session(conn)
                finally:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover - best effort
                        pass
                sessions += 1
                if not keep_serving:
                    return
        finally:
            self.close()

    def _serve_session(self, conn: socket.socket) -> bool:
        """Serve one coordinator connection; False means SHUTDOWN."""
        conn.settimeout(IO_TIMEOUT)
        _disable_nagle(conn)
        descriptor = self.shard.describe()
        try:
            transport.send_frame(
                conn,
                transport.MSG_HELLO,
                transport.encode_handshake(descriptor.as_dict(), self.seed),
            )
        except TransportError:
            return True  # peer vanished before the handshake; next session
        plan = None
        state: "VertexStepState | None" = None
        counters = MatchCounters()
        stats = WorkerStats(worker_id=self.shard.shard_id)
        while True:
            try:
                kind, body = transport.recv_frame(conn)
            except TransportError:
                # Peer gone or stream garbled; the session is over either
                # way, and the server stays up for the next coordinator.
                return True
            try:
                if kind == transport.MSG_LEVEL:
                    step, frontier = transport.decode_pickle_body(body)
                    reply = expand_level(
                        self._graph, self.shard, plan, step, frontier,
                        state, counters, stats, self._memo,
                        self._mask_validation,
                    )
                    _, payloads, embeddings = reply
                    versioned: "List[Optional[bytes]] | None" = None
                    if payloads is not None:
                        versioned = []
                        for payload in payloads:
                            if payload is None:
                                versioned.append(None)
                            else:
                                versioned.append(encode_versioned(payload))
                                # The version byte ships too; account it.
                                stats.payload_bytes += 1
                    accounting = None
                    if step == plan.num_steps - 1:
                        # Piggyback the job accounting on the final
                        # level: saves a whole COLLECT round trip.
                        accounting = pickle.dumps(
                            (counters, stats),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        )
                    transport.send_frame(
                        conn,
                        transport.MSG_LEVEL_REPLY,
                        transport.encode_level_reply(
                            versioned, embeddings, accounting
                        ),
                    )
                elif kind == transport.MSG_JOB:
                    query, order = transport.decode_pickle_body(body)
                    plan = build_execution_plan(
                        query, order, index_backend=self.index_backend
                    )
                    counters = MatchCounters()
                    counters.note_work_model(
                        WORK_UNIT_MODELS.get(self.index_backend, "")
                    )
                    stats = WorkerStats(worker_id=self.shard.shard_id)
                    state = VertexStepState(self._graph)
                elif kind == transport.MSG_COLLECT:
                    transport.send_frame(
                        conn,
                        transport.MSG_ACCOUNTING,
                        pickle.dumps(
                            (counters, stats),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        ),
                    )
                elif kind == transport.MSG_REBALANCE:
                    label, ranges = transport.decode_pickle_body(body)
                    if ranges == self.shard.ranges():
                        # Boundaries didn't touch this shard: adopt the
                        # new placement label, keep the warm indices.
                        self.shard.sharding = label
                    else:
                        self.shard = StoreShard.from_ranges(
                            self._graph,
                            group_edges_by_signature(self._graph),
                            self.shard.shard_id,
                            self.shard.num_shards,
                            self.index_backend,
                            ranges,
                            sharding=label,
                        )
                        # Cached anchor unions are masks over the old
                        # shard's rows; clearing is mandatory.
                        self._memo.clear()
                    # Answer with a fresh HELLO: the descriptor now
                    # echoes the coordinator-issued label, which is how
                    # the peer verifies the rebuild took effect.
                    transport.send_frame(
                        conn,
                        transport.MSG_HELLO,
                        transport.encode_handshake(
                            self.shard.describe().as_dict(), self.seed
                        ),
                    )
                elif kind == transport.MSG_STOP:
                    return True
                elif kind == transport.MSG_SHUTDOWN:
                    return False
                else:
                    raise TransportError(
                        f"unexpected frame kind {kind:#x} in session"
                    )
            except TransportError:
                return True  # write failed: peer gone mid-reply
            except Exception:  # report, then end the session visibly
                import traceback

                try:
                    transport.send_pickle_frame(
                        conn, transport.MSG_ERROR, traceback.format_exc()
                    )
                except TransportError:  # pragma: no cover - peer gone too
                    pass
                return True


# ----------------------------------------------------------------------
# Local clusters (subprocess workers on loopback ports)
# ----------------------------------------------------------------------


def _cluster_worker_main(
    conn,
    graph: Hypergraph,
    shard_id: int,
    num_shards: int,
    index_backend: str,
    seed: int,
    sharding: str = "uniform",
) -> None:
    """Subprocess entry point: build the shard server, report its port
    through the pipe, then serve until SHUTDOWN."""
    try:
        worker = ShardWorker(
            graph, shard_id, num_shards, index_backend, seed=seed,
            sharding=sharding,
        )
        host, port = worker.bind()
        conn.send(("ready", host, port))
        conn.close()
        worker.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - parent interrupt
        pass


def shutdown_worker(
    address: Tuple[str, int], timeout: float = 5.0
) -> bool:
    """Ask the shard worker at ``address`` to shut its server down.

    Connects, consumes the worker's HELLO and sends the QUIT frame —
    the protocol's graceful stop (``docs/WIRE_FORMAT.md`` §2.1), also
    usable against a remote ``serve-shard`` process.  Returns True when
    the exchange completed, False when the worker was already gone or
    busy past ``timeout`` (callers fall back to killing the process).
    """
    try:
        with socket.create_connection(
            tuple(address), timeout=timeout
        ) as sock:
            sock.settimeout(timeout)
            transport.recv_frame(sock)  # the worker's HELLO
            transport.send_frame(sock, transport.MSG_SHUTDOWN)
        return True
    except (TransportError, OSError):
        return False


def _start_cluster_worker(
    context,
    graph: Hypergraph,
    shard_id: int,
    num_shards: int,
    index_backend: str,
    seed: int,
    sharding: str,
):
    """Start one loopback shard-worker subprocess; returns
    ``(process, parent_conn)`` — await its port with
    :func:`_await_worker_ready`."""
    parent_conn, child_conn = context.Pipe()
    process = context.Process(
        target=_cluster_worker_main,
        args=(
            child_conn, graph, shard_id, num_shards, index_backend, seed,
            sharding,
        ),
        daemon=True,
    )
    process.start()
    child_conn.close()
    return process, parent_conn


def _await_worker_ready(
    parent_conn, shard_id: int, ready_timeout: float
) -> Tuple[str, int]:
    """Read one worker's ``("ready", host, port)`` report."""
    if not parent_conn.poll(ready_timeout):
        raise SchedulerError(
            f"shard worker {shard_id} did not report ready within "
            f"{ready_timeout}s"
        )
    message = parent_conn.recv()
    if message[0] != "ready":  # pragma: no cover - protocol misuse
        raise SchedulerError(
            f"shard worker {shard_id} sent {message!r} instead of "
            f"its address"
        )
    return message[1], message[2]


class LocalCluster:
    """Handle on a set of locally spawned shard-worker processes."""

    def __init__(
        self,
        processes,
        addresses,
        index_backend,
        seed,
        graph: "Hypergraph | None" = None,
        sharding: str = "uniform",
        start_method: "str | None" = None,
        ready_timeout: float = 30.0,
    ) -> None:
        self.processes = processes
        self.addresses: "List[Tuple[str, int]]" = addresses
        self.index_backend = index_backend
        self.seed = seed
        self.sharding = sharding
        self._graph = graph
        self._start_method = start_method
        self._ready_timeout = ready_timeout

    def respawn(self, shard_id: int) -> Tuple[str, int]:
        """Replace a dead worker process with a fresh one for the same
        shard (built with the cluster's spawn-time placement mode) and
        return its new address — the restart-with-requeue hook the
        coordinator uses on mid-job worker loss."""
        if self._graph is None:
            raise SchedulerError(
                "cluster was not built by spawn_local_cluster; "
                "cannot respawn workers"
            )
        if not 0 <= shard_id < len(self.processes):
            raise SchedulerError(f"no shard worker {shard_id} to respawn")
        old = self.processes[shard_id]
        if old.is_alive():  # pragma: no cover - caller races the reaper
            old.terminate()
        old.join(timeout=2.0)
        context = (
            get_context(self._start_method)
            if self._start_method is not None
            else get_context()
        )
        process, parent_conn = _start_cluster_worker(
            context, self._graph, shard_id, len(self.processes),
            self.index_backend, self.seed, self.sharding,
        )
        try:
            address = _await_worker_ready(
                parent_conn, shard_id, self._ready_timeout
            )
        except BaseException:
            if process.is_alive():
                process.terminate()
            raise
        finally:
            parent_conn.close()
        self.processes[shard_id] = process
        self.addresses[shard_id] = address
        return address

    def close(self) -> None:
        """Stop the worker processes (idempotent): ask each server to
        QUIT, then terminate whatever did not exit in time."""
        for process, address in zip(self.processes, self.addresses):
            if process.is_alive():
                shutdown_worker(address)
        for process in self.processes:
            process.join(timeout=2.0)
        for process in self.processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=2.0)
        self.processes = []

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def spawn_local_cluster(
    graph: Hypergraph,
    num_shards: int,
    index_backend: "str | None" = None,
    seed: "int | None" = None,
    start_method: "str | None" = None,
    ready_timeout: float = 30.0,
    sharding: "str | None" = None,
) -> LocalCluster:
    """Boot ``num_shards`` shard workers as subprocesses on loopback.

    Each worker builds its own :class:`~repro.hypergraph.sharding.
    StoreShard` (under the requested placement mode), binds an
    ephemeral 127.0.0.1 port and serves the framed protocol; the
    returned :class:`LocalCluster` lists the addresses to hand a
    :class:`NetShardExecutor`.  This is the single-machine path through
    the *full* network stack — the tests' and benchmarks' way of
    proving the multi-host story without a second host.
    """
    if num_shards < 1:
        raise SchedulerError("num_shards must be >= 1")
    index_backend = resolve_index_backend(index_backend)
    sharding = resolve_sharding(sharding)
    seed = default_seed() if seed is None else seed
    context = (
        get_context(start_method)
        if start_method is not None
        else get_context()
    )
    processes = []
    parent_conns = []
    for shard_id in range(num_shards):
        process, parent_conn = _start_cluster_worker(
            context, graph, shard_id, num_shards, index_backend, seed,
            sharding,
        )
        processes.append(process)
        parent_conns.append(parent_conn)
    addresses: "List[Tuple[str, int]]" = []
    try:
        for shard_id, parent_conn in enumerate(parent_conns):
            addresses.append(
                _await_worker_ready(parent_conn, shard_id, ready_timeout)
            )
    except BaseException:
        for process in processes:
            if process.is_alive():
                process.terminate()
        raise
    finally:
        for parent_conn in parent_conns:
            parent_conn.close()
    return LocalCluster(
        processes, addresses, index_backend, seed,
        graph=graph, sharding=sharding, start_method=start_method,
        ready_timeout=ready_timeout,
    )


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class NetShardExecutor:
    """Run matching jobs over TCP-connected shard workers.

    Two construction modes:

    ``NetShardExecutor(addresses=[("host", port), ...])``
        Connect to externally managed workers (the multi-host mode; the
        CLI's ``--hosts``).  ``num_shards`` is the address count, and
        the handshake must show every shard id ``0..N-1`` exactly once
        — replies are gathered in *shard* order regardless of the order
        the addresses were listed in.

    ``NetShardExecutor(num_shards=N)``
        Spawn (and own) a local cluster for the engine's data graph on
        first use — the single-machine ``--executor sockets`` path.

    The handshake is validated against the executor's expectations
    before any job runs: index backend (payloads would mis-decode),
    shard arithmetic (rows would be double- or under-counted), the data
    graph fingerprint (counts would be silently wrong) and the
    scheduler seed (reproducibility).  Any mismatch, disconnect or
    protocol violation tears the connections down and raises
    :class:`~repro.errors.SchedulerError`; the next ``run`` starts
    clean.
    """

    def __init__(
        self,
        addresses: "Sequence[Tuple[str, int]] | None" = None,
        num_shards: "int | None" = None,
        index_backend: "str | None" = None,
        sharding: "str | None" = None,
        seed: "int | None" = None,
        start_method: "str | None" = None,
        connect_timeout: float = CONNECT_TIMEOUT,
        io_timeout: float = IO_TIMEOUT,
    ) -> None:
        if addresses is not None:
            addresses = [tuple(address) for address in addresses]
            if num_shards is not None and num_shards != len(addresses):
                raise SchedulerError(
                    f"num_shards={num_shards} contradicts "
                    f"{len(addresses)} worker addresses"
                )
            num_shards = len(addresses)
        if num_shards is None:
            raise SchedulerError(
                "NetShardExecutor needs worker addresses or num_shards"
            )
        if num_shards < 1:
            raise SchedulerError("num_shards must be >= 1")
        self.addresses = addresses
        self.num_shards = num_shards
        self.index_backend = resolve_index_backend(index_backend)
        self.sharding = resolve_sharding(sharding)
        self.seed = default_seed() if seed is None else seed
        self.start_method = start_method
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self._cluster: "LocalCluster | None" = None
        self._socks: "List[socket.socket]" = []
        self._graph: "Hypergraph | None" = None
        #: Placement of the live pool: build-mode label until a
        #: rebalance issues a ``rebalanced-<fp>`` table.
        self._sharding_label = self.sharding
        self._range_table = None
        #: Protocol position for mid-job worker recovery: the last JOB
        #: and LEVEL broadcast (local clusters replay them to a
        #: respawned worker — see :meth:`_recover_worker`).
        self._job_message = None
        self._level_message = None
        self._respawn_budget = 0

    # -- connection lifecycle -------------------------------------------

    def _ensure_pool(self, engine) -> None:
        if engine.index_backend != self.index_backend:
            raise SchedulerError(
                f"engine backend {engine.index_backend!r} does not match "
                f"executor backend {self.index_backend!r}"
            )
        self._respawn_budget = self.num_shards
        if self._graph is engine.data and self._socks:
            # Reused sessions can have gone stale between jobs (the
            # worker ends sessions idle past its I/O timeout; a worker
            # can die).  A COLLECT round trip is a legitimate protocol
            # exchange, so use it as a liveness probe and fall through
            # to a clean rebuild instead of failing the job; a genuine
            # *mid-job* failure still raises (nothing half-composed).
            try:
                self._broadcast(("collect",))
                self._gather()
                return
            except SchedulerError:
                pass  # _broadcast/_gather already tore everything down
        self._close_connections()
        if self.addresses is None:
            # Local mode: own a cluster for this engine's data graph.
            # A fresh cluster builds spawn-mode shards, so any
            # rebalanced layout of the previous pool is gone with it.
            if self._cluster is not None:
                self._cluster.close()
                self._cluster = None
            self._sharding_label = self.sharding
            self._range_table = None
            self._cluster = spawn_local_cluster(
                engine.data,
                self.num_shards,
                self.index_backend,
                seed=self.seed,
                start_method=self.start_method,
                sharding=self.sharding,
            )
            addresses = self._cluster.addresses
        else:
            addresses = self.addresses
        ordered: "List[socket.socket | None]" = [None] * self.num_shards
        current: "socket.socket | None" = None
        try:
            for host, port in addresses:
                try:
                    current = socket.create_connection(
                        (host, port), timeout=self.connect_timeout
                    )
                except OSError as exc:
                    raise SchedulerError(
                        f"could not connect to shard worker at "
                        f"{host}:{port}: {exc}"
                    ) from exc
                _disable_nagle(current)
                # The handshake runs under the (short) connect timeout: a
                # peer that accepts but never says HELLO — e.g. a busy
                # single-session server — should fail fast, not tie the
                # coordinator up for a whole job timeout.
                current.settimeout(self.connect_timeout)
                ordered[
                    self._handshake(current, engine.data, ordered=ordered)
                ] = current
                current.settimeout(self.io_timeout)
                current = None
        except BaseException:
            for sock in ordered + [current]:
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
            raise
        self._socks = ordered  # type: ignore[assignment]
        self._graph = engine.data

    def _handshake(
        self,
        sock,
        graph,
        ordered=None,
        expected_shard: "int | None" = None,
        expected_sharding: "str | None" = None,
    ) -> int:
        """Validate one worker's HELLO; returns its shard id.

        ``ordered`` (pool setup) additionally rejects duplicate shard
        ids; ``expected_shard`` (worker recovery) pins the id instead.
        ``expected_sharding`` overrides the placement label to expect —
        a freshly respawned worker announces the spawn mode even while
        the pool runs a rebalanced layout.
        """
        kind, body = transport.recv_frame(sock)
        if kind != transport.MSG_HELLO:
            raise SchedulerError(
                f"worker spoke {kind:#x} before HELLO; not a shard server?"
            )
        descriptor_dict, worker_seed = transport.decode_handshake(body)
        try:
            descriptor = ShardDescriptor.from_dict(descriptor_dict)
        except (KeyError, TypeError) as exc:
            raise SchedulerError(
                f"malformed handshake descriptor (missing/invalid field "
                f"{exc}): not a compatible shard server"
            ) from None
        if descriptor.index_backend != self.index_backend:
            raise SchedulerError(
                f"handshake backend mismatch: worker shard "
                f"{descriptor.shard_id} built {descriptor.index_backend!r}, "
                f"coordinator expects {self.index_backend!r}"
            )
        if descriptor.num_shards != self.num_shards:
            raise SchedulerError(
                f"shard arithmetic mismatch: worker believes in "
                f"{descriptor.num_shards} shards, coordinator in "
                f"{self.num_shards}"
            )
        if not 0 <= descriptor.shard_id < self.num_shards:
            raise SchedulerError(
                f"worker announced shard id {descriptor.shard_id} outside "
                f"0..{self.num_shards - 1}"
            )
        if ordered is not None and ordered[descriptor.shard_id] is not None:
            raise SchedulerError(
                f"two workers both announced shard id {descriptor.shard_id}"
            )
        if (
            expected_shard is not None
            and descriptor.shard_id != expected_shard
        ):
            raise SchedulerError(
                f"respawned worker announced shard id "
                f"{descriptor.shard_id}, expected {expected_shard}"
            )
        sharding = (
            self._sharding_label
            if expected_sharding is None
            else expected_sharding
        )
        if descriptor.sharding != sharding:
            raise SchedulerError(
                f"shard placement mismatch: worker shard "
                f"{descriptor.shard_id} was cut under "
                f"{descriptor.sharding!r}, coordinator expects "
                f"{sharding!r} — composing different placements would "
                f"double- or under-count rows"
            )
        if (
            descriptor.graph_edges != graph.num_edges
            or descriptor.graph_vertices != graph.num_vertices
        ):
            raise SchedulerError(
                f"data graph mismatch: worker shard {descriptor.shard_id} "
                f"was built from a graph with {descriptor.graph_edges} "
                f"edges / {descriptor.graph_vertices} vertices, the engine "
                f"holds {graph.num_edges} / "
                f"{graph.num_vertices}"
            )
        if worker_seed != self.seed:
            raise SchedulerError(
                f"scheduler seed mismatch: worker shard "
                f"{descriptor.shard_id} runs REPRO_SEED={worker_seed}, "
                f"coordinator {self.seed} — parallel runs would not be "
                f"reproducible"
            )
        return descriptor.shard_id

    def _close_connections(self) -> None:
        for sock in self._socks:
            try:
                transport.send_frame(sock, transport.MSG_STOP)
            except TransportError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._socks = []
        self._graph = None

    def close(self) -> None:
        """End the sessions; stop the owned local cluster, if any."""
        self._close_connections()
        if self._cluster is not None:
            self._cluster.close()
            self._cluster = None

    def __enter__(self) -> "NetShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- messaging (the level_sync plug-in surface) ---------------------

    def _broadcast(self, message) -> None:
        kind_map = {
            "job": transport.MSG_JOB,
            "level": transport.MSG_LEVEL,
            "collect": transport.MSG_COLLECT,
        }
        kind = kind_map[message[0]]
        # Remember the protocol position *before* any byte moves: a
        # worker recovered mid-gather is replayed the current job and
        # level, so the cache must already reflect this broadcast.
        if kind == transport.MSG_JOB:
            self._job_message = message
            self._level_message = None
        elif kind == transport.MSG_LEVEL:
            self._level_message = message
        body = (
            b""
            if kind == transport.MSG_COLLECT
            else pickle.dumps(
                message[1:], protocol=pickle.HIGHEST_PROTOCOL
            )
        )
        frame = transport.encode_frame(kind, body)
        for shard_id, sock in enumerate(self._socks):
            try:
                sock.sendall(frame)
            except OSError:
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} is gone; connections torn down"
                ) from None

    def _decode_reply(self, shard_id: int, kind: int, body: bytes):
        """Decode one worker reply frame (level reply or accounting)."""
        if kind == transport.MSG_ERROR:
            message = transport.decode_pickle_body(body)
            self.close()
            raise SchedulerError(
                f"shard worker {shard_id} failed:\n{message}"
            )
        try:
            if kind == transport.MSG_LEVEL_REPLY:
                payloads, embeddings, accounting = (
                    transport.decode_level_reply(body)
                )
                if payloads is not None:
                    payloads = [
                        None if payload is None
                        else decode_versioned(payload)
                        for payload in payloads
                    ]
                reply = ("level", payloads, embeddings)
                if accounting is not None:
                    reply = reply + pickle.loads(accounting)
            elif kind == transport.MSG_ACCOUNTING:
                reply = transport.decode_pickle_body(body)
            else:
                raise TransportError(
                    f"unexpected reply kind {kind:#x}"
                )
        except (TransportError, ValueError, pickle.PickleError) as exc:
            self.close()
            raise SchedulerError(
                f"shard worker {shard_id} sent an undecodable reply: "
                f"{exc}"
            ) from None
        return reply

    def _recover_worker(self, shard_id: int) -> "socket.socket | None":
        """Restart-with-requeue for a worker lost *mid-job*.

        Only executors that *own* their workers can restart them, so
        this applies to local clusters exclusively — with externally
        managed ``addresses`` the coordinator cannot know how to revive
        a remote host and keeps the documented clean
        :class:`SchedulerError`.  The respawned worker rebuilds its
        shard from the spawn-time placement, is upgraded to the pool's
        rebalanced layout if one is live, and is then replayed the
        current JOB and the in-flight LEVEL — requeueing exactly the
        level the dead worker never answered.  Its earlier per-level
        counter accounting for this job is lost with the process (the
        embedding count is not: embeddings are only reported on the
        final level, which the replay re-expands in full).  Returns the
        fresh socket, or None when recovery is impossible (budget
        exhausted, respawn failed, replay failed).
        """
        if self._cluster is None or self._respawn_budget <= 0:
            return None
        if self._job_message is None or self._level_message is None:
            return None
        self._respawn_budget -= 1
        sock: "socket.socket | None" = None
        try:
            address = self._cluster.respawn(shard_id)
            sock = socket.create_connection(
                address, timeout=self.connect_timeout
            )
            _disable_nagle(sock)
            sock.settimeout(self.connect_timeout)
            self._handshake(
                sock,
                self._graph,
                expected_shard=shard_id,
                expected_sharding=self._cluster.sharding,
            )
            if self._sharding_label != self._cluster.sharding:
                # The pool runs a rebalanced layout; bring the fresh
                # worker onto it before replaying any work.
                transport.send_pickle_frame(
                    sock,
                    transport.MSG_REBALANCE,
                    (
                        self._sharding_label,
                        range_table_slices(
                            self._range_table, self.num_shards
                        )[shard_id],
                    ),
                )
                self._handshake(sock, self._graph, expected_shard=shard_id)
            sock.settimeout(self.io_timeout)
            for message in (self._job_message, self._level_message):
                transport.send_frame(
                    sock,
                    transport.MSG_JOB
                    if message[0] == "job"
                    else transport.MSG_LEVEL,
                    pickle.dumps(
                        message[1:], protocol=pickle.HIGHEST_PROTOCOL
                    ),
                )
        except (SchedulerError, TransportError, OSError):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - best effort
                    pass
            return None
        self._socks[shard_id] = sock
        return sock

    def _recv_reply(self, shard_id: int, recover: bool = True):
        """Read and decode one reply from a shard, recovering a lost
        local-cluster worker once (respawn + requeue the level)."""
        try:
            kind, body = transport.recv_frame(self._socks[shard_id])
        except TransportError as exc:
            if recover and self._recover_worker(shard_id) is not None:
                return self._recv_reply(shard_id, recover=False)
            self.close()
            raise SchedulerError(
                f"shard worker {shard_id} disconnected mid-job: {exc}"
            ) from None
        return self._decode_reply(shard_id, kind, body)

    def _gather(self) -> list:
        replies = [None] * self.num_shards
        for shard_id in range(self.num_shards):
            try:
                kind, body = transport.recv_frame(self._socks[shard_id])
            except TransportError as exc:
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} disconnected mid-job: {exc}"
                ) from None
            replies[shard_id] = self._decode_reply(shard_id, kind, body)
        return replies

    def _gather_iter(self):
        """As-completed level replies: ``(shard_id, reply)`` pairs in
        arrival order (the streaming-compose hook of
        :func:`repro.parallel.level_sync.run_level_synchronous`).  A
        local-cluster worker that dies mid-level is respawned and the
        level requeued to it transparently; external workers keep the
        clean mid-job failure semantics."""
        pending = set(range(self.num_shards))
        while pending:
            selector = selectors.DefaultSelector()
            try:
                for shard_id in pending:
                    selector.register(
                        self._socks[shard_id], selectors.EVENT_READ, shard_id
                    )
                events = selector.select(timeout=self.io_timeout)
            finally:
                selector.close()
            if not events:
                self.close()
                raise SchedulerError(
                    f"no shard reply within {self.io_timeout}s; "
                    f"{len(pending)} worker(s) wedged"
                )
            for key, _mask in events:
                shard_id = key.data
                pending.discard(shard_id)
                yield shard_id, self._recv_reply(shard_id)

    # -- adaptive placement ----------------------------------------------

    def rebalance(self, worker_stats) -> int:
        """Recut the live pool's ranges from observed per-shard load.

        The socket twin of :meth:`repro.parallel.shard_executor.
        ProcessShardExecutor.rebalance` — one shared planner
        (:func:`repro.parallel.level_sync.plan_pool_rebalance`), two
        transports.  *Every* worker receives its slice of the recut
        table in a REBALANCE frame (a worker whose ranges didn't move
        merely adopts the new placement label and keeps its warm
        indices — the whole pool must agree on one label or the next
        session handshake would refuse the laggards), and each answers
        with a fresh HELLO that must echo the new label.  Works against
        local clusters and remote ``serve-shard`` workers alike (the
        frame is part of the wire protocol); runs strictly between
        jobs.  Returns the number of shards whose ranges moved.
        """
        if not self._socks or self._graph is None:
            raise SchedulerError(
                "no live pool to rebalance; run a job first"
            )
        plan = plan_pool_rebalance(self, worker_stats)
        if plan is None:
            return 0
        table, label, slices, moved = plan
        for shard_id in range(self.num_shards):
            try:
                transport.send_pickle_frame(
                    self._socks[shard_id],
                    transport.MSG_REBALANCE,
                    (label, slices[shard_id]),
                )
            except TransportError:
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} is gone; connections torn "
                    f"down"
                ) from None
        # Update the expected label before validating the echoes: the
        # workers announce the *new* layout.
        self._range_table = table
        self._sharding_label = label
        for shard_id in range(self.num_shards):
            try:
                self._handshake(
                    self._socks[shard_id],
                    self._graph,
                    expected_shard=shard_id,
                )
            except (SchedulerError, TransportError) as exc:
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} failed to rebalance: {exc}"
                ) from None
        return len(moved)

    # -- execution ------------------------------------------------------

    def run(
        self,
        engine,
        query: Hypergraph,
        order: "Sequence[int] | None" = None,
        time_budget: "float | None" = None,
        stream: bool = True,
    ) -> ParallelResult:
        """Execute one matching job across the socket shard pool.

        The identical level-synchronous protocol as the multiprocess
        executor (one shared implementation,
        :func:`repro.parallel.level_sync.run_level_synchronous`), so
        counts are bit-identical to it and to the sequential engine.
        ``stream=False`` forces the barrier gather (the benchmarks'
        baseline for the streaming-compose comparison).
        """
        from .level_sync import run_level_synchronous  # lazy: avoid cycle

        try:
            return run_level_synchronous(
                self, engine, query, order=order, time_budget=time_budget,
                stream=stream,
            )
        finally:
            # The recovery cache only matters while a gather is in
            # flight; dropping it here releases the last level's
            # frontier (the job's largest allocation) on executors that
            # stay warm between queries.
            self._job_message = None
            self._level_message = None
