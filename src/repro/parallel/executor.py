"""The threaded parallel executor: task scheduler + dynamic work stealing.

This is the real-threads implementation of HGMatch's execution engine
(Section VI).  Each worker owns a :class:`WorkStealingDeque`; newly
spawned tasks go to the owner's head (LIFO), idle workers steal half a
random victim's tasks from the tail.  Termination uses a global count of
outstanding tasks: a task is retired only after its children are
enqueued, so the count reaching zero means the whole task tree is done.

Under CPython the GIL serialises the set-operation inner loops, so this
executor demonstrates *correctness* (parallel counts equal sequential
counts), bounded memory, and load-balance accounting — while the
wall-clock scalability experiments (Exp-4/Exp-6) run on the
discrete-event :mod:`repro.parallel.simulation` over the same task
semantics.  See DESIGN.md, substitution 2.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.candidates import VertexStepState
from ..core.counters import WORK_UNIT_MODELS, MatchCounters
from ..core.engine import HGMatch
from ..errors import SchedulerError, TimeoutExceeded
from ..hypergraph import Hypergraph
from .deque import WorkStealingDeque
from .tasks import ROOT_TASK, PartialEmbedding, WorkerStats, default_seed


@dataclass
class ParallelResult:
    """Outcome of one parallel matching job."""

    embeddings: int
    elapsed: float
    counters: MatchCounters
    worker_stats: List[WorkerStats] = field(default_factory=list)

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-worker busy time (1.0 = perfect balance)."""
        times = [stats.busy_time for stats in self.worker_stats]
        if not times or sum(times) == 0:
            return 1.0
        mean = sum(times) / len(times)
        return max(times) / mean if mean > 0 else 1.0


class _SharedState:
    """State shared by all workers of one job."""

    def __init__(self, num_workers: int) -> None:
        self.deques: List[WorkStealingDeque] = [
            WorkStealingDeque() for _ in range(num_workers)
        ]
        self.outstanding = 0
        self.outstanding_lock = threading.Lock()
        self.cancelled = threading.Event()
        self.failure: Optional[BaseException] = None

    def add_outstanding(self, count: int) -> None:
        with self.outstanding_lock:
            self.outstanding += count

    def retire(self) -> int:
        with self.outstanding_lock:
            self.outstanding -= 1
            return self.outstanding


class ThreadedExecutor:
    """Run a matching job on ``num_workers`` real threads.

    Parameters
    ----------
    num_workers:
        Thread-pool size ``p``.
    steal_mode:
        ``"half"`` (paper behaviour) or ``"one"`` (ablation) — how many
        tasks a thief takes per successful steal.
    stealing:
        Set False to disable work stealing entirely; workers then only
        process the initial static share they were assigned
        ("HGMatch-NOSTL" in Exp-6).
    seed:
        Seed for victim selection, making runs reproducible.  ``None``
        (the default) resolves to the ``REPRO_SEED`` environment
        variable (falling back to 0) via
        :func:`repro.parallel.tasks.default_seed`; each job derives its
        per-worker RNGs from this value alone, never from the
        process-global :mod:`random` state.
    """

    def __init__(
        self,
        num_workers: int,
        steal_mode: str = "half",
        stealing: bool = True,
        seed: "int | None" = None,
    ) -> None:
        if num_workers < 1:
            raise SchedulerError("num_workers must be >= 1")
        if steal_mode not in ("half", "one"):
            raise SchedulerError(f"unknown steal mode {steal_mode!r}")
        self.num_workers = num_workers
        self.steal_mode = steal_mode
        self.stealing = stealing
        self.seed = default_seed() if seed is None else seed

    def run(
        self,
        engine: HGMatch,
        query: Hypergraph,
        order: "Sequence[int] | None" = None,
        time_budget: "float | None" = None,
    ) -> ParallelResult:
        """Execute the job; returns counts plus per-worker statistics."""
        plan = engine.plan(query, order)
        num_steps = plan.num_steps
        state = _SharedState(self.num_workers)

        # Static initial distribution: expand the root (SCAN) inline and
        # deal the first-level tasks round-robin across workers — the
        # coarse-grained baseline that stealing then refines.
        root_counters = MatchCounters()
        first_level = engine.expand(plan, ROOT_TASK, root_counters)
        root_counters.tasks += 1
        completed_at_root = 0
        if num_steps == 1:
            completed_at_root = len(first_level)
            first_level = []
        for position, task in enumerate(first_level):
            state.deques[position % self.num_workers].push(task)
        state.add_outstanding(len(first_level))

        deadline = None if time_budget is None else time.monotonic() + time_budget
        stats = [WorkerStats(worker_id=i) for i in range(self.num_workers)]
        counters = [MatchCounters() for _ in range(self.num_workers)]
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(
                    worker_id,
                    engine,
                    plan,
                    state,
                    stats[worker_id],
                    counters[worker_id],
                    deadline,
                ),
                daemon=True,
            )
            for worker_id in range(self.num_workers)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - started

        if state.failure is not None:
            raise state.failure
        if state.cancelled.is_set() and deadline is not None:
            raise TimeoutExceeded(elapsed, time_budget)

        merged = root_counters
        merged.embeddings += completed_at_root
        total_embeddings = completed_at_root
        for worker_id in range(self.num_workers):
            merged.merge(counters[worker_id])
            total_embeddings += stats[worker_id].embeddings
            stats[worker_id].peak_queue = state.deques[worker_id].peak_size
        merged.embeddings = total_embeddings
        merged.peak_retained = sum(dq.peak_size for dq in state.deques)
        return ParallelResult(
            embeddings=total_embeddings,
            elapsed=elapsed,
            counters=merged,
            worker_stats=stats,
        )

    # ------------------------------------------------------------------
    def _worker_loop(
        self,
        worker_id: int,
        engine: HGMatch,
        plan,
        state: _SharedState,
        stats: WorkerStats,
        counters: MatchCounters,
        deadline: "float | None",
    ) -> None:
        # Per-job, per-worker RNG derived from the executor seed alone:
        # steal decisions never consult the process-global random state.
        rng = random.Random(self.seed * 7919 + worker_id)
        own = state.deques[worker_id]
        num_steps = plan.num_steps
        # Tasks stay self-contained edge-id tuples (cheap to steal, the
        # Theorem VI.1 memory bound holds); the worker merely caches one
        # push/pop-delta vertex_step_map and re-points it at each task.
        expansion_state = VertexStepState(engine.data)
        step_tuples = expansion_state.step_tuples
        step_masks = (
            expansion_state.step_masks if engine.uses_mask_validation else None
        )
        counters.note_work_model(WORK_UNIT_MODELS.get(engine.index_backend, ""))
        try:
            while not state.cancelled.is_set():
                task = own.pop()
                if task is None:
                    if not self.stealing:
                        if self._job_done(state):
                            return
                        # Without stealing a worker with an empty queue can
                        # only wait for the job to finish.
                        time.sleep(0.0005)
                        continue
                    task = self._try_steal(worker_id, state, stats, rng)
                    if task is None:
                        if self._job_done(state):
                            return
                        time.sleep(0.0001)
                        continue
                if deadline is not None and time.monotonic() > deadline:
                    state.cancelled.set()
                    return
                started = time.perf_counter()
                vmap = expansion_state.advance(task)
                children = engine.expand(
                    plan, task, counters, vmap=vmap, step_tuples=step_tuples,
                    step_masks=step_masks,
                )
                spawned: List[PartialEmbedding] = []
                for child in children:
                    if len(child) == num_steps:
                        stats.embeddings += 1
                    else:
                        spawned.append(child)
                if spawned:
                    state.add_outstanding(len(spawned))
                    own.push_many(spawned)
                stats.tasks_executed += 1
                stats.busy_time += time.perf_counter() - started
                counters.tasks += 1
                state.retire()
        except BaseException as exc:  # propagate to the caller thread
            state.failure = exc
            state.cancelled.set()

    def _try_steal(
        self,
        worker_id: int,
        state: _SharedState,
        stats: WorkerStats,
        rng: random.Random,
    ) -> Optional[PartialEmbedding]:
        """Attempt one steal from a random non-empty victim."""
        victims = [
            vid
            for vid in range(self.num_workers)
            if vid != worker_id and state.deques[vid].snapshot_size() > 0
        ]
        if not victims:
            return None
        victim = rng.choice(victims)
        stats.steal_attempts += 1
        if self.steal_mode == "half":
            stolen = state.deques[victim].steal_half()
        else:
            single = state.deques[victim].steal_one()
            stolen = [single] if single is not None else []
        if not stolen:
            return None
        stats.steals_succeeded += 1
        stats.tasks_stolen += len(stolen)
        own = state.deques[worker_id]
        # Keep one task to run now; repatriate the rest onto our deque.
        task = stolen[-1]
        for item in stolen[:-1]:
            own.push(item)
        return task

    @staticmethod
    def _job_done(state: _SharedState) -> bool:
        with state.outstanding_lock:
            return state.outstanding == 0
