"""The match service: admission, deadlines, cancellation, caching.

:class:`MatchService` is the always-on front half of the system: it
owns one engine and one :class:`~repro.service.mux.MuxShardPool` and
turns "run this query" into a governed operation:

* **Admission control** — at most ``queue_depth`` queries are admitted
  at once; the ``queue_depth + 1``-th is *refused* with an explicit
  :class:`~repro.errors.ServiceBusy` (retry-after hint included), never
  silently queued without bound or left to hang.  Of the admitted
  queries, ``max_concurrent`` execute at a time; the rest wait their
  turn in the bounded backlog.
* **Deadlines** — a per-query deadline is enforced coordinator-side at
  every barrier *and* mid-gather, and its expiry broadcasts CANCEL so
  the workers drop the query's session state remotely: a timed-out
  query never leaves orphaned worker state.
* **Cancellation** — :meth:`MatchTicket.cancel` (and a daemon client
  disconnecting) sets the query's cancel flag; the same remote CANCEL
  guarantee applies.
* **Result cache** — an LRU keyed by ``(graph fingerprint, query
  fingerprint)``; hits return the finished
  :class:`~repro.parallel.executor.ParallelResult` without touching
  the pool at all (the pool's dispatch counter is the proof).
* **Drain** — stop admitting, let in-flight queries finish inside a
  timeout, cancel the stragglers, close the pool.  This is what the
  daemon runs on SIGTERM.
"""

from __future__ import annotations

import io
import threading
import time
import zlib
from collections import OrderedDict
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Optional, Sequence, Tuple

from ..errors import QueryCancelled, SchedulerError, ServiceBusy
from ..hypergraph import Hypergraph
from ..hypergraph.io import dump_native
from ..hypergraph.journal import MutationJournal
from ..parallel.level_sync import run_level_synchronous
from .mux import MuxShardPool, QueryChannel
from .standing import StandingQuery


def _standing_entry(handle) -> dict:
    """JSON-serialisable record of one standing-query registration.

    Structural (labels/edges/edge_labels) rather than native-text so
    edge-labelled queries round-trip faithfully; labels keep their
    int-vs-str type through JSON.
    """
    query = handle.query
    return {
        "labels": list(query.labels),
        "edges": [sorted(edge) for edge in query.edges],
        "edge_labels": (
            [query.edge_label(e) for e in range(query.num_edges)]
            if query.is_edge_labelled else None
        ),
        "order": None if handle.order is None else list(handle.order),
    }


def _standing_query_from_entry(entry: dict):
    """Rebuild the (query, order) pair of one persisted registration."""
    try:
        query = Hypergraph(
            entry["labels"],
            entry["edges"],
            edge_labels=entry.get("edge_labels"),
        )
        order = entry.get("order")
        return query, None if order is None else tuple(order)
    except (KeyError, TypeError) as exc:
        raise SchedulerError(
            f"malformed persisted standing-query entry: {exc!r}"
        ) from None


def graph_fingerprint(graph) -> Tuple[int, int, int]:
    """A stable fingerprint of a data graph's exact content.

    Extends the identity fields the ``ShardDescriptor`` handshake
    already pins (edge/vertex counts) with a CRC over the canonical
    native serialisation, the same checksum family
    ``range_table_label`` uses for placement fingerprints — equal
    graphs fingerprint equal across processes and sessions.
    """
    buffer = io.StringIO()
    dump_native(graph, buffer)
    return (
        zlib.crc32(buffer.getvalue().encode("utf-8")),
        graph.num_edges,
        graph.num_vertices,
    )


def query_fingerprint(
    query, order: "Sequence[int] | None" = None
) -> Tuple[int, int, int, "Tuple[int, ...] | None"]:
    """Fingerprint of a query (and any pinned matching order)."""
    crc, edges, vertices = graph_fingerprint(query)
    return (crc, edges, vertices, None if order is None else tuple(order))


class MatchTicket:
    """A handle on one submitted query.

    ``cached`` tickets are born finished (the result came straight out
    of the service's LRU); live tickets resolve when their worker
    thread completes, and :meth:`cancel` aborts them — before they
    start (the slot is returned immediately) or mid-flight (the query
    raises :class:`~repro.errors.QueryCancelled` at its next barrier or
    gather poll, and the workers are CANCELled remotely).
    """

    def __init__(self, future=None, cancel_event=None, result=None,
                 on_abandoned=None) -> None:
        self._future = future
        self._cancel_event = cancel_event
        self._result = result
        self._on_abandoned = on_abandoned
        self.cached = future is None

    def result(self, timeout: "float | None" = None):
        """The query's :class:`~repro.parallel.executor.ParallelResult`.

        Re-raises whatever ended the query: ``QueryCancelled``,
        ``TimeoutExceeded``, or the shard failure that killed it.
        """
        if self._future is None:
            return self._result
        try:
            return self._future.result(timeout)
        except CancelledError:
            raise QueryCancelled(
                "query cancelled before it started"
            ) from None

    def done(self) -> bool:
        return self._future is None or self._future.done()

    def cancel(self) -> None:
        if self._cancel_event is not None:
            self._cancel_event.set()
        if self._future is not None and self._future.cancel():
            # Never started: no worker ever saw it, but the admission
            # slot must be returned here (the run body won't run).
            if self._on_abandoned is not None:
                callback, self._on_abandoned = self._on_abandoned, None
                callback()


class MatchService:
    """An always-on, multiplexing match service over one shared pool."""

    def __init__(
        self,
        engine,
        shards: int = 2,
        addresses=None,
        max_concurrent: int = 4,
        queue_depth: int = 8,
        cache_capacity: int = 128,
        default_deadline: "float | None" = None,
        retry_after: float = 0.25,
        io_timeout: "float | None" = None,
        start_method: "str | None" = None,
        chaos=None,
        journal: "MutationJournal | str | None" = None,
    ) -> None:
        if queue_depth < 1:
            raise SchedulerError("queue_depth must be >= 1")
        if max_concurrent < 1:
            raise SchedulerError("max_concurrent must be >= 1")
        self._engine = engine
        # Durability seam: every committed batch is journalled inside
        # the mutation barrier, before any broadcast, so a coordinator
        # crash replays it on restart instead of losing a commit the
        # workers may already hold.
        if isinstance(journal, str):
            journal = MutationJournal(journal)
        self.journal = journal
        if journal is not None:
            journal.attach(engine.data)
        self.num_shards = shards if addresses is None else len(addresses)
        self.queue_depth = queue_depth
        self.max_concurrent = max_concurrent
        self.default_deadline = default_deadline
        self.retry_after = retry_after
        self.pool = MuxShardPool(
            num_shards=shards,
            addresses=addresses,
            index_backend=engine.index_backend,
            sharding=engine.sharding,
            io_timeout=io_timeout,
            start_method=start_method,
            chaos=chaos,
        )
        self._lock = threading.Lock()
        self._admitted = 0
        self._draining = False
        self._closed = False
        self._workers = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="match-service"
        )
        self._tickets: "list" = []
        self._cache: "OrderedDict" = OrderedDict()
        self._cache_capacity = cache_capacity
        self._graph_fp = None
        self.cache_hits = 0
        self.cache_misses = 0
        #: True while a mutation barrier holds the service: submissions
        #: get BUSY, the barrier waits for in-flight queries to drain.
        self._mutating = False
        self._standing: "dict" = {}
        self._standing_ids = 0
        # Adopt the engine: ``engine.apply_mutations`` must route every
        # commit through this service's barrier, or the result cache
        # and standing queries silently go stale.  First service wins
        # (``engine.match_service()`` sets the slot itself); drain()
        # releases it.
        if getattr(engine, "_match_service", None) is None:
            engine._match_service = self

    # -- submission ------------------------------------------------------

    def _graph_key(self):
        if self._graph_fp is None:
            self._graph_fp = graph_fingerprint(self._engine.data)
        return self._graph_fp

    def submit(
        self,
        query,
        order: "Sequence[int] | None" = None,
        deadline: "float | None" = None,
    ) -> MatchTicket:
        """Admit one query; returns a :class:`MatchTicket`.

        Raises :class:`~repro.errors.ServiceBusy` when the admission
        backlog is at ``queue_depth`` (or the service is draining) —
        the caller retries after ``retry_after`` seconds, nothing ever
        queues unboundedly or hangs.  Cache hits bypass admission *and*
        the pool entirely.
        """
        with self._lock:
            if self._closed:
                raise SchedulerError("match service is closed")
            if self._mutating:
                raise ServiceBusy(self.queue_depth, self.retry_after)
            # Key inside the lock, after the mutation gate: a mutation
            # barrier between the fingerprint and the lookup must not
            # serve a result cached for a graph that no longer exists.
            key = (self._graph_key(), query_fingerprint(query, order))
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                return MatchTicket(result=cached)
            if self._draining:
                raise ServiceBusy(self.queue_depth, self.retry_after)
            if self._admitted >= self.queue_depth:
                raise ServiceBusy(self.queue_depth, self.retry_after)
            self._admitted += 1
            self.cache_misses += 1
        budget = self.default_deadline if deadline is None else deadline
        cancel_event = threading.Event()
        future = self._workers.submit(
            self._run, query, order, budget, cancel_event, key
        )
        ticket = MatchTicket(
            future, cancel_event, on_abandoned=self._release_slot
        )
        with self._lock:
            self._tickets = [
                live for live in self._tickets if not live.done()
            ]
            self._tickets.append(ticket)
        return ticket

    def match(
        self,
        query,
        order: "Sequence[int] | None" = None,
        deadline: "float | None" = None,
    ):
        """Submit and wait: the blocking convenience wrapper."""
        return self.submit(query, order=order, deadline=deadline).result()

    def _release_slot(self) -> None:
        with self._lock:
            self._admitted -= 1

    def _run(self, query, order, budget, cancel_event, key):
        channel = QueryChannel(
            self.pool, budget=budget, cancel_event=cancel_event
        )
        completed = False
        try:
            result = run_level_synchronous(
                channel,
                self._engine,
                query,
                order,
                time_budget=budget,
                cancelled=cancel_event.is_set,
            )
            completed = True
            with self._lock:
                self._cache[key] = result
                self._cache.move_to_end(key)
                while len(self._cache) > self._cache_capacity:
                    self._cache.popitem(last=False)
            return result
        finally:
            # Completed queries already dropped their worker sessions
            # with the final reply; every other exit broadcasts CANCEL
            # here so nothing is orphaned.  release() is idempotent —
            # the channel's own failure paths may have run it already.
            self.pool.release(channel.query_id, completed=completed)
            self._release_slot()

    # -- mutation --------------------------------------------------------

    def apply_mutations(self, batch, drain_timeout: float = 30.0):
        """Commit one mutation batch under a whole-service barrier.

        The sequence is: flag the barrier (new submissions get BUSY),
        wait for admitted queries to drain, apply the batch to the
        engine's graph and store, propagate the same batch to every
        live executor pool — the engine's own process/socket pools and
        this service's multiplexing pool — invalidate the result-cache
        fingerprint, then commit every standing query and emit its
        delta.  Returns the :class:`~repro.hypergraph.dynamic
        .MutationResult`.

        Cached results for the old graph are *not* purged: the cache is
        keyed by graph fingerprint, so they can never be served again —
        they simply age out of the LRU.
        """
        with self._lock:
            if self._closed:
                raise SchedulerError("match service is closed")
            if self._draining:
                raise ServiceBusy(self.queue_depth, self.retry_after)
            if self._mutating:
                raise SchedulerError(
                    "a mutation batch is already being committed"
                )
            self._mutating = True
        try:
            deadline = time.monotonic() + drain_timeout
            while True:
                with self._lock:
                    if self._admitted == 0:
                        break
                    admitted = self._admitted
                if time.monotonic() >= deadline:
                    raise SchedulerError(
                        f"{admitted} queries still in flight after "
                        f"{drain_timeout}s; mutation barrier abandoned"
                    )
                time.sleep(0.01)
            engine = self._engine
            result = engine._apply_local(batch)
            if self.journal is not None:
                # Durability point: the batch hits the fsynced log
                # *before* any worker sees it, so restart-from-journal
                # can only be ahead of (never behind) the pool.
                self.journal.append(result.version, batch)
            if engine._shard_executor is not None:
                engine._shard_executor.mutate(engine, batch, result)
            if engine._net_executor is not None:
                engine._net_executor.mutate(engine, batch, result)
            self.pool.mutate(engine, batch, result)
            with self._lock:
                self._graph_fp = None
                standing = list(self._standing.values())
            for query in standing:
                query.commit(engine, result)
            if self.journal is not None:
                self.journal.maybe_snapshot(engine.data)
            return result
        finally:
            with self._lock:
                self._mutating = False

    # -- standing queries ------------------------------------------------

    def register_standing(
        self,
        query,
        order: "Sequence[int] | None" = None,
        callback=None,
    ) -> StandingQuery:
        """Register ``query`` as a standing query; returns its handle.

        Seeds the handle's match set with a full (sequential)
        enumeration of the current graph, then every committed mutation
        batch updates it and emits a :class:`~repro.service.standing
        .MatchDelta`.  Refused while a mutation barrier is active (the
        seed would race the commit).
        """
        with self._lock:
            if self._closed:
                raise SchedulerError("match service is closed")
            if self._mutating:
                raise ServiceBusy(self.queue_depth, self.retry_after)
            self._standing_ids += 1
            handle = StandingQuery(
                self._standing_ids, query, order=order, callback=callback
            )
            engine = self._engine
            version = getattr(engine.data, "version", 0)
        handle.seed(engine, version)
        with self._lock:
            if self._mutating:
                # A barrier slipped in while we enumerated: the seed
                # may straddle the commit.  Refuse rather than guess.
                raise ServiceBusy(self.queue_depth, self.retry_after)
            self._standing[handle.query_id] = handle
        self._persist_standing()
        return handle

    def unregister_standing(self, handle) -> None:
        """Remove a standing query; its event stream ends after a final
        drain (idempotent)."""
        query_id = getattr(handle, "query_id", handle)
        with self._lock:
            registered = self._standing.pop(query_id, None)
        if registered is not None:
            registered.close()
            self._persist_standing()

    def _persist_standing(self) -> None:
        """Mirror the live registrations into the journal directory.

        Called on every register/unregister (and once more on drain) so
        a restarted daemon can re-register the same standing queries
        against the recovered graph.  No-op without a journal.
        """
        if self.journal is None:
            return
        with self._lock:
            entries = [
                _standing_entry(handle)
                for handle in self._standing.values()
            ]
        self.journal.save_standing(entries)

    def restore_standing(self, callback=None) -> int:
        """Re-register the standing queries persisted alongside the
        journal; returns how many were restored.

        Each restored query is seeded by a fresh full enumeration of
        the *recovered* graph — its next delta therefore continues from
        the recovered version, exactly as if the registration had
        survived the restart.  ``callback`` applies to every restored
        handle (the daemon re-attaches its event fan-out here).
        """
        if self.journal is None:
            return 0
        restored = 0
        for entry in self.journal.load_standing():
            query, order = _standing_query_from_entry(entry)
            self.register_standing(query, order=order, callback=callback)
            restored += 1
        return restored

    @property
    def standing_queries(self) -> int:
        with self._lock:
            return len(self._standing)

    # -- lifecycle -------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._admitted

    def drain(self, timeout: float = 10.0) -> None:
        """Stop admitting, finish (or cancel) in-flight work, close.

        The SIGTERM path: new submissions get BUSY immediately,
        in-flight queries get ``timeout`` seconds to finish, stragglers
        are cancelled (remote CANCEL included), the journal is flushed
        and fsynced with the standing registrations persisted beside
        it (a restarted daemon recovers both), then the pool and its
        cluster shut down.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._draining = True
            pending = list(self._tickets)
        deadline = time.monotonic() + timeout
        for ticket in pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                ticket.cancel()
                continue
            try:
                ticket.result(timeout=remaining)
            except FutureTimeoutError:
                ticket.cancel()
            except Exception:
                pass  # the query's own failure; drain marches on
        self._workers.shutdown(wait=True)
        # Persist the registrations *before* clearing them, then seal
        # the journal: flush, fsync, close — the durable state a
        # restarted daemon resumes from.
        self._persist_standing()
        with self._lock:
            self._closed = True
            standing = list(self._standing.values())
            self._standing.clear()
        for handle in standing:
            handle.close()
        if self.journal is not None:
            self.journal.close()
        # Release the engine: later mutations fall back to the
        # engine-local path instead of hitting a closed service.
        if getattr(self._engine, "_match_service", None) is self:
            self._engine._match_service = None
        self.pool.close()

    def close(self, timeout: float = 10.0) -> None:
        self.drain(timeout=timeout)

    def __enter__(self) -> "MatchService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
