"""The multiplexing shard pool: many queries, one set of connections.

:class:`~repro.parallel.net_executor.NetShardExecutor` owns its pool
for the duration of exactly one job — broadcast, gather, done.  The
match service needs the opposite shape: a pool that stays connected
across thousands of queries and carries many of them *at once*.  This
module provides it in two pieces:

:class:`MuxShardPool`
    One TCP connection per shard worker (replication is the elastic
    executor's job; the service multiplexes instead).  All outbound
    frames are the §2.8 query-tagged kinds, so one worker session holds
    a per-query state dict instead of a single job.  A pump thread owns
    the receive direction of every connection and routes each
    QREPLY/QERROR to its query's queue by the ``query_id`` tag.  A
    connection that fails — severed, garbled, worker restarted — is
    recovered in place: reconnect, re-validate the handshake through
    the same :func:`~repro.parallel.net_executor.validate_handshake`
    gate the single-job executor uses, replay every registered query's
    QJOB and re-dispatch the levels still owed to that shard.  Replay
    resets the worker's per-query state, which is safe for exactness:
    level replies are pure functions of ``(plan, frontier, shard)``, so
    only counter accounting can split — the same documented property as
    the replicated executor's failover.

:class:`QueryChannel`
    The per-query executor facade.  It implements the exact plug-in
    surface :func:`~repro.parallel.level_sync.run_level_synchronous`
    expects (``num_shards`` / ``_ensure_pool`` / ``_broadcast`` /
    ``_gather`` / ``_gather_iter``), so the unchanged coordinator loop
    runs per query thread and the interleaving of levels from different
    queries between barriers falls out of the pool's multiplexing —
    which is what makes multiplexed counts bit-identical to solo runs.

Reply/request alignment uses the same FIFO-token idea as the
replicated executor: each QLEVEL/QCOLLECT dispatched to a member
pushes the query's barrier token onto that member's per-query deque,
and the pump pops one token per QREPLY — so a duplicate reply created
by a recovery re-dispatch is recognised by its stale token and
discarded instead of contaminating the next barrier.
"""

from __future__ import annotations

import itertools
import pickle
import select
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import queue

from ..core.candidates import decode_versioned
from ..errors import (
    QueryCancelled,
    SchedulerError,
    TimeoutExceeded,
    TransportError,
)
from ..hypergraph.sharding import resolve_sharding
from ..hypergraph.storage import resolve_index_backend
from ..parallel import transport
from ..parallel.net_executor import (
    CONNECT_TIMEOUT,
    _disable_nagle,
    default_io_timeout,
    spawn_local_cluster,
    validate_handshake,
)
from ..parallel.tasks import default_seed

#: How often a waiting gather re-checks its cancellation flag — the
#: latency bound on noticing a client cancel mid-level.
_CANCEL_POLL = 0.05


class _QueryState:
    """Coordinator-side state of one in-flight multiplexed query."""

    __slots__ = (
        "query_id", "replies", "job_body", "level_kind", "level_body",
        "pending", "dispatched_at", "token", "last_broadcast",
        "started", "budget", "deadline", "cancelled",
    )

    def __init__(self, query_id: int, budget: "float | None",
                 cancelled: "threading.Event | None") -> None:
        self.query_id = query_id
        #: Routed arrivals: ("reply", shard, body, token),
        #: ("error", shard, text) or ("lost", shard, reason).
        self.replies: "queue.Queue" = queue.Queue()
        self.job_body: "bytes | None" = None
        self.level_kind: "int | None" = None
        self.level_body: "bytes | None" = None
        #: Shards still owing a reply for the current barrier — what a
        #: member recovery consults to know which levels to re-dispatch.
        self.pending: set = set()
        self.dispatched_at: "float | None" = None
        #: Barrier token; bumped per level/collect broadcast.  Replies
        #: carry the token they answer, so stale duplicates are inert.
        self.token = 0
        self.last_broadcast: "str | None" = None
        self.started = time.monotonic()
        self.budget = budget
        self.deadline = None if budget is None else self.started + budget
        self.cancelled = (
            threading.Event() if cancelled is None else cancelled
        )


class _MuxMember:
    """One shard worker's connection in the multiplexing pool."""

    __slots__ = ("shard_id", "address", "sock", "tokens")

    def __init__(self, shard_id: int, address: Tuple[str, int],
                 sock) -> None:
        self.shard_id = shard_id
        self.address = address
        self.sock = sock
        #: query id → FIFO of barrier tokens awaiting replies on this
        #: connection (the worker answers strictly in request order).
        self.tokens: "Dict[int, deque]" = {}


class MuxShardPool:
    """A long-lived, query-multiplexing pool of shard connections.

    Construct with either ``num_shards`` (a loopback cluster is spawned
    on first :meth:`ensure_open`) or explicit worker ``addresses``;
    exactly one connection per shard — the pool's robustness story is
    reconnect-and-replay, not replication.
    """

    def __init__(
        self,
        num_shards: "int | None" = None,
        addresses: "Sequence[Tuple[str, int]] | None" = None,
        index_backend: "str | None" = None,
        sharding: "str | None" = None,
        seed: "int | None" = None,
        start_method: "str | None" = None,
        connect_timeout: float = CONNECT_TIMEOUT,
        io_timeout: "float | None" = None,
        chaos=None,
    ) -> None:
        if addresses is not None:
            addresses = [tuple(address) for address in addresses]
            if num_shards is not None and num_shards != len(addresses):
                raise SchedulerError(
                    f"num_shards={num_shards} contradicts "
                    f"{len(addresses)} worker addresses"
                )
            num_shards = len(addresses)
        if num_shards is None:
            raise SchedulerError(
                "MuxShardPool needs worker addresses or num_shards"
            )
        if num_shards < 1:
            raise SchedulerError("num_shards must be >= 1")
        self.addresses = addresses
        self.num_shards = num_shards
        self.index_backend = resolve_index_backend(index_backend)
        self.sharding = resolve_sharding(sharding)
        self.seed = default_seed() if seed is None else seed
        self.start_method = start_method
        self.connect_timeout = connect_timeout
        self.io_timeout = (
            default_io_timeout() if io_timeout is None else io_timeout
        )
        self.chaos = chaos
        #: Outbound frames dispatched to workers — the counter the
        #: cache-bypass gate watches (a cache hit must not move it).
        self.dispatched_frames = 0
        self._lock = threading.RLock()
        self._members: "List[_MuxMember]" = []
        self._queries: "Dict[int, _QueryState]" = {}
        #: DELTA acks from a MUTATE broadcast, delivered by the pump
        #: thread.  Pool-level, not per-query: mutation is a barrier
        #: over the whole pool (no queries in flight).
        self._mutation_acks: "queue.Queue" = queue.Queue()
        self._graph = None
        self._cluster = None
        self._pump: "threading.Thread | None" = None
        self._pump_stop = threading.Event()
        self._ids = itertools.count(1)

    # -- lifecycle -------------------------------------------------------

    def next_query_id(self) -> int:
        return next(self._ids)

    def ensure_open(self, engine) -> None:
        """Open (or reuse) the pool for ``engine``'s data graph."""
        if engine.index_backend != self.index_backend:
            raise SchedulerError(
                f"engine backend {engine.index_backend!r} does not match "
                f"pool backend {self.index_backend!r}"
            )
        with self._lock:
            if self._graph is engine.data and self._members:
                return
            if self._queries:
                raise SchedulerError(
                    "cannot rebuild the pool for a different graph with "
                    f"{len(self._queries)} queries in flight"
                )
            self._teardown_locked()
            if self.addresses is None:
                self._cluster = spawn_local_cluster(
                    engine.data,
                    self.num_shards,
                    self.index_backend,
                    seed=self.seed,
                    start_method=self.start_method,
                    sharding=self.sharding,
                    chaos=self.chaos,
                )
                addresses = self._cluster.addresses
            else:
                addresses = self.addresses
            slots: "List[Optional[_MuxMember]]" = [None] * self.num_shards
            try:
                for address in addresses:
                    sock, descriptor = self._open_connection(
                        address, engine.data
                    )
                    if slots[descriptor.shard_id] is not None:
                        sock.close()
                        raise SchedulerError(
                            f"two workers both announced shard id "
                            f"{descriptor.shard_id}"
                        )
                    slots[descriptor.shard_id] = _MuxMember(
                        descriptor.shard_id, tuple(address), sock
                    )
            except BaseException:
                for member in slots:
                    if member is not None:
                        self._close_sock(member.sock)
                raise
            self._members = slots  # type: ignore[assignment]
            self._graph = engine.data
            self._pump_stop.clear()
            self._pump = threading.Thread(
                target=self._pump_loop, name="mux-pool-pump", daemon=True
            )
            self._pump.start()

    def _open_connection(self, address, graph):
        """Connect + handshake one worker; returns ``(sock, descriptor)``."""
        import socket as socket_module

        raw = socket_module.create_connection(
            tuple(address), timeout=self.connect_timeout
        )
        _disable_nagle(raw)
        sock = raw
        if self.chaos is not None:
            sock = self.chaos.wrap(raw, "coordinator")
        try:
            descriptor = validate_handshake(
                sock,
                graph,
                index_backend=self.index_backend,
                num_shards=self.num_shards,
                num_replicas=1,
                seed=self.seed,
                sharding_label=self.sharding,
            )
        except BaseException:
            self._close_sock(sock)
            raise
        sock.settimeout(self.io_timeout)
        if self.chaos is not None:
            sock.bind_endpoint(descriptor.shard_id, descriptor.replica_id)
        return sock, descriptor

    @staticmethod
    def _close_sock(sock) -> None:
        try:
            sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def _teardown_locked(self) -> None:
        self._pump_stop.set()
        for member in self._members:
            if member.sock is not None:
                try:
                    transport.send_frame(member.sock, transport.MSG_STOP)
                except (TransportError, OSError):
                    pass
                self._close_sock(member.sock)
                member.sock = None
        self._members = []
        self._graph = None
        if self._cluster is not None:
            cluster, self._cluster = self._cluster, None
            cluster.close()

    def close(self) -> None:
        """Stop the pump, end the sessions, stop any owned cluster.

        Idempotent — safe on a pool that never opened, was torn down by
        a failed open, or was already closed.
        """
        with self._lock:
            self._teardown_locked()
        pump, self._pump = self._pump, None
        if pump is not None and pump is not threading.current_thread():
            pump.join(timeout=5.0)

    def __enter__(self) -> "MuxShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- query registration and sends -----------------------------------

    def start_query(self, state: _QueryState) -> None:
        with self._lock:
            self._queries[state.query_id] = state

    def release(self, query_id: int, completed: bool) -> None:
        """Unregister a query; CANCEL it remotely unless it completed.

        Idempotent.  The CANCEL broadcast is what guarantees no worker
        keeps orphaned session state: a completed query's sessions were
        already dropped by the final reply / QCOLLECT, every other exit
        (deadline, client cancel, per-query error, drain) goes through
        here.
        """
        with self._lock:
            state = self._queries.pop(query_id, None)
            if state is None:
                return
            if completed:
                return
            body = transport.encode_query_body(query_id, b"")
            frame = transport.encode_frame(transport.MSG_CANCEL, body)
            for member in self._members:
                if member.sock is None:
                    continue
                member.tokens.pop(query_id, None)
                try:
                    member.sock.sendall(frame)
                except (TransportError, OSError):
                    # The connection is broken: its next use recovers
                    # it, and the reconnect drops the worker's whole
                    # session dict anyway — nothing is orphaned.
                    pass

    def send_all(self, query_id: int, kind: int, body: bytes) -> None:
        """Dispatch one query-tagged frame to every shard.

        A send that fails triggers an in-place member recovery; the
        recovery's replay covers the very frame being sent (the
        caller's query state is updated *before* the send), so there is
        no resend here.  A member that cannot be recovered fails fast:
        every registered query is handed a ``lost`` sentinel.
        """
        frame = transport.encode_frame(kind, body)
        expects_reply = kind in (
            transport.MSG_QLEVEL, transport.MSG_QCOLLECT
        )
        with self._lock:
            state = self._queries.get(query_id)
            for member in self._members:
                if member.sock is None:
                    # A dead member: recovery's replay covers this very
                    # frame (the caller updated the query state before
                    # calling), so recover and move on.
                    self._recover_locked(member, None)
                    continue
                sock = member.sock
                try:
                    sock.sendall(frame)
                except (TransportError, OSError) as exc:
                    # Recovery replays the job and the current level to
                    # the fresh connection — including this frame.
                    self._recover_locked(member, sock, exc)
                    continue
                if expects_reply and state is not None:
                    member.tokens.setdefault(
                        query_id, deque()
                    ).append(state.token)
                self.dispatched_frames += 1

    # -- mutation --------------------------------------------------------

    def mutate(self, engine, batch, result) -> int:
        """Broadcast a committed mutation to every pooled worker.

        Called *after* the coordinator applied ``batch`` locally
        (``result`` is the :class:`~repro.hypergraph.dynamic
        .MutationResult`), and only with zero queries in flight — the
        service drains admissions first, so a mutation is a whole-pool
        barrier rather than something interleaved with levels.  Each
        worker replays the batch against its own shard and answers a
        DELTA ack echoing the new graph version and totals; any dead
        member, wrong ack, or timeout closes the pool and raises —
        there is no replica to degrade onto mid-broadcast.  A worker
        that reconnects afterwards rebuilds from its spawn-time graph
        and announces a stale version, which the handshake gate
        repairs by streaming the missed batches (CATCHUP, §2.10)
        before re-admitting it.

        Returns the number of workers that acknowledged (0 when the
        pool was never opened — nothing to keep in sync).
        """
        failure: "str | None" = None
        with self._lock:
            if not self._members or self._graph is None:
                return 0
            if self._queries:
                raise SchedulerError(
                    f"cannot mutate with {len(self._queries)} queries "
                    "in flight"
                )
            while True:  # drop stale acks from an aborted mutation
                try:
                    self._mutation_acks.get_nowait()
                except queue.Empty:
                    break
            frame = transport.encode_frame(
                transport.MSG_MUTATE,
                pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL),
            )
            for member in self._members:
                if member.sock is None:
                    failure = (
                        f"shard worker {member.shard_id} is down and "
                        "would miss this mutation; recover() will "
                        "catch it up at the next handshake"
                    )
                    break
                try:
                    member.sock.sendall(frame)
                except (TransportError, OSError) as exc:
                    failure = (
                        f"MUTATE send to shard {member.shard_id} "
                        f"failed: {exc}"
                    )
                    break
                self.dispatched_frames += 1
        if failure is not None:
            # Close outside the lock so the pump thread can drain and
            # join promptly instead of timing out against our lock.
            self.close()
            raise SchedulerError(failure)
        # Wait for acks without the lock: the pump thread delivers them.
        expected = {
            "graph_version": result.version,
            "graph_edges": engine.data.num_edges,
            "graph_vertices": engine.data.num_vertices,
        }
        deadline = time.monotonic() + self.io_timeout
        acked: set = set()
        while len(acked) < self.num_shards:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                missing = sorted(set(range(self.num_shards)) - acked)
                self.close()
                raise SchedulerError(
                    f"shard worker(s) {missing} did not acknowledge the "
                    f"mutation within the {self.io_timeout}s I/O timeout"
                )
            try:
                shard_id, body = self._mutation_acks.get(
                    timeout=min(_CANCEL_POLL, remaining)
                )
            except queue.Empty:
                continue
            try:
                ack = pickle.loads(body)
            except Exception as exc:
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} sent an undecodable "
                    f"mutation ack: {exc}"
                ) from None
            if ack != expected:
                self.close()
                raise SchedulerError(
                    f"shard worker {shard_id} diverged after mutation: "
                    f"acked {ack!r}, expected {expected!r}"
                )
            acked.add(shard_id)
        with self._lock:
            # Identity refresh: promotion swapped engine.data for the
            # DynamicHypergraph; the workers mirror it now, so the next
            # ensure_open must not rebuild the pool.
            self._graph = engine.data
        return self.num_shards

    # -- receive pump ----------------------------------------------------

    def _pump_loop(self) -> None:
        while not self._pump_stop.is_set():
            with self._lock:
                live = [
                    (member, member.sock)
                    for member in self._members
                    if member.sock is not None
                ]
            if not live:
                if self._pump_stop.wait(_CANCEL_POLL):
                    return
                continue
            try:
                readable, _, _ = select.select(
                    [sock for _, sock in live], [], [], _CANCEL_POLL
                )
            except (OSError, ValueError):
                # A socket died (or was closed by a teardown) between
                # the snapshot and the select; re-snapshot.
                continue
            for member, sock in live:
                if sock not in readable:
                    continue
                try:
                    kind, body = transport.recv_frame(sock)
                except (TransportError, OSError) as exc:
                    with self._lock:
                        self._recover_locked(member, sock, exc)
                    continue
                self._route(member, sock, kind, body)

    def _route(self, member: _MuxMember, sock, kind: int,
               body: bytes) -> None:
        """Deliver one inbound frame to its query's queue."""
        if kind == transport.MSG_DELTA:
            # A mutation ack: pool-level, untagged (mutations are a
            # whole-pool barrier, never interleaved with queries).
            self._mutation_acks.put((member.shard_id, body))
            return
        if kind not in (transport.MSG_QREPLY, transport.MSG_QERROR):
            with self._lock:
                self._recover_locked(
                    member, sock,
                    TransportError(
                        f"unexpected frame kind {kind:#x} from shard "
                        f"{member.shard_id}"
                    ),
                )
            return
        try:
            query_id, rest = transport.split_query_body(body)
        except TransportError as exc:
            with self._lock:
                self._recover_locked(member, sock, exc)
            return
        with self._lock:
            state = self._queries.get(query_id)
            if kind == transport.MSG_QERROR:
                # Errors replace replies out of band; token alignment
                # is moot — the query is failing regardless.
                member.tokens.pop(query_id, None)
                if state is not None:
                    state.replies.put(
                        ("error", member.shard_id, pickle.loads(rest))
                    )
                return
            tokens = member.tokens.get(query_id)
            token = tokens.popleft() if tokens else None
        if state is None or token is None:
            return  # a cancelled/finished query's straggler: drop it
        state.replies.put(("reply", member.shard_id, rest, token))

    # -- recovery --------------------------------------------------------

    def _recover_locked(self, member: _MuxMember, failed_sock,
                        exc=None) -> bool:
        """Reconnect ``member`` in place and replay its owed work.

        Caller holds the pool lock.  ``failed_sock`` is the socket the
        caller saw fail (None to force); if the member has already been
        recovered past it, this is a no-op.  Returns True when the
        member is live again; on failure the member is marked dead and
        every registered query receives a ``lost`` sentinel — the
        fail-fast half of "fails over or fails fast".
        """
        if failed_sock is not None and member.sock is not failed_sock:
            return member.sock is not None
        if member.sock is not None:
            self._close_sock(member.sock)
            member.sock = None
        member.tokens = {}
        if self._graph is None:
            return False
        try:
            sock, descriptor = self._open_connection(
                member.address, self._graph
            )
            if descriptor.shard_id != member.shard_id:
                self._close_sock(sock)
                raise SchedulerError(
                    f"reconnected worker announced shard "
                    f"{descriptor.shard_id}, expected {member.shard_id}"
                )
            member.sock = sock
            for state in self._queries.values():
                if state.job_body is not None:
                    sock.sendall(transport.encode_frame(
                        transport.MSG_QJOB, state.job_body
                    ))
                    self.dispatched_frames += 1
                if (
                    state.level_body is not None
                    and member.shard_id in state.pending
                ):
                    sock.sendall(transport.encode_frame(
                        state.level_kind, state.level_body
                    ))
                    member.tokens.setdefault(
                        state.query_id, deque()
                    ).append(state.token)
                    self.dispatched_frames += 1
            return True
        except (SchedulerError, TransportError, OSError) as recover_exc:
            if member.sock is not None:
                self._close_sock(member.sock)
                member.sock = None
            member.tokens = {}
            reason = str(exc if exc is not None else recover_exc)
            for state in self._queries.values():
                state.replies.put(("lost", member.shard_id, reason))
            return False


class QueryChannel:
    """One query's executor facade over a :class:`MuxShardPool`.

    Implements the level-synchronous plug-in surface, so
    :func:`~repro.parallel.level_sync.run_level_synchronous` executes
    unchanged per query thread; many channels share one pool, and the
    pool's multiplexing interleaves their levels between barriers.
    """

    def __init__(
        self,
        pool: MuxShardPool,
        query_id: "int | None" = None,
        budget: "float | None" = None,
        cancel_event: "threading.Event | None" = None,
    ) -> None:
        self._pool = pool
        self.query_id = (
            pool.next_query_id() if query_id is None else query_id
        )
        self.num_shards = pool.num_shards
        self._state = _QueryState(self.query_id, budget, cancel_event)

    # -- executor surface ------------------------------------------------

    def _ensure_pool(self, engine) -> None:
        self._pool.ensure_open(engine)

    def _broadcast(self, message) -> None:
        state = self._state
        tag = message[0]
        if tag == "job":
            # The version stamp lets the worker refuse a query that
            # assumes a graph it has not been mutated to yet (§2.9).
            payload = pickle.dumps(
                (
                    message[1],
                    message[2],
                    getattr(self._pool._graph, "version", 0),
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            state.job_body = transport.encode_query_body(
                self.query_id, payload
            )
            self._pool.start_query(state)
            self._pool.send_all(
                self.query_id, transport.MSG_QJOB, state.job_body
            )
            return
        if tag == "level":
            payload = pickle.dumps(
                (message[1], message[2]),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            kind = transport.MSG_QLEVEL
            body = transport.encode_query_body(self.query_id, payload)
        elif tag == "collect":
            kind = transport.MSG_QCOLLECT
            body = transport.encode_query_body(self.query_id, b"")
        else:
            raise SchedulerError(f"unknown broadcast {tag!r}")
        # State first, send second: a send-path recovery replays from
        # exactly this state, so the frame being sent is never lost.
        state.token += 1
        state.last_broadcast = tag
        state.level_kind = kind
        state.level_body = body
        state.pending = set(range(self.num_shards))
        state.dispatched_at = time.monotonic()
        self._pool.send_all(self.query_id, kind, body)

    def _gather_iter(self):
        """Replies for the current barrier, as-completed.

        Enforces, in priority order: cancellation (prompt — polled at
        :data:`_CANCEL_POLL`), the query deadline, and the pool's
        per-barrier I/O timeout.  Every failure exit releases the query
        (remote CANCEL) first, so no worker session state outlives it.
        """
        state = self._state
        seen: set = set()
        while len(seen) < self.num_shards:
            if state.cancelled.is_set():
                self._fail()
                raise QueryCancelled(
                    f"query {self.query_id} cancelled mid-level"
                )
            now = time.monotonic()
            wait_until = state.dispatched_at + self._pool.io_timeout
            if state.deadline is not None:
                wait_until = min(wait_until, state.deadline)
            if now >= wait_until:
                self._fail()
                if state.deadline is not None and now >= state.deadline:
                    raise TimeoutExceeded(
                        now - state.started, state.budget
                    )
                missing = sorted(
                    set(range(self.num_shards)) - seen
                )
                raise SchedulerError(
                    f"shard worker(s) {missing} did not answer query "
                    f"{self.query_id} within the {self._pool.io_timeout}s "
                    f"I/O timeout"
                )
            try:
                item = state.replies.get(
                    timeout=min(_CANCEL_POLL, wait_until - now)
                )
            except queue.Empty:
                continue
            tag = item[0]
            if tag == "reply":
                _, shard_id, body, token = item
                if token != state.token or shard_id in seen:
                    continue  # stale barrier or recovered duplicate
                reply = self._decode(shard_id, body)
                seen.add(shard_id)
                state.pending.discard(shard_id)
                yield shard_id, reply
            elif tag == "error":
                _, shard_id, text = item
                self._fail()
                raise SchedulerError(
                    f"query {self.query_id} failed on shard "
                    f"{shard_id}:\n{text}"
                )
            else:  # "lost"
                _, shard_id, reason = item
                self._fail()
                raise SchedulerError(
                    f"shard worker {shard_id} lost mid-query "
                    f"{self.query_id} and could not be recovered: "
                    f"{reason}"
                )

    def _gather(self):
        collected = [None] * self.num_shards
        for shard_id, reply in self._gather_iter():
            collected[shard_id] = reply
        return collected

    # -- internals -------------------------------------------------------

    def _fail(self) -> None:
        self._pool.release(self.query_id, completed=False)

    def _decode(self, shard_id: int, body: bytes):
        try:
            payloads, embeddings, accounting = (
                transport.decode_level_reply(body)
            )
            if self._state.last_broadcast == "collect":
                return pickle.loads(accounting)
            if payloads is not None:
                payloads = [
                    None if payload is None else decode_versioned(payload)
                    for payload in payloads
                ]
            reply = ("level", payloads, embeddings)
            if accounting is not None:
                reply = reply + pickle.loads(accounting)
            return reply
        except (TransportError, TypeError, ValueError,
                pickle.PickleError) as exc:
            self._fail()
            raise SchedulerError(
                f"shard worker {shard_id} sent an undecodable reply "
                f"for query {self.query_id}: {exc}"
            ) from None
