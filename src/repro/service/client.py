"""The match service's client half (``repro query``).

:class:`MatchClient` speaks the daemon's one-line-JSON protocol
synchronously: one socket per request, the query graph shipped as
native text, the reply decoded back into either a
:class:`QueryOutcome` or the matching typed error —
:class:`~repro.errors.ServiceBusy` for an admission refusal,
:class:`~repro.errors.QueryCancelled`,
:class:`~repro.errors.TimeoutExceeded` for a blown deadline, and
:class:`~repro.errors.ReproError` for everything else.  The client
holds no long-lived state, so it is safe to share across threads and
to retry after a BUSY refusal.
"""

from __future__ import annotations

import io
import json
import socket
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import (
    QueryCancelled,
    ReproError,
    ServiceBusy,
    TimeoutExceeded,
)
from ..hypergraph.io import dump_native


@dataclass
class QueryOutcome:
    """One successful answer from the match service."""

    embeddings: int
    elapsed: float
    cached: bool


@dataclass
class MutationOutcome:
    """One acknowledged ``mutate`` request."""

    version: int
    inserted: int
    deleted: int
    skipped: list
    edges: int
    vertices: int


class StandingSubscription:
    """A live ``standing`` connection streaming match deltas.

    Iterate (or :meth:`poll`) to receive one dict per committed
    mutation batch — the :meth:`~repro.service.standing.MatchDelta
    .to_json` shape: ``{"query_id", "version", "added", "removed"}``.
    Closing the subscription (or just dropping the connection) is what
    unregisters the standing query daemon-side.
    """

    def __init__(self, sock, header: dict) -> None:
        self._sock = sock
        self._file = sock.makefile("rb")
        self.query_id = header["query_id"]
        self.version = header["version"]
        self.matches = header["matches"]
        self.closed = False

    def poll(self, timeout: "float | None" = None) -> Optional[dict]:
        """Next delta dict; None on timeout or after the stream ends."""
        if self.closed:
            return None
        self._sock.settimeout(timeout)
        try:
            line = self._file.readline()
        except socket.timeout:
            return None
        if not line.strip():
            self.close()
            return None
        payload = json.loads(line)
        if not payload.get("ok"):
            self.close()
            raise ReproError(payload.get("error", "standing query failed"))
        if payload.get("closed"):
            self.close()
            return None
        delta = payload["delta"]
        self.version = delta["version"]
        return delta

    def __iter__(self):
        while True:
            delta = self.poll(timeout=None)
            if delta is None:
                return
            yield delta

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "StandingSubscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MatchClient:
    """Line-JSON client for a running ``serve-match`` daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: "float | None" = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def query(
        self,
        query,
        order: "Sequence[int] | None" = None,
        deadline: "float | None" = None,
    ) -> QueryOutcome:
        """Run one query remotely; raises the typed service errors."""
        buffer = io.StringIO()
        dump_native(query, buffer)
        request = {
            "query": buffer.getvalue(),
            "order": None if order is None else list(order),
            "deadline": deadline,
        }
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as sock:
                sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
                reply = self._read_line(sock)
        except OSError as exc:
            raise ReproError(
                f"match service at {self.host}:{self.port} "
                f"unreachable: {exc}"
            ) from exc
        return self._decode(reply)

    def mutate(self, batch) -> MutationOutcome:
        """Commit one :class:`~repro.hypergraph.dynamic.MutationBatch`
        remotely; raises :class:`~repro.errors.ServiceBusy` while
        queries are in flight past the barrier's patience, or
        :class:`~repro.errors.ReproError` for a rejected batch."""
        request = {"op": "mutate", "batch": batch.to_json()}
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as sock:
                sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
                reply = self._read_line(sock)
        except OSError as exc:
            raise ReproError(
                f"match service at {self.host}:{self.port} "
                f"unreachable: {exc}"
            ) from exc
        payload = self._parse(reply)
        if payload.get("ok"):
            return MutationOutcome(
                version=payload["version"],
                inserted=payload["inserted"],
                deleted=payload["deleted"],
                skipped=list(payload.get("skipped", ())),
                edges=payload["edges"],
                vertices=payload["vertices"],
            )
        self._raise(payload)

    def standing(
        self, query, order: "Sequence[int] | None" = None
    ) -> StandingSubscription:
        """Register ``query`` as a standing query; returns the live
        subscription streaming one delta per committed mutation."""
        buffer = io.StringIO()
        dump_native(query, buffer)
        request = {
            "op": "standing",
            "query": buffer.getvalue(),
            "order": None if order is None else list(order),
        }
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ReproError(
                f"match service at {self.host}:{self.port} "
                f"unreachable: {exc}"
            ) from exc
        try:
            sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
            header = self._parse(self._read_line(sock))
        except OSError as exc:
            sock.close()
            raise ReproError(
                f"match service at {self.host}:{self.port} "
                f"unreachable: {exc}"
            ) from exc
        except ReproError:
            sock.close()
            raise
        if not header.get("ok") or not header.get("standing"):
            sock.close()
            self._raise(header)
        return StandingSubscription(sock, header)

    def _read_line(self, sock) -> bytes:
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        return b"".join(chunks)

    def _parse(self, reply: bytes) -> dict:
        if not reply.strip():
            raise ReproError(
                f"match service at {self.host}:{self.port} closed the "
                "connection without answering (draining or crashed?)"
            )
        try:
            return json.loads(reply)
        except ValueError as exc:
            raise ReproError(
                f"undecodable reply from match service: {exc}"
            ) from exc

    def _raise(self, payload: dict):
        """Map a ``{"ok": false}`` reply to its typed exception."""
        if payload.get("busy"):
            raise ServiceBusy(
                payload.get("depth", 0), payload.get("retry_after", 0.0)
            )
        if payload.get("cancelled"):
            raise QueryCancelled(payload.get("error", "query cancelled"))
        if payload.get("deadline_exceeded"):
            exc = TimeoutExceeded(0.0, 0.0)
            exc.args = (payload.get("error", "query deadline exceeded"),)
            raise exc
        raise ReproError(payload.get("error", "match service error"))

    def _decode(self, reply: bytes) -> QueryOutcome:
        payload = self._parse(reply)
        if payload.get("ok"):
            return QueryOutcome(
                embeddings=payload["embeddings"],
                elapsed=payload["elapsed"],
                cached=bool(payload.get("cached")),
            )
        self._raise(payload)
