"""The match service's client half (``repro query``).

:class:`MatchClient` speaks the daemon's one-line-JSON protocol
synchronously: one socket per request, the query graph shipped as
native text, the reply decoded back into either a
:class:`QueryOutcome` or the matching typed error —
:class:`~repro.errors.ServiceBusy` for an admission refusal,
:class:`~repro.errors.QueryCancelled`,
:class:`~repro.errors.TimeoutExceeded` for a blown deadline, and
:class:`~repro.errors.ReproError` for everything else.  The client
holds no long-lived state, so it is safe to share across threads and
to retry after a BUSY refusal.
"""

from __future__ import annotations

import io
import json
import socket
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import (
    QueryCancelled,
    ReproError,
    ServiceBusy,
    TimeoutExceeded,
)
from ..hypergraph.io import dump_native


@dataclass
class QueryOutcome:
    """One successful answer from the match service."""

    embeddings: int
    elapsed: float
    cached: bool


class MatchClient:
    """Line-JSON client for a running ``serve-match`` daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: "float | None" = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def query(
        self,
        query,
        order: "Sequence[int] | None" = None,
        deadline: "float | None" = None,
    ) -> QueryOutcome:
        """Run one query remotely; raises the typed service errors."""
        buffer = io.StringIO()
        dump_native(query, buffer)
        request = {
            "query": buffer.getvalue(),
            "order": None if order is None else list(order),
            "deadline": deadline,
        }
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as sock:
                sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
                reply = self._read_line(sock)
        except OSError as exc:
            raise ReproError(
                f"match service at {self.host}:{self.port} "
                f"unreachable: {exc}"
            ) from exc
        return self._decode(reply)

    def _read_line(self, sock) -> bytes:
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        return b"".join(chunks)

    def _decode(self, reply: bytes) -> QueryOutcome:
        if not reply.strip():
            raise ReproError(
                f"match service at {self.host}:{self.port} closed the "
                "connection without answering (draining or crashed?)"
            )
        try:
            payload = json.loads(reply)
        except ValueError as exc:
            raise ReproError(
                f"undecodable reply from match service: {exc}"
            ) from exc
        if payload.get("ok"):
            return QueryOutcome(
                embeddings=payload["embeddings"],
                elapsed=payload["elapsed"],
                cached=bool(payload.get("cached")),
            )
        if payload.get("busy"):
            raise ServiceBusy(
                payload.get("depth", 0), payload.get("retry_after", 0.0)
            )
        if payload.get("cancelled"):
            raise QueryCancelled(payload.get("error", "query cancelled"))
        if payload.get("deadline_exceeded"):
            exc = TimeoutExceeded(0.0, 0.0)
            exc.args = (payload.get("error", "query deadline exceeded"),)
            raise exc
        raise ReproError(payload.get("error", "match service error"))
