"""Standing queries: exact match deltas over committed mutations.

A standing query is a registered pattern whose full match set the
service keeps current across graph mutations.  When a mutation batch
commits, the subscriber receives a :class:`MatchDelta` — the *exact*
set of embeddings that appeared and disappeared — instead of having to
re-run the query and diff.

Exactness rides on the monotonicity of the matching semantics: a
subhypergraph embedding is a conjunction of per-edge constraints, so

* an embedding dies **iff** it uses a deleted data edge — ``removed``
  is plain set algebra over the old match set, no re-enumeration;
* an embedding is born **iff** it uses at least one inserted data edge
  — ``added`` is enumerated by re-rooting the matching order at each
  query edge (the *pivot*) and restricting step 0's candidates to the
  inserted edges, so the search explores only subtrees that touch new
  rows.  A match containing several inserted edges is found once per
  inserted pivot binding; the canonical-tuple set dedupes.

Both directions compare embeddings by :meth:`Embedding.canonical`
(data edge ids keyed by query edge id), which is independent of the
matching order used to find them — the same identity the differential
tests use to compare engines.
"""

from __future__ import annotations

import itertools
import queue
import threading
from collections import deque
from typing import Callable, FrozenSet, List, Optional, Sequence, Set, Tuple


class MatchDelta:
    """The exact change to one standing query's match set.

    ``added`` and ``removed`` are sorted tuples of canonical embeddings
    (each a tuple of data edge ids indexed by query edge id).  A commit
    that leaves the query's subgraph untouched still emits a delta —
    with both sides empty — so subscribers observe every version bump.
    """

    __slots__ = ("query_id", "version", "added", "removed")

    def __init__(self, query_id: int, version: int,
                 added: Sequence[Tuple[int, ...]],
                 removed: Sequence[Tuple[int, ...]]) -> None:
        self.query_id = query_id
        self.version = version
        self.added = tuple(sorted(added))
        self.removed = tuple(sorted(removed))

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    def __eq__(self, other) -> bool:
        if not isinstance(other, MatchDelta):
            return NotImplemented
        return (
            self.query_id == other.query_id
            and self.version == other.version
            and self.added == other.added
            and self.removed == other.removed
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchDelta(query_id={self.query_id}, "
            f"version={self.version}, +{len(self.added)}, "
            f"-{len(self.removed)})"
        )

    def to_json(self) -> dict:
        """The daemon's wire shape for one delta event."""
        return {
            "query_id": self.query_id,
            "version": self.version,
            "added": [list(match) for match in self.added],
            "removed": [list(match) for match in self.removed],
        }


def connected_order_from(query, start: int) -> Tuple[int, ...]:
    """A BFS matching order over ``query``'s edges rooted at ``start``.

    Every edge after the first shares a vertex with an earlier edge —
    the connectivity invariant matching orders require.  Components
    unreachable from ``start`` (a disconnected query) are appended as
    their own BFS runs, mirroring how the planner treats such orders.
    """
    num_edges = query.num_edges
    if not 0 <= start < num_edges:
        raise ValueError(f"pivot {start} out of range for {num_edges} edges")
    # vertex → incident query edges, for edge-adjacency expansion.
    order: List[int] = []
    visited: Set[int] = set()
    pending = deque([start])
    roots = itertools.chain([start], range(num_edges))
    while len(order) < num_edges:
        if not pending:
            pending.append(
                next(e for e in roots if e not in visited)
            )
        edge_id = pending.popleft()
        if edge_id in visited:
            continue
        visited.add(edge_id)
        order.append(edge_id)
        for vertex in query.edge(edge_id):
            for neighbour in query.incident_edges(vertex):
                if neighbour not in visited:
                    pending.append(neighbour)
    return tuple(order)


def enumerate_added(engine, query, inserted: "FrozenSet[int] | Set[int]",
                    ) -> Set[Tuple[int, ...]]:
    """All canonical embeddings of ``query`` using an inserted edge.

    Re-roots the matching order at every query edge and restricts step
    0 to ``inserted`` — each new match binds an inserted data edge at
    *some* query position, so the pivot sweep is exhaustive, and the
    canonical set dedupes matches containing several inserted edges.
    """
    added: Set[Tuple[int, ...]] = set()
    if not inserted:
        return added
    for pivot in range(query.num_edges):
        order = connected_order_from(query, pivot)
        for embedding in engine.match(
            query, order=order, first_edges=inserted
        ):
            added.add(embedding.canonical())
    return added


class StandingQuery:
    """One registered standing query and its current match set.

    The service owns the lifecycle: :meth:`MatchService
    .register_standing` seeds :attr:`matches` with a full enumeration,
    and every committed mutation batch calls :meth:`commit` exactly
    once.  Subscribers consume deltas either through the optional
    ``callback`` (invoked synchronously inside the commit, so it must
    be quick and must not mutate the graph) or by polling
    :meth:`poll` / iterating :meth:`events`, which drain a thread-safe
    queue — the shape the daemon's streaming endpoint uses.
    """

    def __init__(self, query_id: int, query,
                 order: "Sequence[int] | None" = None,
                 callback: "Callable[[MatchDelta], None] | None" = None,
                 ) -> None:
        self.query_id = query_id
        self.query = query
        self.order = None if order is None else tuple(order)
        self.matches: Set[Tuple[int, ...]] = set()
        self.version = 0
        self._callback = callback
        self._events: "queue.Queue[MatchDelta]" = queue.Queue()
        self._closed = threading.Event()

    # -- mutation-side ---------------------------------------------------

    def seed(self, engine, version: int) -> None:
        """Full enumeration establishing the initial match set."""
        self.matches = {
            embedding.canonical()
            for embedding in engine.match(self.query, order=self.order)
        }
        self.version = version

    def commit(self, engine, result) -> MatchDelta:
        """Apply one committed mutation; returns (and emits) the delta.

        ``result`` is the :class:`~repro.hypergraph.dynamic
        .MutationResult` the engine produced.  ``removed`` is set
        algebra over the old matches; ``added`` re-enumerates only from
        the inserted edges (see :func:`enumerate_added`).
        """
        deleted = {mutation.edge_id for mutation in result.deleted}
        inserted = {mutation.edge_id for mutation in result.inserted}
        removed = {
            match for match in self.matches
            if deleted and not deleted.isdisjoint(match)
        }
        added = enumerate_added(engine, self.query, inserted)
        self.matches = (self.matches - removed) | added
        self.version = result.version
        delta = MatchDelta(self.query_id, result.version, added, removed)
        self._events.put(delta)
        if self._callback is not None:
            self._callback(delta)
        return delta

    # -- subscriber-side -------------------------------------------------

    def poll(self, timeout: "float | None" = None) -> Optional[MatchDelta]:
        """Next unconsumed delta; None when none arrived in ``timeout``
        (``None`` = don't wait at all)."""
        try:
            if timeout is None:
                return self._events.get_nowait()
            return self._events.get(timeout=timeout)
        except queue.Empty:
            return None

    def events(self, poll_interval: float = 0.05):
        """Yield deltas until the query is unregistered and drained."""
        while True:
            delta = self.poll(timeout=poll_interval)
            if delta is not None:
                yield delta
            elif self.closed:
                return

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self) -> None:
        self._closed.set()
