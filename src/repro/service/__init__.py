"""The always-on match service: one shared shard pool, many queries.

Everything below :mod:`repro.service` turns the single-job socket
coordinator into a long-lived service:

* :class:`~repro.service.mux.MuxShardPool` — one connection per shard
  worker, multiplexing any number of in-flight queries over the §2.8
  query-tagged frames (QJOB/QLEVEL/QREPLY/QCOLLECT/QERROR/CANCEL);
* :class:`~repro.service.mux.QueryChannel` — the per-query executor
  facade that plugs into the unchanged level-synchronous coordinator
  loop, so multiplexed counts are bit-identical to solo runs;
* :class:`~repro.service.service.MatchService` — admission control
  (bounded depth, explicit BUSY), per-query deadlines, cancellation,
  an LRU result cache keyed by (query, graph) fingerprints, and
  graceful drain;
* :class:`~repro.service.standing.StandingQuery` /
  :class:`~repro.service.standing.MatchDelta` — registered queries
  whose match sets stay current across mutations, emitting exact
  added/removed deltas when a batch commits (§2.9 MUTATE/DELTA);
* :class:`~repro.service.daemon.MatchDaemon` /
  :class:`~repro.service.client.MatchClient` — the asyncio
  ``serve-match`` front end and its line-JSON client (``repro query``).
"""

from .client import MatchClient, MutationOutcome, StandingSubscription
from .daemon import MatchDaemon
from .mux import MuxShardPool, QueryChannel
from .service import (
    MatchService,
    MatchTicket,
    graph_fingerprint,
    query_fingerprint,
)
from .standing import MatchDelta, StandingQuery

__all__ = [
    "MatchClient",
    "MatchDaemon",
    "MatchDelta",
    "MatchService",
    "MatchTicket",
    "MutationOutcome",
    "MuxShardPool",
    "QueryChannel",
    "StandingQuery",
    "StandingSubscription",
    "graph_fingerprint",
    "query_fingerprint",
]
