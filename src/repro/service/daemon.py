"""The asyncio front end of the match service (``repro serve-match``).

:class:`MatchDaemon` listens on a TCP port and speaks a one-line-JSON
protocol: each connection carries exactly one request, selected by its
``op`` field (absent = ``"query"``) —

.. code-block:: text

    C: {"query": "<native hypergraph text>", "deadline": 2.5, "order": null}
    S: {"ok": true, "embeddings": 42, "elapsed": 0.103, "cached": false}

    C: {"op": "mutate", "batch": {"inserts": [...], "deletes": [...],
        "add_vertices": [...]}}
    S: {"ok": true, "version": 3, "inserted": 2, "deleted": 1,
        "skipped": [], "edges": 61, "vertices": 24}

    C: {"op": "standing", "query": "<native hypergraph text>"}
    S: {"ok": true, "standing": true, "query_id": 1, "version": 3,
        "matches": 42}
    S: {"ok": true, "delta": {"query_id": 1, "version": 4,
        "added": [[7, 9]], "removed": []}}        (one line per commit)

A ``standing`` connection stays open and streams one line per
committed mutation batch until the client hangs up (which unregisters
the query) or the service drains (a final ``{"ok": true, "closed":
true}`` line).  Refusals and failures are equally explicit, never a
hang or a silent drop:

.. code-block:: text

    S: {"ok": false, "busy": true, "retry_after": 0.25, "depth": 8}
    S: {"ok": false, "deadline_exceeded": true, "error": "..."}
    S: {"ok": false, "cancelled": true, "error": "..."}
    S: {"ok": false, "error": "..."}

The daemon owns a :class:`~repro.service.service.MatchService` and
bridges its blocking tickets onto the event loop with
``run_in_executor``; an EOF watchdog per connection turns a client
disconnect into :meth:`MatchTicket.cancel`, so an abandoned query is
CANCELled on the workers instead of running to completion for nobody.
SIGTERM/SIGINT trigger a graceful drain: the listener closes, in-flight
queries finish (or are cancelled at the drain timeout), and the pool
shuts down.
"""

from __future__ import annotations

import asyncio
import io
import json
import signal
import time

from ..errors import (
    QueryCancelled,
    ReproError,
    ServiceBusy,
    TimeoutExceeded,
)
from ..hypergraph.dynamic import MutationBatch
from ..hypergraph.io import parse_native
from .service import MatchService

#: Refuse request lines longer than this many bytes (a query graph in
#: native text form is tiny; anything bigger is a protocol error).
MAX_REQUEST_BYTES = 8 * 1024 * 1024


class MatchDaemon:
    """Serve a :class:`MatchService` over line-JSON TCP."""

    def __init__(self, service: MatchService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.address = None
        self._server = None
        self._stop = None
        self._loop = None
        self.queries_served = 0

    # -- per-connection protocol ----------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            response = await self._respond(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            response = None
        except asyncio.CancelledError:
            # Loop teardown cancelled a live connection (e.g. a standing
            # stream mid-poll).  Close the transport without awaiting —
            # the loop is going away — and finish quietly rather than
            # letting the cancellation surface as a logged traceback.
            writer.transport.close()
            return
        if response is not None:
            try:
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
            except ConnectionError:
                pass
        try:
            writer.close()
            await writer.wait_closed()
        except ConnectionError:
            pass

    async def _respond(self, reader, writer):
        try:
            line = await reader.readline()
        except ValueError:
            return {"ok": False,
                    "error": f"request exceeds {MAX_REQUEST_BYTES} bytes"}
        if not line.strip():
            return None  # client connected and hung up without asking
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise TypeError("request must be a JSON object")
            op = request.get("op", "query")
        except (TypeError, ValueError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}
        if op == "mutate":
            return await self._respond_mutate(request)
        if op == "standing":
            return await self._serve_standing(request, reader, writer)
        if op != "query":
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            query = parse_native(io.StringIO(request["query"]))
            order = request.get("order")
            deadline = request.get("deadline")
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}

        try:
            ticket = self.service.submit(
                query, order=order, deadline=deadline
            )
        except ServiceBusy as exc:
            return {"ok": False, "busy": True,
                    "retry_after": exc.retry_after, "depth": exc.depth}
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}

        # A disconnecting client cancels its query: read() resolving to
        # b"" (EOF) before the result lands means nobody is listening.
        loop = asyncio.get_running_loop()
        eof = asyncio.ensure_future(reader.read())
        waiter = loop.run_in_executor(None, ticket.result)
        done, _ = await asyncio.wait(
            {eof, waiter}, return_when=asyncio.FIRST_COMPLETED
        )
        if waiter not in done:
            ticket.cancel()
        eof.cancel()
        try:
            result = await waiter
        except TimeoutExceeded as exc:
            return {"ok": False, "deadline_exceeded": True,
                    "error": str(exc)}
        except QueryCancelled as exc:
            return {"ok": False, "cancelled": True, "error": str(exc)}
        except Exception as exc:
            return {"ok": False, "error": str(exc)}
        self.queries_served += 1
        return {
            "ok": True,
            "embeddings": result.embeddings,
            "elapsed": result.elapsed,
            "cached": ticket.cached,
        }

    # -- mutation / standing ops ----------------------------------------

    async def _respond_mutate(self, request):
        """The ``mutate`` op: commit one batch under the service barrier."""
        try:
            batch = MutationBatch.from_json(request.get("batch"))
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                None, self.service.apply_mutations, batch
            )
        except ServiceBusy as exc:
            return {"ok": False, "busy": True,
                    "retry_after": exc.retry_after, "depth": exc.depth}
        except Exception as exc:
            return {"ok": False, "error": str(exc)}
        engine = self.service._engine
        return {
            "ok": True,
            "version": result.version,
            "inserted": len(result.inserted),
            "deleted": len(result.deleted),
            "skipped": list(result.skipped),
            "edges": engine.data.num_edges,
            "vertices": engine.data.num_vertices,
        }

    async def _serve_standing(self, request, reader, writer):
        """The ``standing`` op: register, then stream one line per delta.

        The connection *is* the subscription: EOF from the client
        unregisters the query, a service drain ends the stream with a
        ``closed`` line.  Returns the error response when registration
        fails, else None (everything was streamed already).
        """
        try:
            query = parse_native(io.StringIO(request["query"]))
            order = request.get("order")
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}
        try:
            handle = self.service.register_standing(query, order=order)
        except ServiceBusy as exc:
            return {"ok": False, "busy": True,
                    "retry_after": exc.retry_after, "depth": exc.depth}
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}
        loop = asyncio.get_running_loop()
        eof = asyncio.ensure_future(reader.read())
        try:
            writer.write((json.dumps({
                "ok": True,
                "standing": True,
                "query_id": handle.query_id,
                "version": handle.version,
                "matches": len(handle.matches),
            }) + "\n").encode("utf-8"))
            await writer.drain()
            while True:
                try:
                    waiter = loop.run_in_executor(None, handle.poll, 0.25)
                except RuntimeError:
                    return None  # loop shutting down mid-subscription
                done, _ = await asyncio.wait(
                    {eof, waiter}, return_when=asyncio.FIRST_COMPLETED
                )
                delta = await waiter  # resolves within the poll timeout
                if eof in done:
                    return None  # client hung up: subscription over
                if delta is not None:
                    writer.write((json.dumps(
                        {"ok": True, "delta": delta.to_json()}
                    ) + "\n").encode("utf-8"))
                    await writer.drain()
                elif handle.closed:
                    writer.write((json.dumps(
                        {"ok": True, "closed": True}
                    ) + "\n").encode("utf-8"))
                    await writer.drain()
                    return None
        except ConnectionError:
            return None
        finally:
            eof.cancel()
            self.service.unregister_standing(handle)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_REQUEST_BYTES
        )
        self.address = self._server.sockets[0].getsockname()[:2]

    def request_stop(self) -> None:
        """Ask the serve loop to drain and exit.  Thread-safe: callable
        from signal handlers, the event loop, or any other thread."""
        if self._stop is None or self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stop.set)
        except RuntimeError:
            pass  # loop already closed: the daemon is down

    async def serve(self, duration: "float | None" = None,
                    drain_timeout: float = 10.0) -> None:
        """Run until SIGTERM/SIGINT (or ``duration`` elapses), then drain."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
            except (NotImplementedError, ValueError, RuntimeError):
                # Non-main thread or unsupported platform; asyncio
                # wraps the set_wakeup_fd ValueError in RuntimeError.
                pass
        try:
            if duration is None:
                await self._stop.wait()
            else:
                try:
                    await asyncio.wait_for(self._stop.wait(), duration)
                except asyncio.TimeoutError:
                    pass
        finally:
            await self.stop(drain_timeout=drain_timeout)

    async def stop(self, drain_timeout: float = 10.0) -> None:
        """Close the listener, drain the service. Idempotent."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.service.drain(drain_timeout)
        )


def run_daemon(service: MatchService, host: str = "127.0.0.1",
               port: int = 0, duration: "float | None" = None,
               drain_timeout: float = 10.0, ready=None) -> MatchDaemon:
    """Blocking entry point used by the CLI: serve until stopped.

    ``ready`` is called with the bound ``(host, port)`` once listening
    — the CLI prints it so scripts (and CI) can discover an ephemeral
    port, mirroring ``serve-shard``.
    """
    daemon = MatchDaemon(service, host=host, port=port)

    async def _main() -> None:
        await daemon.start()
        if ready is not None:
            ready(daemon.address)
        await daemon.serve(duration=duration, drain_timeout=drain_timeout)

    asyncio.run(_main())
    return daemon
