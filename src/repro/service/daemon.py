"""The asyncio front end of the match service (``repro serve-match``).

:class:`MatchDaemon` listens on a TCP port and speaks a one-line-JSON
protocol: each connection carries exactly one query —

.. code-block:: text

    C: {"query": "<native hypergraph text>", "deadline": 2.5, "order": null}
    S: {"ok": true, "embeddings": 42, "elapsed": 0.103, "cached": false}

Refusals and failures are equally explicit, never a hang or a silent
drop:

.. code-block:: text

    S: {"ok": false, "busy": true, "retry_after": 0.25, "depth": 8}
    S: {"ok": false, "deadline_exceeded": true, "error": "..."}
    S: {"ok": false, "cancelled": true, "error": "..."}
    S: {"ok": false, "error": "..."}

The daemon owns a :class:`~repro.service.service.MatchService` and
bridges its blocking tickets onto the event loop with
``run_in_executor``; an EOF watchdog per connection turns a client
disconnect into :meth:`MatchTicket.cancel`, so an abandoned query is
CANCELled on the workers instead of running to completion for nobody.
SIGTERM/SIGINT trigger a graceful drain: the listener closes, in-flight
queries finish (or are cancelled at the drain timeout), and the pool
shuts down.
"""

from __future__ import annotations

import asyncio
import io
import json
import signal
import time

from ..errors import (
    QueryCancelled,
    ReproError,
    ServiceBusy,
    TimeoutExceeded,
)
from ..hypergraph.io import parse_native
from .service import MatchService

#: Refuse request lines longer than this many bytes (a query graph in
#: native text form is tiny; anything bigger is a protocol error).
MAX_REQUEST_BYTES = 8 * 1024 * 1024


class MatchDaemon:
    """Serve a :class:`MatchService` over line-JSON TCP."""

    def __init__(self, service: MatchService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.address = None
        self._server = None
        self._stop = None
        self._loop = None
        self.queries_served = 0

    # -- per-connection protocol ----------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            response = await self._respond(reader)
        except (ConnectionError, asyncio.IncompleteReadError):
            response = None
        if response is not None:
            try:
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
            except ConnectionError:
                pass
        try:
            writer.close()
            await writer.wait_closed()
        except ConnectionError:
            pass

    async def _respond(self, reader):
        try:
            line = await reader.readline()
        except ValueError:
            return {"ok": False,
                    "error": f"request exceeds {MAX_REQUEST_BYTES} bytes"}
        if not line.strip():
            return None  # client connected and hung up without asking
        try:
            request = json.loads(line)
            query = parse_native(io.StringIO(request["query"]))
            order = request.get("order")
            deadline = request.get("deadline")
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}

        try:
            ticket = self.service.submit(
                query, order=order, deadline=deadline
            )
        except ServiceBusy as exc:
            return {"ok": False, "busy": True,
                    "retry_after": exc.retry_after, "depth": exc.depth}
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}

        # A disconnecting client cancels its query: read() resolving to
        # b"" (EOF) before the result lands means nobody is listening.
        loop = asyncio.get_running_loop()
        eof = asyncio.ensure_future(reader.read())
        waiter = loop.run_in_executor(None, ticket.result)
        done, _ = await asyncio.wait(
            {eof, waiter}, return_when=asyncio.FIRST_COMPLETED
        )
        if waiter not in done:
            ticket.cancel()
        eof.cancel()
        try:
            result = await waiter
        except TimeoutExceeded as exc:
            return {"ok": False, "deadline_exceeded": True,
                    "error": str(exc)}
        except QueryCancelled as exc:
            return {"ok": False, "cancelled": True, "error": str(exc)}
        except Exception as exc:
            return {"ok": False, "error": str(exc)}
        self.queries_served += 1
        return {
            "ok": True,
            "embeddings": result.embeddings,
            "elapsed": result.elapsed,
            "cached": ticket.cached,
        }

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_REQUEST_BYTES
        )
        self.address = self._server.sockets[0].getsockname()[:2]

    def request_stop(self) -> None:
        """Ask the serve loop to drain and exit.  Thread-safe: callable
        from signal handlers, the event loop, or any other thread."""
        if self._stop is None or self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stop.set)
        except RuntimeError:
            pass  # loop already closed: the daemon is down

    async def serve(self, duration: "float | None" = None,
                    drain_timeout: float = 10.0) -> None:
        """Run until SIGTERM/SIGINT (or ``duration`` elapses), then drain."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
            except (NotImplementedError, ValueError, RuntimeError):
                # Non-main thread or unsupported platform; asyncio
                # wraps the set_wakeup_fd ValueError in RuntimeError.
                pass
        try:
            if duration is None:
                await self._stop.wait()
            else:
                try:
                    await asyncio.wait_for(self._stop.wait(), duration)
                except asyncio.TimeoutError:
                    pass
        finally:
            await self.stop(drain_timeout=drain_timeout)

    async def stop(self, drain_timeout: float = 10.0) -> None:
        """Close the listener, drain the service. Idempotent."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.service.drain(drain_timeout)
        )


def run_daemon(service: MatchService, host: str = "127.0.0.1",
               port: int = 0, duration: "float | None" = None,
               drain_timeout: float = 10.0, ready=None) -> MatchDaemon:
    """Blocking entry point used by the CLI: serve until stopped.

    ``ready`` is called with the bound ``(host, port)`` once listening
    — the CLI prints it so scripts (and CI) can discover an ephemeral
    port, mirroring ``serve-shard``.
    """
    daemon = MatchDaemon(service, host=host, port=port)

    async def _main() -> None:
        await daemon.start()
        if ready is not None:
            ready(daemon.address)
        await daemon.serve(duration=duration, drain_timeout=drain_timeout)

    asyncio.run(_main())
    return daemon
