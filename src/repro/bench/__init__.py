"""Benchmark harness: workloads, timed execution, report formatting."""

from .harness import (
    DEFAULT_TIMEOUT,
    QueryRecord,
    average_time,
    completion_ratio,
    group_records,
    make_engine,
    run_baseline,
    run_hgmatch,
    run_with_timeout,
)
from .fig8 import (
    FIG8_DATASETS,
    FIG8_QUERIES_PER_SETTING,
    FIG8_SETTINGS,
    SKEW_NUM_SHARDS,
    SKEW_PARTITIONS,
    fig8_queries,
    skewed_instance,
    time_pass,
    usable_cores,
)
from .queries import (
    SETTING_NAMES,
    clear_workload_cache,
    full_workload,
    workload,
)
from .reporting import (
    format_series,
    format_table,
    geometric_mean,
    log_bar,
    speedup,
    work_model_label,
)

__all__ = [
    "DEFAULT_TIMEOUT",
    "QueryRecord",
    "run_with_timeout",
    "run_hgmatch",
    "run_baseline",
    "make_engine",
    "average_time",
    "completion_ratio",
    "group_records",
    "workload",
    "full_workload",
    "SETTING_NAMES",
    "clear_workload_cache",
    "FIG8_DATASETS",
    "FIG8_SETTINGS",
    "FIG8_QUERIES_PER_SETTING",
    "SKEW_NUM_SHARDS",
    "SKEW_PARTITIONS",
    "fig8_queries",
    "skewed_instance",
    "time_pass",
    "usable_cores",
    "format_table",
    "format_series",
    "log_bar",
    "speedup",
    "geometric_mean",
    "work_model_label",
]
