"""Benchmark query workloads (Table III protocol).

For every dataset the paper samples 20 random-walk queries per setting
(q2, q3, q4, q6).  :func:`workload` reproduces that deterministically —
the sampling RNG is seeded from (dataset seed, setting), so each
(dataset, setting) pair always yields the same queries across benchmark
runs and test sessions.

At reproduction scale the full 20×4 grid per dataset would dominate
benchmark wall-clock, so callers pass ``queries_per_setting`` (the
paper's 20 by default, benches typically use fewer).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..hypergraph import Hypergraph
from ..hypergraph.sampling import (
    PAPER_QUERY_SETTINGS,
    QuerySetting,
    query_setting,
    sample_queries,
)
from ..datasets import dataset_spec, load_dataset

#: Query-class names in paper order.
SETTING_NAMES = tuple(setting.name for setting in PAPER_QUERY_SETTINGS)

_WORKLOAD_CACHE: Dict[tuple, List[Hypergraph]] = {}


def workload(
    dataset: str,
    setting: "str | QuerySetting",
    queries_per_setting: int = 20,
) -> List[Hypergraph]:
    """The deterministic query workload for (dataset, setting)."""
    if isinstance(setting, str):
        setting = query_setting(setting)
    key = (dataset, setting.name, queries_per_setting)
    if key not in _WORKLOAD_CACHE:
        data = load_dataset(dataset)
        seed = dataset_spec(dataset).seed * 1_000 + _setting_index(setting)
        rng = random.Random(seed)
        _WORKLOAD_CACHE[key] = sample_queries(
            data, setting, queries_per_setting, rng
        )
    return _WORKLOAD_CACHE[key]


def full_workload(
    dataset: str, queries_per_setting: int = 20
) -> Dict[str, List[Hypergraph]]:
    """All four query classes for one dataset."""
    return {
        name: workload(dataset, name, queries_per_setting)
        for name in SETTING_NAMES
    }


def _setting_index(setting: QuerySetting) -> int:
    for index, known in enumerate(PAPER_QUERY_SETTINGS):
        if known.name == setting.name:
            return index
    return len(PAPER_QUERY_SETTINGS)


def clear_workload_cache() -> None:
    """Drop cached workloads (test isolation helper)."""
    _WORKLOAD_CACHE.clear()
