"""Plain-text report tables for the benchmark harness.

The paper presents results as log-scale figures; a text benchmark prints
aligned tables instead.  :func:`format_table` renders a list of dict
rows; :func:`format_series` renders one labelled numeric series per line
(the closest text analogue of a figure); :func:`log_bar` draws a
logarithmic ASCII bar so order-of-magnitude gaps stay visible.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..core.counters import WORK_UNIT_MODELS


def work_model_label(backend_or_model: str) -> str:
    """The ``work_units`` cost model a run was charged under.

    Accepts either an index backend name (``merge``/``bitset``/
    ``adaptive``) or a model name already (``postings``/``mask-ops``/
    ``mixed``).  Reports that embed ``work_units`` must carry this label:
    the merge backend counts posting entries scanned while the mask
    backends count big-int/container operations, so raw ``work_units``
    are never comparable across models (see
    :mod:`repro.core.counters`).
    """
    return WORK_UNIT_MODELS.get(backend_or_model, backend_or_model)


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render dict rows as an aligned text table (column order from the
    first row)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    rendered = [[_render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def format_series(
    label: str, values: Sequence[float], unit: str = "", precision: int = 4
) -> str:
    """One labelled numeric series, e.g. for a figure's data line."""
    rendered = ", ".join(f"{value:.{precision}g}" for value in values)
    suffix = f" {unit}" if unit else ""
    return f"{label}: [{rendered}]{suffix}"


def log_bar(value: float, floor: float = 1e-5, width: int = 40) -> str:
    """Logarithmic ASCII bar: each character spans one decade segment."""
    if value <= floor:
        return ""
    decades = math.log10(value / floor)
    filled = min(width, max(1, int(round(decades * 4))))
    return "#" * filled


def speedup(baseline_time: float, subject_time: float) -> float:
    """Baseline/subject ratio with divide-by-zero protection."""
    if subject_time <= 0:
        return float("inf")
    return baseline_time / subject_time


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean ignoring non-positive values (log-scale averaging)."""
    filtered = [value for value in values if value > 0]
    if not filtered:
        return 0.0
    return math.exp(sum(math.log(value) for value in filtered) / len(filtered))


def _render(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)
