"""Benchmark harness: timed, timeout-guarded query execution.

The paper measures average elapsed time per query class with a 1-hour
timeout, counting timed-out queries at the full limit (Section VII-A).
This harness reproduces that protocol at reproduction scale: every
engine run goes through :func:`run_with_timeout`, which returns a
:class:`QueryRecord` carrying the elapsed time, the result count, and
whether the query finished — records feed both the Fig. 8 time tables
and the Table IV completion ratios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..core.counters import MatchCounters
from ..core.engine import HGMatch
from ..errors import TimeoutExceeded
from ..hypergraph import Hypergraph

#: The reproduction-scale stand-in for the paper's 1-hour limit.
DEFAULT_TIMEOUT = 10.0


@dataclass
class QueryRecord:
    """Outcome of one (engine, query) execution."""

    engine: str
    dataset: str
    setting: str
    query_index: int
    elapsed: float
    embeddings: int
    completed: bool

    def charged_time(self, timeout: float) -> float:
        """Elapsed time with timeouts charged at the full limit, matching
        the paper's averaging rule."""
        return self.elapsed if self.completed else timeout


def run_with_timeout(
    runner: Callable[[], int],
    engine: str,
    dataset: str,
    setting: str,
    query_index: int,
    timeout: float = DEFAULT_TIMEOUT,
) -> QueryRecord:
    """Execute ``runner`` (which must respect its own time budget and raise
    :class:`TimeoutExceeded`), producing a :class:`QueryRecord`."""
    started = time.monotonic()
    try:
        embeddings = runner()
        completed = True
    except TimeoutExceeded:
        embeddings = -1
        completed = False
    elapsed = time.monotonic() - started
    return QueryRecord(
        engine=engine,
        dataset=dataset,
        setting=setting,
        query_index=query_index,
        elapsed=elapsed,
        embeddings=embeddings,
        completed=completed,
    )


def make_engine(
    data: Hypergraph, index_backend: "str | None" = None
) -> HGMatch:
    """Build an HGMatch engine with the requested index backend
    (``merge``/``bitset``/``adaptive``; None defers to the
    ``REPRO_INDEX_BACKEND``/``merge`` default).

    Kept here so benchmark modules can sweep backends without importing
    the storage layer directly.
    """
    return HGMatch(data, index_backend=index_backend)


def run_hgmatch(
    engine: HGMatch,
    query: Hypergraph,
    dataset: str,
    setting: str,
    query_index: int,
    timeout: float = DEFAULT_TIMEOUT,
    counters: "MatchCounters | None" = None,
) -> QueryRecord:
    """Harness entry for HGMatch."""
    return run_with_timeout(
        lambda: engine.count(query, counters=counters, time_budget=timeout),
        "HGMatch",
        dataset,
        setting,
        query_index,
        timeout,
    )


def run_baseline(
    matcher,
    query: Hypergraph,
    dataset: str,
    setting: str,
    query_index: int,
    timeout: float = DEFAULT_TIMEOUT,
) -> QueryRecord:
    """Harness entry for any baseline with a ``count(query, time_budget)``."""
    return run_with_timeout(
        lambda: matcher.count(query, time_budget=timeout),
        matcher.name,
        dataset,
        setting,
        query_index,
        timeout,
    )


def average_time(records: Sequence[QueryRecord], timeout: float) -> float:
    """Average charged time over a record group (paper's metric)."""
    if not records:
        return 0.0
    return sum(record.charged_time(timeout) for record in records) / len(records)


def completion_ratio(records: Sequence[QueryRecord]) -> float:
    """Fraction of completed queries (Table IV)."""
    if not records:
        return 0.0
    return sum(1 for record in records if record.completed) / len(records)


def group_records(
    records: Sequence[QueryRecord],
) -> "dict[tuple[str, str, str], List[QueryRecord]]":
    """Group records by (engine, dataset, setting)."""
    grouped: "dict[tuple[str, str, str], List[QueryRecord]]" = {}
    for record in records:
        grouped.setdefault(
            (record.engine, record.dataset, record.setting), []
        ).append(record)
    return grouped
