"""The shared Fig. 8 trace: one workload definition for all benchmarks.

``bench_index_backends``, ``bench_sharding`` and ``bench_net`` all
replay the same reproduction-scale Fig. 8 workload (HB/SB × q2/q3/q6,
three queries per setting) so their JSON trajectories stay comparable —
payload ratios and speedups measured on different traces would not be.
Defining the trace (and the small timing/affinity helpers the executor
benchmarks share) once here is what keeps that invariant from drifting
when the workload changes.
"""

from __future__ import annotations

import os
import time
from typing import List, Tuple

from .queries import workload

#: The Fig. 8 protocol at reproduction scale.
FIG8_DATASETS = ("HB", "SB")
FIG8_SETTINGS = ("q2", "q3", "q6")
FIG8_QUERIES_PER_SETTING = 3


def usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def fig8_queries() -> "List[Tuple[str, object]]":
    """The full trace as ``(dataset_name, query)`` pairs, in the fixed
    benchmark order."""
    queries = []
    for dataset in FIG8_DATASETS:
        for setting in FIG8_SETTINGS:
            for query in workload(
                dataset, setting, FIG8_QUERIES_PER_SETTING
            ):
                queries.append((dataset, query))
    return queries


def time_pass(run_pass) -> float:
    """Wall-clock one full workload pass."""
    started = time.perf_counter()
    run_pass()
    return time.perf_counter() - started
