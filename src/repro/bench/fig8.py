"""The shared Fig. 8 trace: one workload definition for all benchmarks.

``bench_index_backends``, ``bench_sharding`` and ``bench_net`` all
replay the same reproduction-scale Fig. 8 workload (HB/SB × q2/q3/q6,
three queries per setting) so their JSON trajectories stay comparable —
payload ratios and speedups measured on different traces would not be.
Defining the trace (and the small timing/affinity helpers the executor
benchmarks share) once here is what keeps that invariant from drifting
when the workload changes.
"""

from __future__ import annotations

import os
import time
from typing import List, Tuple

from .queries import workload

#: The Fig. 8 protocol at reproduction scale.
FIG8_DATASETS = ("HB", "SB")
FIG8_SETTINGS = ("q2", "q3", "q6")
FIG8_QUERIES_PER_SETTING = 3


def usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def fig8_queries() -> "List[Tuple[str, object]]":
    """The full trace as ``(dataset_name, query)`` pairs, in the fixed
    benchmark order."""
    queries = []
    for dataset in FIG8_DATASETS:
        for setting in FIG8_SETTINGS:
            for query in workload(
                dataset, setting, FIG8_QUERIES_PER_SETTING
            ):
                queries.append((dataset, query))
    return queries


def time_pass(run_pass) -> float:
    """Wall-clock one full workload pass."""
    started = time.perf_counter()
    run_pass()
    return time.perf_counter() - started


# ----------------------------------------------------------------------
# The skewed trace (shard-placement benchmarks)
# ----------------------------------------------------------------------

#: Shard count the skewed trace is calibrated against (its hot
#: partition holds fewer rows than this, which is the whole point).
SKEW_NUM_SHARDS = 4

#: Shape of the synthetic skewed instance: (label, rows, arity) per
#: signature partition.  One *hot* partition concentrates its posting
#: mass in a single row of arity 256 — one indivisible unit, so a
#: uniform row-count split parks all of it on shard 0 on top of shard
#: 0's even share of everything else; the finer partitions carry
#: enough mass for a balanced cut to compensate (shard 0 gets the hot
#: row and little else), but under uniform placement they split evenly
#: and cannot.
SKEW_PARTITIONS = (
    ("H", 1, 256),  # the hot signature partition
    ("C", 16, 32),
    ("D", 6, 8),
)


def skewed_instance():
    """The skewed workload: ``(data, queries)`` with one hot partition.

    The data hypergraph realises :data:`SKEW_PARTITIONS` with disjoint
    vertex blocks (every edge of a partition carries the same
    single-label signature), and the workload is one single-edge query
    per signature, so each query's work is a scan + validate over
    exactly one partition and per-row cost is proportional to arity —
    i.e. to posting mass, the statistic balanced placement cuts by.
    Under uniform placement the per-shard load imbalance on this trace
    comes entirely from the hot partition's indivisible rows; balanced
    placement compensates with the finer partitions' rows.  Everything
    is deterministic: no RNG, fixed vertex numbering.
    """
    from ..hypergraph import Hypergraph

    labels = []
    edges = []
    for label, rows, arity in SKEW_PARTITIONS:
        for _ in range(rows):
            base = len(labels)
            labels.extend([label] * arity)
            edges.append(set(range(base, base + arity)))
    data = Hypergraph(labels=labels, edges=edges)
    queries = []
    for label, _rows, arity in SKEW_PARTITIONS:
        queries.append(
            Hypergraph(labels=[label] * arity, edges=[set(range(arity))])
        )
    return data, queries
