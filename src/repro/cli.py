"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the built-in scaled dataset analogues with their statistics.
``stats``
    Print the Table II row for a dataset name or a ``.hg`` file.
``sample``
    Sample a random-walk query from a dataset and write it to a file.
``plan``
    Show the execution plan HGMatch generates for a query.
``match``
    Count (or print) the embeddings of a query in a data hypergraph,
    with any engine from the benchmark line-up.
``serve-shard``
    Serve one store shard over TCP — the worker side of
    ``match --executor sockets`` (see ``docs/ARCHITECTURE.md``);
    ``--announce host:port`` registers it with a worker registry.
``serve-match``
    Run the always-on match service: a multiplexed shard pool behind
    a line-JSON TCP front end with admission control, per-query
    deadlines, cancellation and a result cache.
``query``
    Send one query to a running ``serve-match`` daemon.
``supervise``
    Boot and babysit a local shard-worker pool: restart crashed
    workers under a retry budget, optionally run the worker registry
    the pool announces to (``docs/ARCHITECTURE.md``, "Elastic runtime
    & operations").

Data and query files use the native ``.hg`` text format
(:mod:`repro.hypergraph.io`); dataset names refer to the registry in
:mod:`repro.datasets`.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import List, Optional

from . import __version__
from .baselines import BASELINE_NAMES, make_baseline
from .core.engine import HGMatch
from .datasets import DATASET_ORDER, load_dataset
from .errors import ReproError, TimeoutExceeded
from .hypergraph import (
    INDEX_BACKENDS,
    SHARDING_MODES,
    Hypergraph,
    dataset_statistics,
)
from .hypergraph.io import load_native, save_native
from .hypergraph.sampling import query_setting, sample_query


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HGMatch: match-by-hyperedge subhypergraph matching",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list built-in datasets")

    stats = commands.add_parser("stats", help="dataset statistics (Table II row)")
    stats.add_argument("source", help="dataset name or path to a .hg file")

    sample = commands.add_parser("sample", help="sample a random-walk query")
    sample.add_argument("source", help="dataset name or path to a .hg file")
    sample.add_argument("--setting", default="q3", help="q2/q3/q4/q6")
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--out", required=True, help="output .hg path")

    plan = commands.add_parser("plan", help="show the execution plan")
    plan.add_argument("data", help="dataset name or .hg path")
    plan.add_argument("query", help="query .hg path")
    plan.add_argument(
        "--explain",
        action="store_true",
        help="include cardinality/cost estimates per step",
    )
    plan.add_argument(
        "--index-backend",
        default=None,
        choices=INDEX_BACKENDS,
        help="posting-list representation of the store: merge (sorted "
        "tuples), bitset (row bitmasks) or adaptive (roaring-style "
        "containers); default REPRO_INDEX_BACKEND or merge",
    )

    index = commands.add_parser(
        "index", help="build and save the indexed data hypergraph"
    )
    index.add_argument("source", help="dataset name or .hg path")
    index.add_argument("--out", required=True, help="output .hgstore path")
    match = commands.add_parser("match", help="count embeddings")
    match.add_argument("data", help="dataset name or .hg path")
    match.add_argument("query", help="query .hg path")
    match.add_argument(
        "--engine",
        default="HGMatch",
        choices=("HGMatch",) + BASELINE_NAMES,
    )
    match.add_argument(
        "--index-backend",
        default=None,
        choices=INDEX_BACKENDS,
        help="posting-list representation of the index: merge, bitset or "
        "adaptive (default REPRO_INDEX_BACKEND or merge); for baseline "
        "engines an explicit value enables store-backed IHS pruning",
    )
    match.add_argument("--workers", type=int, default=1)
    match.add_argument(
        "--executor",
        default=None,
        choices=("threads", "processes", "sockets", "simulated"),
        help="parallel engine for HGMatch: threads (work-stealing "
        "scheduler, GIL-serialised), processes (one worker process per "
        "store shard; real multi-core), sockets (shard workers over "
        "TCP — local loopback cluster, or remote servers via --hosts) "
        "or simulated (discrete-event, virtual time); default is "
        "sequential, or threads when --workers > 1",
    )
    match.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for --executor processes/sockets (contiguous "
        "row-range shards of every signature partition; default: "
        "--workers)",
    )
    match.add_argument(
        "--sharding",
        default=None,
        choices=SHARDING_MODES,
        help="shard placement for --executor processes/sockets: uniform "
        "(near-equal row counts per partition) or balanced "
        "(posting-mass-weighted ranges; hot partitions stop "
        "concentrating on shard 0); counts are identical either way",
    )
    match.add_argument(
        "--rebalance",
        action="store_true",
        help="after the first run, recut the shard ranges from the "
        "observed per-shard load and run the query again (requires "
        "--executor processes or sockets); reports the load imbalance "
        "before and after",
    )
    match.add_argument(
        "--hosts",
        default=None,
        help="comma-separated host:port list of running shard-worker "
        "servers (see the serve-shard command); implies --executor "
        "sockets and fixes the shard count to the host count (divided "
        "by --replicas when replicated)",
    )
    match.add_argument(
        "--replicas",
        type=int,
        default=None,
        help="replicas per shard range for --executor sockets (implies "
        "sockets): the coordinator fails over mid-level when a replica "
        "dies and refuses to compose only when a range has zero live "
        "replicas; with --hosts, the address count must be "
        "shards x replicas (replicas of a shard listed consecutively)",
    )
    match.add_argument("--timeout", type=float, default=None)
    match.add_argument(
        "--print-embeddings", action="store_true", help="print each embedding"
    )
    match.add_argument(
        "--limit", type=int, default=20, help="max embeddings to print"
    )

    serve = commands.add_parser(
        "serve-shard",
        help="serve one store shard over TCP (the sockets executor's "
        "worker side); the framed protocol is specified in "
        "docs/WIRE_FORMAT.md",
    )
    serve.add_argument("source", help="dataset name or .hg path")
    serve.add_argument(
        "--shard-id", type=int, required=True,
        help="which shard of the row-range split this worker owns (0-based)",
    )
    serve.add_argument(
        "--num-shards", type=int, required=True,
        help="total shard count the coordinator will compose",
    )
    serve.add_argument(
        "--replica-id", type=int, default=0,
        help="which replica of the shard range this worker is "
        "(0-based; replicas build identical shards and are "
        "interchangeable failover targets)",
    )
    serve.add_argument(
        "--num-replicas", type=int, default=1,
        help="replicas per shard range the coordinator expects "
        "(must match its --replicas; enforced at handshake)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (use 0.0.0.0 to accept remote "
        "coordinators; the protocol trusts its peers — bind publicly "
        "only inside a private network)",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port to bind (0 = OS-assigned; the bound port is "
        "printed before serving)",
    )
    serve.add_argument(
        "--index-backend",
        default=None,
        choices=INDEX_BACKENDS,
        help="posting-list representation of the shard's index; must "
        "match the coordinator's (enforced at handshake)",
    )
    serve.add_argument(
        "--sharding",
        default=None,
        choices=SHARDING_MODES,
        help="shard placement mode the worker cuts its ranges with; "
        "must match the coordinator's (enforced at handshake)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=None,
        help="exit after serving this many coordinator sessions "
        "(default: serve until a peer sends the QUIT frame — "
        "repro.parallel.shutdown_worker((host, port)) — or Ctrl-C)",
    )
    serve.add_argument(
        "--announce", default=None, metavar="HOST:PORT",
        help="register with the worker registry at HOST:PORT (ANNOUNCE "
        "once, then a HEARTBEAT per interval; see docs/WIRE_FORMAT.md "
        "§2.4) so coordinators can discover this worker instead of "
        "being handed its address",
    )
    serve.add_argument(
        "--heartbeat-interval", type=float, default=None,
        help="seconds between registry heartbeats (default 0.5; must "
        "match the registry's expectation — it evicts after "
        "interval x miss-budget of silence)",
    )

    serve_match = commands.add_parser(
        "serve-match",
        help="run the always-on match service: a multiplexed shard "
        "pool behind a line-JSON TCP front end with admission "
        "control, deadlines, cancellation and a result cache "
        "(docs/ARCHITECTURE.md, 'Match service')",
    )
    serve_match.add_argument("source", help="dataset name or .hg path")
    serve_match.add_argument(
        "--shards", type=int, default=2,
        help="shard count of the service's worker pool (default 2)",
    )
    serve_match.add_argument(
        "--index-backend", default=None, choices=INDEX_BACKENDS,
        help="posting-list representation of the pooled shards",
    )
    serve_match.add_argument(
        "--sharding", default=None, choices=SHARDING_MODES,
        help="shard placement mode of the pooled shards",
    )
    serve_match.add_argument(
        "--host", default="127.0.0.1",
        help="interface the service listens on (the protocol trusts "
        "its peers — bind publicly only inside a private network)",
    )
    serve_match.add_argument(
        "--port", type=int, default=0,
        help="TCP port to bind (0 = OS-assigned; the bound address is "
        "printed before serving)",
    )
    serve_match.add_argument(
        "--max-concurrent", type=int, default=4,
        help="queries executing at once over the shared pool (default 4)",
    )
    serve_match.add_argument(
        "--queue-depth", type=int, default=8,
        help="admitted queries (running + backlog) before new ones "
        "are refused with BUSY (default 8)",
    )
    serve_match.add_argument(
        "--deadline", type=float, default=None,
        help="default per-query deadline in seconds (requests may "
        "override; default: none)",
    )
    serve_match.add_argument(
        "--cache-capacity", type=int, default=128,
        help="entries in the LRU result cache (default 128)",
    )
    serve_match.add_argument(
        "--duration", type=float, default=None,
        help="serve for this many seconds then drain and exit "
        "(default: until SIGTERM/Ctrl-C; smoke tests use a short "
        "duration)",
    )
    serve_match.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="seconds granted to in-flight queries at shutdown before "
        "they are cancelled (default 10)",
    )
    serve_match.add_argument(
        "--journal-dir", default=None,
        help="directory for the durable mutation journal: committed "
        "batches are logged inside the commit barrier and the service "
        "recovers graph + standing queries from it on restart "
        "(default: $REPRO_JOURNAL_DIR, else no journal)",
    )
    serve_match.add_argument(
        "--journal-fsync", default=None, choices=("always", "never"),
        help="fsync policy of the journal: 'always' fsyncs every "
        "commit (crash-safe), 'never' leaves flushing to the OS "
        "(default: $REPRO_JOURNAL_FSYNC, else 'always')",
    )
    serve_match.add_argument(
        "--snapshot-interval", type=int, default=None,
        help="journalled batches between snapshots (recovery replays "
        "at most this many; default: "
        "$REPRO_JOURNAL_SNAPSHOT_INTERVAL, else 64)",
    )

    query_cmd = commands.add_parser(
        "query",
        help="send one query to a running serve-match daemon and "
        "print the embedding count",
    )
    query_cmd.add_argument("query", help="query .hg path")
    query_cmd.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="address of the serve-match daemon",
    )
    query_cmd.add_argument(
        "--deadline", type=float, default=None,
        help="per-query deadline in seconds",
    )
    query_cmd.add_argument(
        "--timeout", type=float, default=30.0,
        help="client-side socket timeout in seconds (default 30)",
    )

    supervise = commands.add_parser(
        "supervise",
        help="boot and babysit a local shard-worker pool: restart "
        "crashed workers under a jittered-backoff retry budget, "
        "degrade to reduced K when a slot exhausts it "
        "(docs/ARCHITECTURE.md, 'Elastic runtime & operations')",
    )
    supervise.add_argument("source", help="dataset name or .hg path")
    supervise.add_argument(
        "--num-shards", type=int, required=True,
        help="shard count of the supervised pool",
    )
    supervise.add_argument(
        "--replicas", type=int, default=1,
        help="replicas per shard range (the pool holds "
        "num-shards x replicas workers)",
    )
    supervise.add_argument(
        "--index-backend", default=None, choices=INDEX_BACKENDS,
        help="posting-list representation the workers build",
    )
    supervise.add_argument(
        "--sharding", default=None, choices=SHARDING_MODES,
        help="shard placement mode the workers cut their ranges with",
    )
    supervise.add_argument(
        "--restart-budget", type=int, default=3,
        help="restarts granted to each worker slot before it is "
        "abandoned and the pool degrades (default 3)",
    )
    supervise.add_argument(
        "--registry", action="store_true",
        help="also run a worker registry and have the supervised "
        "workers announce to it (its address is printed; hand it to "
        "NetShardExecutor.from_registry or watch it for evictions)",
    )
    supervise.add_argument(
        "--announce", default=None, metavar="HOST:PORT",
        help="have the supervised workers announce to an *external* "
        "registry at HOST:PORT instead of --registry's embedded one",
    )
    supervise.add_argument(
        "--heartbeat-interval", type=float, default=None,
        help="seconds between worker registry heartbeats (default 0.5)",
    )
    supervise.add_argument(
        "--duration", type=float, default=None,
        help="supervise for this many seconds, then exit cleanly "
        "(default: until Ctrl-C; smoke tests use a short duration)",
    )
    supervise.add_argument(
        "--poll-interval", type=float, default=0.2,
        help="seconds between supervision health checks (default 0.2)",
    )
    return parser


def _parse_host_port(value: str) -> "tuple[str, int]":
    host, separator, port = value.rpartition(":")
    if not separator or not host:
        raise ReproError(
            f"expected HOST:PORT, got {value!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(
            f"expected HOST:PORT with a numeric port, got {value!r}"
        ) from None


def _load_graph(source: str) -> Hypergraph:
    if source in DATASET_ORDER:
        return load_dataset(source)
    return load_native(source)


def _cmd_datasets(out) -> int:
    for name in DATASET_ORDER:
        stats = dataset_statistics(name, load_dataset(name))
        out.write(
            f"{name}: |V|={stats.num_vertices} |E|={stats.num_edges} "
            f"|Σ|={stats.num_labels} a={stats.average_arity:.1f} "
            f"amax={stats.max_arity}\n"
        )
    return 0


def _cmd_stats(args, out) -> int:
    graph = _load_graph(args.source)
    stats = dataset_statistics(args.source, graph)
    for key, value in stats.as_row().items():
        out.write(f"{key}: {value}\n")
    return 0


def _cmd_sample(args, out) -> int:
    graph = _load_graph(args.source)
    setting = query_setting(args.setting)
    query = sample_query(graph, setting, random.Random(args.seed))
    save_native(query, args.out)
    out.write(
        f"sampled {setting.name} query (|V|={query.num_vertices}, "
        f"|E|={query.num_edges}) -> {args.out}\n"
    )
    return 0


def _cmd_plan(args, out) -> int:
    data = _load_graph(args.data)
    query = load_native(args.query)
    engine = HGMatch(data, index_backend=args.index_backend)
    if args.explain:
        from .core.estimation import explain

        out.write(explain(engine, query) + "\n")
    else:
        out.write(engine.plan(query).describe() + "\n")
    return 0


def _cmd_index(args, out) -> int:
    from .hypergraph import PartitionedStore, save_store

    graph = _load_graph(args.source)
    store = PartitionedStore(graph)
    save_store(store, args.out)
    # The .hgstore format is backend-neutral posting lists; the reader
    # picks a representation via load_store(..., index_backend=...).
    out.write(
        f"indexed {graph.num_edges} hyperedges into "
        f"{store.num_partitions()} partitions -> {args.out}\n"
    )
    return 0


def _cmd_match(args, out) -> int:
    data = _load_graph(args.data)
    query = load_native(args.query)
    started = time.perf_counter()
    try:
        if args.engine == "HGMatch":
            executor = args.executor
            shards = args.shards
            hosts = args.hosts
            replicas = args.replicas
            if hosts is not None and executor not in (None, "sockets"):
                out.write(
                    f"error: --hosts applies to --executor sockets, "
                    f"not {executor!r}\n"
                )
                return 1
            if replicas is not None and executor not in (None, "sockets"):
                out.write(
                    f"error: --replicas applies to --executor sockets, "
                    f"not {executor!r}\n"
                )
                return 1
            if replicas is not None and replicas < 1:
                out.write("error: --replicas must be >= 1\n")
                return 1
            if hosts is not None or replicas is not None:
                # Naming worker addresses (or a replication factor)
                # means the socket executor.
                executor = "sockets"
            if shards is not None and executor not in (
                None, "processes", "sockets"
            ):
                # Sharding is the shard executors' concept; silently
                # running threads/simulated without it would misreport.
                out.write(
                    f"error: --shards applies to --executor processes "
                    f"or sockets, not {executor!r}\n"
                )
                return 1
            if args.sharding is not None and executor not in (
                None, "processes", "sockets"
            ):
                out.write(
                    f"error: --sharding applies to --executor processes "
                    f"or sockets, not {executor!r}\n"
                )
                return 1
            addresses = None
            if hosts is not None:
                from .parallel.transport import parse_address

                addresses = [
                    parse_address(entry.strip())
                    for entry in hosts.split(",")
                    if entry.strip()
                ]
                if not addresses:
                    out.write("error: --hosts lists no addresses\n")
                    return 1
                per_shard = 1 if replicas is None else replicas
                if len(addresses) % per_shard != 0:
                    out.write(
                        f"error: {len(addresses)} --hosts addresses do "
                        f"not divide into {per_shard} replicas per "
                        f"shard\n"
                    )
                    return 1
                if shards is not None and (
                    shards * per_shard != len(addresses)
                ):
                    out.write(
                        f"error: --shards {shards} contradicts "
                        f"{len(addresses)} --hosts addresses\n"
                    )
                    return 1
                shards = len(addresses) // per_shard
            if shards is None and executor in ("processes", "sockets"):
                shards = max(args.workers, 1)
            elif (
                shards is not None or args.sharding is not None
            ) and executor is None:
                # Asking for shards (or a placement mode) without naming
                # an engine means the sharded one.
                executor = "processes"
                if shards is None:
                    shards = max(args.workers, 1)
            if args.rebalance and executor not in ("processes", "sockets"):
                out.write(
                    "error: --rebalance needs --executor processes or "
                    "sockets (the shard executors own the ranges being "
                    "recut)\n"
                )
                return 1
            engine = HGMatch(
                data,
                index_backend=args.index_backend,
                shards=shards if shards is not None else 1,
                sharding=args.sharding,
            )
            if addresses is not None:
                # Pin the engine's socket executor to the named workers
                # before count() lazily builds a local cluster instead.
                engine.net_executor(hosts=addresses, replicas=replicas)
            elif replicas is not None and replicas > 1:
                # Pin the replication factor: count() asks for the
                # executor by shard count alone and reuses this one.
                engine.net_executor(shards, replicas=replicas)
            if args.print_embeddings:
                if executor is not None:
                    # match() streams from the sequential loop; accepting
                    # the flag and silently ignoring it would misreport
                    # what ran.
                    out.write(
                        "error: --print-embeddings streams the sequential "
                        "engine; drop --executor/--shards\n"
                    )
                    return 1
                count = 0
                for embedding in engine.match(query, time_budget=args.timeout):
                    if count < args.limit:
                        out.write(f"{embedding.hyperedge_mapping()}\n")
                    count += 1
            elif args.rebalance:
                from .parallel import load_imbalance

                try:
                    pool = (
                        engine.shard_executor(shards)
                        if executor == "processes"
                        else engine.net_executor(shards)
                    )
                    first = pool.run(engine, query, time_budget=args.timeout)
                    before = load_imbalance(first.worker_stats)
                    moved = pool.rebalance(first.worker_stats)
                    second = pool.run(
                        engine, query, time_budget=args.timeout
                    )
                    after = load_imbalance(second.worker_stats)
                    if second.embeddings != first.embeddings:
                        # Cannot happen while the recut covers the rows
                        # exactly; check anyway — a silent drift here
                        # would invalidate every number printed below.
                        out.write(
                            f"error: count drifted across the rebalance "
                            f"({first.embeddings} -> {second.embeddings})\n"
                        )
                        return 1
                    out.write(
                        f"rebalance: moved {moved} shard(s); load "
                        f"imbalance {before:.2f}x -> {after:.2f}x; "
                        f"runs {first.elapsed:.4f}s -> "
                        f"{second.elapsed:.4f}s\n"
                    )
                    count = second.embeddings
                finally:
                    engine.close()
            else:
                try:
                    count = engine.count(
                        query,
                        workers=args.workers,
                        time_budget=args.timeout,
                        executor=executor,
                    )
                finally:
                    engine.close()
        else:
            if (
                args.executor is not None
                or args.shards is not None
                or args.hosts is not None
            ):
                out.write(
                    "error: --executor/--shards/--hosts apply to the "
                    "HGMatch engine only\n"
                )
                return 1
            store = None
            if args.index_backend is not None:
                # An explicit backend opts the baseline's IHS filter into
                # posting-mask pruning over a partitioned store.
                from .hypergraph import PartitionedStore

                store = PartitionedStore(data, index_backend=args.index_backend)
            matcher = make_baseline(args.engine, data, store=store)
            count = len(matcher.hyperedge_embeddings(query, time_budget=args.timeout))
    except TimeoutExceeded:
        out.write(f"TIMEOUT after {args.timeout}s\n")
        return 2
    elapsed = time.perf_counter() - started
    out.write(f"{count} embeddings in {elapsed:.4f}s ({args.engine})\n")
    return 0


def _cmd_serve_shard(args, out) -> int:
    from .parallel.net_executor import ShardWorker

    if args.num_shards < 1:
        out.write("error: --num-shards must be >= 1\n")
        return 1
    if not 0 <= args.shard_id < args.num_shards:
        out.write(
            f"error: --shard-id {args.shard_id} out of range for "
            f"{args.num_shards} shards\n"
        )
        return 1
    if args.num_replicas < 1:
        out.write("error: --num-replicas must be >= 1\n")
        return 1
    if not 0 <= args.replica_id < args.num_replicas:
        out.write(
            f"error: --replica-id {args.replica_id} out of range for "
            f"{args.num_replicas} replicas\n"
        )
        return 1
    announce = (
        _parse_host_port(args.announce)
        if args.announce is not None
        else None
    )
    graph = _load_graph(args.source)
    worker = ShardWorker(
        graph,
        args.shard_id,
        args.num_shards,
        index_backend=args.index_backend,
        host=args.host,
        port=args.port,
        sharding=args.sharding,
        replica_id=args.replica_id,
        num_replicas=args.num_replicas,
        announce=announce,
        heartbeat_interval=args.heartbeat_interval,
    )
    host, port = worker.bind()
    replica_note = (
        f" (replica {args.replica_id}/{args.num_replicas})"
        if args.num_replicas > 1
        else ""
    )
    announce_note = (
        f", announcing to {announce[0]}:{announce[1]}"
        if announce is not None
        else ""
    )
    out.write(
        f"serving shard {args.shard_id}/{args.num_shards}{replica_note} "
        f"of {args.source} ({worker.index_backend} backend, "
        f"{worker.shard.sharding} placement, "
        f"{worker.shard.index_size_entries()} posting entries) on "
        f"{host}:{port}{announce_note}\n"
    )
    if hasattr(out, "flush"):
        out.flush()  # wrappers read the port line before connecting
    try:
        worker.serve_forever(max_sessions=args.max_sessions)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        worker.close()
    return 0


def _cmd_serve_match(args, out) -> int:
    from .hypergraph.journal import MutationJournal, default_journal_dir
    from .service import MatchService
    from .service.daemon import run_daemon

    if args.shards < 1:
        out.write("error: --shards must be >= 1\n")
        return 1
    if args.max_concurrent < 1:
        out.write("error: --max-concurrent must be >= 1\n")
        return 1
    if args.queue_depth < 1:
        out.write("error: --queue-depth must be >= 1\n")
        return 1
    journal = None
    recovered = None
    journal_dir = args.journal_dir
    if journal_dir is None:
        journal_dir = default_journal_dir()
    if journal_dir is not None:
        journal = MutationJournal(
            journal_dir,
            fsync=args.journal_fsync,
            snapshot_interval=args.snapshot_interval,
        )
        recovered = journal.recover()
    if recovered is not None:
        graph = recovered.graph
    else:
        graph = _load_graph(args.source)
    engine = HGMatch(
        graph,
        index_backend=args.index_backend,
        sharding=args.sharding,
    )
    service = MatchService(
        engine,
        shards=args.shards,
        max_concurrent=args.max_concurrent,
        queue_depth=args.queue_depth,
        cache_capacity=args.cache_capacity,
        default_deadline=args.deadline,
        journal=journal,
    )
    restored = service.restore_standing()
    if recovered is not None:
        out.write(
            f"recovered graph at version {recovered.version} "
            f"(snapshot {recovered.snapshot_version} + "
            f"{recovered.replayed} replayed batch(es), "
            f"{restored} standing quer(ies)) from {journal_dir}\n"
        )

    def ready(address) -> None:
        host, port = address
        out.write(
            f"match service for {args.source} "
            f"({engine.index_backend} backend, {args.shards} shards, "
            f"depth {args.queue_depth}) on {host}:{port}\n"
        )
        if hasattr(out, "flush"):
            out.flush()  # wrappers read the address line first

    try:
        daemon = run_daemon(
            service,
            host=args.host,
            port=args.port,
            duration=args.duration,
            drain_timeout=args.drain_timeout,
            ready=ready,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        service.drain(args.drain_timeout)
        daemon = None
    finally:
        engine.close()
    if daemon is not None:
        out.write(f"drained after {daemon.queries_served} query(ies)\n")
    return 0


def _cmd_query(args, out) -> int:
    from .service.client import MatchClient

    host, port = _parse_host_port(args.connect)
    query = load_native(args.query)
    client = MatchClient(host, port, timeout=args.timeout)
    try:
        outcome = client.query(query, deadline=args.deadline)
    except TimeoutExceeded as exc:
        out.write(f"deadline exceeded: {exc}\n")
        return 1
    cached_note = " (cached)" if outcome.cached else ""
    out.write(
        f"{outcome.embeddings} embeddings in "
        f"{outcome.elapsed:.3f}s{cached_note}\n"
    )
    return 0


def _cmd_supervise(args, out) -> int:
    from .parallel.registry import WorkerRegistry
    from .parallel.supervisor import WorkerSupervisor

    if args.num_shards < 1:
        out.write("error: --num-shards must be >= 1\n")
        return 1
    if args.replicas < 1:
        out.write("error: --replicas must be >= 1\n")
        return 1
    if args.restart_budget < 0:
        out.write("error: --restart-budget must be >= 0\n")
        return 1
    if args.registry and args.announce is not None:
        out.write(
            "error: --registry and --announce are mutually exclusive "
            "(embedded vs external registry)\n"
        )
        return 1
    graph = _load_graph(args.source)
    registry = None
    announce = None
    if args.registry:
        registry = WorkerRegistry(
            heartbeat_interval=args.heartbeat_interval
        )
        announce = registry.start()
    elif args.announce is not None:
        announce = _parse_host_port(args.announce)
    try:
        supervisor = WorkerSupervisor(
            graph,
            args.num_shards,
            index_backend=args.index_backend,
            num_replicas=args.replicas,
            sharding=args.sharding,
            announce=announce,
            heartbeat_interval=args.heartbeat_interval,
            restart_budget=args.restart_budget,
        )
        with supervisor:
            if registry is not None:
                host, port = registry.address
                out.write(f"registry on {host}:{port}\n")
            for slot in supervisor.status():
                host, port = slot.address
                out.write(
                    f"shard {slot.shard_id} replica {slot.replica_id} "
                    f"on {host}:{port} (pid {slot.pid})\n"
                )
            out.write(
                f"supervising {args.num_shards * args.replicas} "
                f"worker(s); restart budget {args.restart_budget} per "
                f"slot\n"
            )
            if hasattr(out, "flush"):
                out.flush()  # wrappers read the roster before poking us
            restarts = supervisor.run_forever(
                duration=args.duration,
                poll_interval=args.poll_interval,
            )
            live = supervisor.live_count()
            out.write(
                f"supervision ended: {restarts} restart(s), "
                f"{live} worker(s) live\n"
            )
    finally:
        if registry is not None:
            registry.close()
    return 0


def main(argv: "Optional[List[str]]" = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets(out)
        if args.command == "stats":
            return _cmd_stats(args, out)
        if args.command == "sample":
            return _cmd_sample(args, out)
        if args.command == "plan":
            return _cmd_plan(args, out)
        if args.command == "index":
            return _cmd_index(args, out)
        if args.command == "match":
            return _cmd_match(args, out)
        if args.command == "serve-shard":
            return _cmd_serve_shard(args, out)
        if args.command == "serve-match":
            return _cmd_serve_match(args, out)
        if args.command == "query":
            return _cmd_query(args, out)
        if args.command == "supervise":
            return _cmd_supervise(args, out)
    except (ReproError, OSError) as exc:
        out.write(f"error: {exc}\n")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
