"""Test-support helpers shared by the test suite and benchmarks.

Lives inside the installed package (not in a ``conftest.py``) so test
modules can import it unambiguously: with both ``tests/`` and
``benchmarks/`` carrying a ``conftest.py``, a bare ``from conftest
import ...`` resolves to whichever directory pytest put on ``sys.path``
first and breaks collection under some rootdirs.
"""

from __future__ import annotations

import random


def make_random_instance(rng: random.Random, max_vertices: int = 16):
    """A (data, query) pair small enough for brute-force comparison.

    The query is a random-walk sub-hypergraph of the data, so at least
    one embedding always exists.  Returns None when sampling fails (the
    random data was too sparse), letting callers skip the trial.
    """
    from .hypergraph.generators import generate_hypergraph
    from .hypergraph.sampling import QuerySetting, sample_query

    data = generate_hypergraph(
        num_vertices=rng.randint(6, max_vertices),
        num_edges=rng.randint(4, 14),
        num_labels=rng.randint(1, 3),
        mean_arity=2.5,
        max_arity=4,
        rng=rng,
    )
    if data.num_edges < 2:
        return None
    setting = QuerySetting("t", rng.randint(2, 3), 2, 12)
    try:
        query = sample_query(data, setting, rng, max_attempts=60)
    except Exception:
        return None
    return data, query
