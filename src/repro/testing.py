"""Test-support helpers shared by the test suite and benchmarks.

Lives inside the installed package (not in a ``conftest.py``) so test
modules can import it unambiguously: with both ``tests/`` and
``benchmarks/`` carrying a ``conftest.py``, a bare ``from conftest
import ...`` resolves to whichever directory pytest put on ``sys.path``
first and breaks collection under some rootdirs.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple


def make_random_instance(rng: random.Random, max_vertices: int = 16):
    """A (data, query) pair small enough for brute-force comparison.

    The query is a random-walk sub-hypergraph of the data, so at least
    one embedding always exists.  Returns None when sampling fails (the
    random data was too sparse), letting callers skip the trial.
    """
    from .hypergraph.generators import generate_hypergraph
    from .hypergraph.sampling import QuerySetting, sample_query

    data = generate_hypergraph(
        num_vertices=rng.randint(6, max_vertices),
        num_edges=rng.randint(4, 14),
        num_labels=rng.randint(1, 3),
        mean_arity=2.5,
        max_arity=4,
        rng=rng,
    )
    if data.num_edges < 2:
        return None
    setting = QuerySetting("t", rng.randint(2, 3), 2, 12)
    try:
        query = sample_query(data, setting, rng, max_attempts=60)
    except Exception:
        return None
    return data, query


# ---------------------------------------------------------------------------
# Dynamic graphs: the differential mutation oracle
# ---------------------------------------------------------------------------

def make_mutable_instance(rng: random.Random, max_vertices: int = 16):
    """A (data, query, edges) triple for mutation schedules.

    Deliberately a *separate* function from :func:`make_random_instance`
    (whose RNG consumption is pinned by seeded tests): same recipe, but
    the generated graph's edge list rides along as ``(sorted vertex
    tuple, edge label)`` pairs, so schedules can delete real rows and
    re-insert exact duplicates without re-deriving them from the graph.
    Returns None when sampling fails, like the immutable variant.
    """
    instance = make_random_instance(rng, max_vertices=max_vertices)
    if instance is None:
        return None
    data, query = instance
    edges = [
        (tuple(sorted(data.edge(edge_id))), data.edge_label(edge_id))
        for edge_id in range(data.num_edges)
    ]
    return data, query, edges


def random_mutation_schedule(
    rng: random.Random,
    graph,
    steps: int = 5,
    max_inserts: int = 3,
    max_deletes: int = 2,
):
    """A random, guaranteed-valid interleaving of inserts and deletes.

    Simulates the schedule against a scratch
    :class:`~repro.hypergraph.dynamic.DynamicHypergraph` while
    generating it, so every delete names an edge that is live *at that
    point of the schedule* and inserted edges may themselves be deleted
    later.  Inserts draw random vertex subsets (occasionally over
    freshly added vertices); duplicates of live edges are fine — the
    apply path skips them, and the oracle must agree on the skip.
    Returns a list of ``steps`` MutationBatch objects.
    """
    from .hypergraph.dynamic import DynamicHypergraph, MutationBatch

    simulated = DynamicHypergraph.from_hypergraph(graph)
    labelled = simulated.is_edge_labelled
    vertex_labels = sorted(set(simulated.labels))
    edge_labels = sorted(
        {
            simulated.edge_label(edge_id)
            for edge_id in simulated.live_edge_ids()
        },
        key=repr,
    ) if labelled else [None]
    schedule = []
    for _ in range(steps):
        live = list(simulated.live_edge_ids())
        num_deletes = rng.randint(0, min(max_deletes, len(live)))
        deletes = sorted(rng.sample(live, num_deletes))
        add_vertices = (
            [rng.choice(vertex_labels) for _ in range(rng.randint(1, 2))]
            if rng.random() < 0.25
            else []
        )
        total_vertices = simulated.num_vertices + len(add_vertices)
        inserts = []
        for _ in range(rng.randint(0, max_inserts)):
            arity = rng.randint(2, min(4, total_vertices))
            vertices = tuple(sorted(rng.sample(range(total_vertices), arity)))
            label = rng.choice(edge_labels)
            inserts.append(vertices if label is None else (vertices, label))
        batch = MutationBatch(
            inserts=inserts, deletes=deletes, add_vertices=add_vertices
        )
        simulated.apply(batch)
        schedule.append(batch)
    return schedule


def run_mutation_differential(
    data,
    query,
    schedule,
    index_backend: str = "merge",
    executor: "str | None" = None,
    shards: int = 2,
):
    """Drive ``schedule`` incrementally and diff against full rebuilds.

    After every batch the incrementally maintained engine's count is
    compared with a from-scratch engine rebuilt from the mutated
    graph's frozen snapshot (:meth:`DynamicHypergraph.to_hypergraph`) —
    the rebuild *is* the oracle, and "bit-identical" means the counts
    agree at every step, on every backend, under every executor.

    Returns None when the whole schedule agrees, else a ``(step,
    incremental, oracle)`` triple locating the first divergence — the
    shape :func:`shrink_mutation_schedule` bisects on.
    """
    from .core.engine import HGMatch

    engine = HGMatch(data, index_backend=index_backend, shards=shards)
    try:
        for step, batch in enumerate(schedule):
            engine.apply_mutations(batch)
            if executor is None:
                incremental = engine.count(query)
            else:
                incremental = engine.count(
                    query, executor=executor, shards=shards
                )
            oracle_engine = HGMatch(
                engine.data.to_hypergraph(), index_backend=index_backend
            )
            oracle = oracle_engine.count(query)
            if incremental != oracle:
                return (step, incremental, oracle)
        return None
    finally:
        engine.close()


def shrink_mutation_schedule(
    data,
    query,
    schedule,
    index_backend: str = "merge",
    executor: "str | None" = None,
    shards: int = 2,
):
    """The failure shrinker: shortest failing prefix, by bisection.

    Given a schedule that :func:`run_mutation_differential` fails,
    binary-search the shortest prefix that still diverges (divergence
    is monotone in the prefix: the runner checks after *every* step, so
    a failing run at step ``k`` fails for any prefix of length > ``k``).
    Returns ``(prefix, divergence)`` — the minimal reproducer to log
    alongside the seed.
    """
    def fails(prefix):
        return run_mutation_differential(
            data, query, prefix,
            index_backend=index_backend, executor=executor, shards=shards,
        )

    divergence = fails(schedule)
    if divergence is None:
        raise ValueError("schedule does not fail; nothing to shrink")
    low, high = 1, divergence[0] + 1
    best = (list(schedule[:high]), divergence)
    while low < high:
        mid = (low + high) // 2
        result = fails(schedule[:mid])
        if result is None:
            low = mid + 1
        else:
            best = (list(schedule[:mid]), result)
            high = mid
    return best
