"""Test-support helpers shared by the test suite and benchmarks.

Lives inside the installed package (not in a ``conftest.py``) so test
modules can import it unambiguously: with both ``tests/`` and
``benchmarks/`` carrying a ``conftest.py``, a bare ``from conftest
import ...`` resolves to whichever directory pytest put on ``sys.path``
first and breaks collection under some rootdirs.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
from typing import List, Optional, Sequence, Tuple


def make_random_instance(rng: random.Random, max_vertices: int = 16):
    """A (data, query) pair small enough for brute-force comparison.

    The query is a random-walk sub-hypergraph of the data, so at least
    one embedding always exists.  Returns None when sampling fails (the
    random data was too sparse), letting callers skip the trial.
    """
    from .hypergraph.generators import generate_hypergraph
    from .hypergraph.sampling import QuerySetting, sample_query

    data = generate_hypergraph(
        num_vertices=rng.randint(6, max_vertices),
        num_edges=rng.randint(4, 14),
        num_labels=rng.randint(1, 3),
        mean_arity=2.5,
        max_arity=4,
        rng=rng,
    )
    if data.num_edges < 2:
        return None
    setting = QuerySetting("t", rng.randint(2, 3), 2, 12)
    try:
        query = sample_query(data, setting, rng, max_attempts=60)
    except Exception:
        return None
    return data, query


# ---------------------------------------------------------------------------
# Dynamic graphs: the differential mutation oracle
# ---------------------------------------------------------------------------

def make_mutable_instance(rng: random.Random, max_vertices: int = 16):
    """A (data, query, edges) triple for mutation schedules.

    Deliberately a *separate* function from :func:`make_random_instance`
    (whose RNG consumption is pinned by seeded tests): same recipe, but
    the generated graph's edge list rides along as ``(sorted vertex
    tuple, edge label)`` pairs, so schedules can delete real rows and
    re-insert exact duplicates without re-deriving them from the graph.
    Returns None when sampling fails, like the immutable variant.
    """
    instance = make_random_instance(rng, max_vertices=max_vertices)
    if instance is None:
        return None
    data, query = instance
    edges = [
        (tuple(sorted(data.edge(edge_id))), data.edge_label(edge_id))
        for edge_id in range(data.num_edges)
    ]
    return data, query, edges


def random_mutation_schedule(
    rng: random.Random,
    graph,
    steps: int = 5,
    max_inserts: int = 3,
    max_deletes: int = 2,
):
    """A random, guaranteed-valid interleaving of inserts and deletes.

    Simulates the schedule against a scratch
    :class:`~repro.hypergraph.dynamic.DynamicHypergraph` while
    generating it, so every delete names an edge that is live *at that
    point of the schedule* and inserted edges may themselves be deleted
    later.  Inserts draw random vertex subsets (occasionally over
    freshly added vertices); duplicates of live edges are fine — the
    apply path skips them, and the oracle must agree on the skip.
    Returns a list of ``steps`` MutationBatch objects.
    """
    from .hypergraph.dynamic import DynamicHypergraph, MutationBatch

    simulated = DynamicHypergraph.from_hypergraph(graph)
    labelled = simulated.is_edge_labelled
    vertex_labels = sorted(set(simulated.labels))
    edge_labels = sorted(
        {
            simulated.edge_label(edge_id)
            for edge_id in simulated.live_edge_ids()
        },
        key=repr,
    ) if labelled else [None]
    schedule = []
    for _ in range(steps):
        live = list(simulated.live_edge_ids())
        num_deletes = rng.randint(0, min(max_deletes, len(live)))
        deletes = sorted(rng.sample(live, num_deletes))
        add_vertices = (
            [rng.choice(vertex_labels) for _ in range(rng.randint(1, 2))]
            if rng.random() < 0.25
            else []
        )
        total_vertices = simulated.num_vertices + len(add_vertices)
        inserts = []
        for _ in range(rng.randint(0, max_inserts)):
            arity = rng.randint(2, min(4, total_vertices))
            vertices = tuple(sorted(rng.sample(range(total_vertices), arity)))
            label = rng.choice(edge_labels)
            inserts.append(vertices if label is None else (vertices, label))
        batch = MutationBatch(
            inserts=inserts, deletes=deletes, add_vertices=add_vertices
        )
        simulated.apply(batch)
        schedule.append(batch)
    return schedule


def run_mutation_differential(
    data,
    query,
    schedule,
    index_backend: str = "merge",
    executor: "str | None" = None,
    shards: int = 2,
):
    """Drive ``schedule`` incrementally and diff against full rebuilds.

    After every batch the incrementally maintained engine's count is
    compared with a from-scratch engine rebuilt from the mutated
    graph's frozen snapshot (:meth:`DynamicHypergraph.to_hypergraph`) —
    the rebuild *is* the oracle, and "bit-identical" means the counts
    agree at every step, on every backend, under every executor.

    Returns None when the whole schedule agrees, else a ``(step,
    incremental, oracle)`` triple locating the first divergence — the
    shape :func:`shrink_mutation_schedule` bisects on.
    """
    from .core.engine import HGMatch

    engine = HGMatch(data, index_backend=index_backend, shards=shards)
    try:
        for step, batch in enumerate(schedule):
            engine.apply_mutations(batch)
            if executor is None:
                incremental = engine.count(query)
            else:
                incremental = engine.count(
                    query, executor=executor, shards=shards
                )
            oracle_engine = HGMatch(
                engine.data.to_hypergraph(), index_backend=index_backend
            )
            oracle = oracle_engine.count(query)
            if incremental != oracle:
                return (step, incremental, oracle)
        return None
    finally:
        engine.close()


def shrink_mutation_schedule(
    data,
    query,
    schedule,
    index_backend: str = "merge",
    executor: "str | None" = None,
    shards: int = 2,
):
    """The failure shrinker: shortest failing prefix, by bisection.

    Given a schedule that :func:`run_mutation_differential` fails,
    binary-search the shortest prefix that still diverges (divergence
    is monotone in the prefix: the runner checks after *every* step, so
    a failing run at step ``k`` fails for any prefix of length > ``k``).
    Returns ``(prefix, divergence)`` — the minimal reproducer to log
    alongside the seed.
    """
    def fails(prefix):
        return run_mutation_differential(
            data, query, prefix,
            index_backend=index_backend, executor=executor, shards=shards,
        )

    divergence = fails(schedule)
    if divergence is None:
        raise ValueError("schedule does not fail; nothing to shrink")
    low, high = 1, divergence[0] + 1
    best = (list(schedule[:high]), divergence)
    while low < high:
        mid = (low + high) // 2
        result = fails(schedule[:mid])
        if result is None:
            low = mid + 1
        else:
            best = (list(schedule[:mid]), result)
            high = mid
    return best


# ---------------------------------------------------------------------------
# Durability: the crash-point recovery oracle
# ---------------------------------------------------------------------------

def run_crash_recovery_oracle(
    data,
    schedule,
    index_backend: str = "merge",
    snapshot_interval: int = 3,
    query=None,
    directory: "str | None" = None,
):
    """Crash the journal at every byte-level cut point and recover.

    Commits ``schedule`` through a real :class:`~repro.hypergraph
    .journal.MutationJournal`, recording the log's byte length and the
    graph fingerprint after every batch.  Then, for every record
    boundary *and* for cuts inside every record (torn header, torn
    body), materialises the directory a crash at that point would have
    left behind — the log truncated to the cut, plus only the
    snapshots that had been written by then — recovers from it, and
    asserts the recovered graph is bit-identical (fingerprint and,
    when ``query`` is given, embedding count) to the longest committed
    prefix before the cut.

    Returns None when every crash point recovers exactly, else a
    ``(step, got, expected)`` triple — ``step`` is the shortest
    schedule prefix that reproduces the failure, ``got``/``expected``
    describe the divergence — the shape
    :func:`shrink_crash_schedule` bisects on.
    """
    from .core.engine import HGMatch
    from .errors import ReproError
    from .hypergraph.dynamic import DynamicHypergraph
    from .hypergraph.journal import JOURNAL_FILE, MutationJournal
    from .service.service import graph_fingerprint

    owned = directory is None
    if owned:
        directory = tempfile.mkdtemp(prefix="crash-oracle-")
    try:
        committed = os.path.join(directory, "committed")
        journal = MutationJournal(
            committed, fsync="never", snapshot_interval=snapshot_interval
        )
        graph = DynamicHypergraph.from_hypergraph(data)
        journal.attach(graph)
        expected = {0: graph_fingerprint(graph)}
        counts = {}
        if query is not None:
            probe = HGMatch(
                graph.to_hypergraph(), index_backend=index_backend
            )
            try:
                counts[0] = probe.count(query)
            finally:
                probe.close()
        # boundaries[k] = log length after record k; snapshots_at[k] =
        # snapshot versions on disk once record k had been appended.
        # Snapshots are archived aside as they appear: the journal
        # prunes old ones, but a crash *before* the pruning point must
        # still find them.
        log_path = os.path.join(committed, JOURNAL_FILE)
        archive = os.path.join(directory, "snapshots")
        os.makedirs(archive, exist_ok=True)

        def archive_snapshots():
            versions = list(journal.snapshot_versions())
            for version in versions:
                name = os.path.basename(journal.snapshot_path(version))
                kept = os.path.join(archive, name)
                if not os.path.exists(kept):
                    shutil.copy(journal.snapshot_path(version), kept)
            return versions

        boundaries = [os.path.getsize(log_path)]
        snapshots_at = [archive_snapshots()]
        for batch in schedule:
            result = graph.apply(batch)
            journal.append(result.version, batch)
            journal.maybe_snapshot(graph)
            journal.sync()
            expected[result.version] = graph_fingerprint(graph)
            if query is not None:
                probe = HGMatch(
                    graph.to_hypergraph(), index_backend=index_backend
                )
                try:
                    counts[result.version] = probe.count(query)
                finally:
                    probe.close()
            boundaries.append(os.path.getsize(log_path))
            snapshots_at.append(archive_snapshots())
        journal.close()
        with open(log_path, "rb") as stream:
            log_bytes = stream.read()

        def crash_points():
            # Every record boundary, then cuts inside each record:
            # a torn length/checksum header and a torn body.
            for k in range(len(boundaries)):
                yield k, boundaries[k], f"boundary after version {k}"
            for k in range(1, len(boundaries)):
                start, end = boundaries[k - 1], boundaries[k]
                for cut in {start + 4, start + (end - start) // 2, end - 1}:
                    if start < cut < end:
                        yield k, cut, (
                            f"torn record for version {k} "
                            f"(cut at byte {cut})"
                        )

        scratch = os.path.join(directory, "crashed")
        for step, cut, label in crash_points():
            # Longest committed prefix: complete records before the cut.
            k_committed = next(
                k for k in range(len(boundaries) - 1, -1, -1)
                if boundaries[k] <= cut
            )
            if os.path.isdir(scratch):
                shutil.rmtree(scratch)
            os.makedirs(scratch)
            with open(os.path.join(scratch, JOURNAL_FILE), "wb") as stream:
                stream.write(log_bytes[:cut])
            for version in snapshots_at[k_committed]:
                name = os.path.basename(journal.snapshot_path(version))
                shutil.copy(
                    os.path.join(archive, name),
                    os.path.join(scratch, name),
                )
            try:
                recovered = MutationJournal(scratch).recover()
            except ReproError as exc:
                return (step, f"recovery failed at {label}: {exc}",
                        f"version {k_committed}")
            if recovered is None or recovered.version != k_committed:
                got = None if recovered is None else recovered.version
                return (step, f"recovered version {got} at {label}",
                        f"version {k_committed}")
            if graph_fingerprint(recovered.graph) != expected[k_committed]:
                return (step, f"fingerprint diverged at {label}",
                        f"fingerprint of version {k_committed}")
            if query is not None:
                probe = HGMatch(
                    recovered.graph.to_hypergraph(),
                    index_backend=index_backend,
                )
                try:
                    count = probe.count(query)
                finally:
                    probe.close()
                if count != counts[k_committed]:
                    return (step, f"count {count} at {label}",
                            f"count {counts[k_committed]}")
        return None
    finally:
        if owned:
            shutil.rmtree(directory, ignore_errors=True)


def shrink_crash_schedule(
    data,
    schedule,
    index_backend: str = "merge",
    snapshot_interval: int = 3,
    query=None,
):
    """Shrink a schedule failing :func:`run_crash_recovery_oracle`.

    Same prefix bisection as :func:`shrink_mutation_schedule`: the
    oracle exercises every crash point of the prefix it is given, so a
    failure reproducible at ``step`` batches is reproducible for every
    longer prefix.  Returns ``(prefix, divergence)``.
    """
    def fails(prefix):
        return run_crash_recovery_oracle(
            data, prefix,
            index_backend=index_backend,
            snapshot_interval=snapshot_interval,
            query=query,
        )

    divergence = fails(schedule)
    if divergence is None:
        raise ValueError("schedule does not fail; nothing to shrink")
    low, high = 1, max(1, divergence[0])
    best = (list(schedule[:high]), divergence)
    while low < high:
        mid = (low + high) // 2
        result = fails(schedule[:mid])
        if result is None:
            low = mid + 1
        else:
            best = (list(schedule[:mid]), result)
            high = mid
    return best
