"""Binary relations with two-sided sorted indexes.

The minimal relational substrate behind the join-based RapidMatch-H
baseline: a :class:`BinaryRelation` stores (a, b) pairs indexed in both
directions with sorted adjacency lists, so a multiway join can intersect
posting lists exactly the way worst-case-optimal join engines do.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple


class BinaryRelation:
    """A set of (a, b) pairs with sorted forward and backward indexes."""

    def __init__(self, pairs: Iterable[Tuple[int, int]] = ()) -> None:
        self._forward: Dict[int, List[int]] = {}
        self._backward: Dict[int, List[int]] = {}
        self._count = 0
        for a, b in pairs:
            self.add(a, b)
        self.freeze()

    def add(self, a: int, b: int) -> None:
        self._forward.setdefault(a, []).append(b)
        self._backward.setdefault(b, []).append(a)
        self._count += 1

    def freeze(self) -> None:
        """Sort all adjacency lists (idempotent)."""
        for adjacency in self._forward.values():
            adjacency.sort()
        for adjacency in self._backward.values():
            adjacency.sort()

    def forward(self, a: int) -> List[int]:
        """All ``b`` with (a, b) in the relation, ascending."""
        return self._forward.get(a, [])

    def backward(self, b: int) -> List[int]:
        """All ``a`` with (a, b) in the relation, ascending."""
        return self._backward.get(b, [])

    def contains(self, a: int, b: int) -> bool:
        from bisect import bisect_left

        adjacency = self._forward.get(a, [])
        position = bisect_left(adjacency, b)
        return position < len(adjacency) and adjacency[position] == b

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return f"BinaryRelation(|R|={self._count})"
